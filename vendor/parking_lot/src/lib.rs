//! Vendored minimal stand-in for the [`parking_lot`] crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (locking never returns a `Result`). Performance characteristics are
//! those of std, which is fine for the coarse incumbent-sharing lock the
//! solver uses.
//!
//! [`parking_lot`]: https://crates.io/crates/parking_lot

#![warn(missing_docs)]

use std::sync::TryLockError;

/// A mutex whose `lock` never fails: a panicking holder does not poison
/// the lock for everyone else (parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
