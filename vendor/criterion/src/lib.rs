//! Vendored minimal stand-in for the [`criterion`] benchmark harness.
//!
//! Implements the subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `iter` and the `criterion_group!` / `criterion_main!` macros — with a
//! simple timer instead of criterion's statistics engine: each benchmark
//! runs one warm-up batch, then `sample_size` timed batches, and prints
//! the minimum/mean/maximum per-iteration time. Good enough to compare
//! orders of magnitude and to keep `cargo bench` working offline; swap
//! in real criterion for publication-grade numbers.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, &mut f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark's identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// `(elapsed, iterations)` per recorded batch, so each batch is
    /// divided by the iteration count it actually ran.
    batches: Vec<(Duration, u64)>,
    /// Calibrated iteration count; the warm-up discovers it, timed
    /// batches start from it instead of re-running the ladder.
    iterations_per_batch: u64,
}

impl Bencher {
    /// Times `routine`, preventing the result from being optimized out.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate roughly how many iterations fill ~10ms so very fast
        // routines aren't dominated by timer resolution.
        let mut iterations = self.iterations_per_batch.max(1);
        loop {
            let start = Instant::now();
            for _ in 0..iterations {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iterations >= 1 << 20 {
                self.batches.push((elapsed, iterations));
                self.iterations_per_batch = iterations;
                return;
            }
            iterations *= 4;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up batch (also calibrates the iteration count).
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut bencher = Bencher {
        batches: Vec::with_capacity(samples),
        iterations_per_batch: warmup.iterations_per_batch.max(1),
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let per_iteration: Vec<f64> = bencher
        .batches
        .iter()
        .map(|&(elapsed, iterations)| elapsed.as_secs_f64() / iterations.max(1) as f64)
        .collect();
    let min = per_iteration.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iteration.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iteration.iter().sum::<f64>() / per_iteration.len().max(1) as f64;
    println!(
        "{label:<48} [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        "n/a".to_owned()
    } else if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
