//! The JSON tree shared by `serde` and `serde_json`.
//!
//! Lives here (not in `serde_json`) because [`crate::Serialize`]
//! returns it, and the ergonomic impls below (`Index`, `PartialEq`
//! against literals, `Display`) must live next to the type under the
//! orphan rules. `serde_json` re-exports it as `serde_json::Value`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON document.
///
/// Signed and unsigned integers are distinct variants (as in real
/// `serde_json`); [`PartialEq`] compares them numerically, so
/// `Value::Int(3) == Value::UInt(3)`.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (negative literals parse to this).
    Int(i64),
    /// An unsigned integer (non-negative numbers parse to this).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The member named `key`, or `None` when `self` is not an object
    /// or has no such member.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an `i64` when it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Any numeric value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a borrowed string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a borrowed array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Any integer variant widened to `i128` (floats excluded), so
    /// equality between integers is exact even beyond 2^53.
    fn as_int_wide(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(i128::from(*i)),
            Value::UInt(u) => Some(i128::from(*u)),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`; missing members and non-objects yield `null`,
    /// matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// `value["key"] = ...`: inserts the member when absent. Panics when
    /// `self` is not an object (as `serde_json` does).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(fields) = self else {
            panic!("cannot index into non-object value with \"{key}\"");
        };
        if let Some(pos) = fields.iter().position(|(k, _)| k == key) {
            return &mut fields[pos].1;
        }
        fields.push((key.to_owned(), Value::Null));
        &mut fields.last_mut().expect("just pushed").1
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// `value[i]`; out-of-bounds and non-arrays yield `null`.
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq for Value {
    /// Structural equality, with all numbers compared numerically (so a
    /// parsed `3` equals a serialized `3u32` equals `3.0`).
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (String(a), String(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            // Integer pairs compare exactly (f64 would conflate
            // distinct values above 2^53); integer/float mixes fall
            // back to f64.
            (a, b) => match (a.as_int_wide(), b.as_int_wide()) {
                (Some(x), Some(y)) => x == y,
                _ => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                },
            },
        }
    }
}

macro_rules! eq_via {
    ($([$t:ty, $conv:ident, $wide:ty])*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$conv().is_some_and(|v| v == *other as $wide)
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_via! {
    [i8, as_i64, i64] [i16, as_i64, i64] [i32, as_i64, i64] [i64, as_i64, i64]
    [u8, as_u64, u64] [u16, as_u64, u64] [u32, as_u64, u64] [u64, as_u64, u64]
    [usize, as_u64, u64]
    [f32, as_f64, f64] [f64, as_f64, f64]
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! from_via {
    ($([$t:ty, $variant:ident $(, $cast:ty)?])*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::$variant(v $(as $cast)?)
            }
        }
    )*};
}

from_via! {
    [i8, Int, i64] [i16, Int, i64] [i32, Int, i64] [i64, Int]
    [u8, UInt, u64] [u16, UInt, u64] [u32, UInt, u64] [u64, UInt] [usize, UInt, u64]
    [f32, Float, f64] [f64, Float]
    [bool, Bool]
    [String, String]
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_f64(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats recognizable as numbers ("1.0", not "1").
            write!(f, "{v:.1}")
        } else {
            write!(f, "{v}")
        }
    } else {
        // JSON has no Inf/NaN; serde_json errors here, we degrade to null.
        f.write_str("null")
    }
}

impl fmt::Display for Value {
    /// Compact JSON (`serde_json::to_string` form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(v) => write_f64(f, *v),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}
