//! Vendored minimal stand-in for the [`serde`] crate.
//!
//! Offline builds cannot fetch real serde, so this crate provides the
//! slice the workspace uses: `#[derive(Serialize, Deserialize)]` on
//! plain structs and unit enums, plus `serde_json`-style conversion to
//! and from a JSON tree.
//!
//! Unlike real serde's visitor architecture, serialization here goes
//! through one concrete in-memory tree, [`Value`]. That is the right
//! trade-off for this workspace: every serialization consumer is
//! `serde_json` (which aliases its `Value` to this one), payloads are
//! small reports, and the tree keeps the hand-written derive macro in
//! `serde_derive` trivial.
//!
//! Supported via derive: named-field structs (including lifetime
//! generics and `#[serde(skip_serializing_if = "path")]`) and unit-only
//! enums (serialized as their variant name, matching real serde).
//!
//! [`serde`]: https://crates.io/crates/serde

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Serialization error (unused by the tree builder, kept for API shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) String);

impl Error {
    /// Creates an error carrying `message`.
    pub fn custom(message: impl Into<String>) -> Error {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a JSON [`Value`] tree.
pub trait Serialize {
    /// Builds the JSON tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for std types.

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    #[inline]
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    #[inline]
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    /// `None` is `null`; `Some` serializes transparently, as in serde.
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            /// Tuples serialize as JSON arrays, matching serde.
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    #[inline]
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.

fn type_error(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {got:?}"))
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<$t, Error> {
                let wide: i128 = match value {
                    Value::Int(i) => i128::from(*i),
                    Value::UInt(u) => i128::from(*u),
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<f64, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(type_error("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<f32, Error> {
        f64::deserialize_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Deserialize for &'static str {
    /// Leaks the string. Real serde borrows from the input instead;
    /// this impl only exists so `&'static str` fields (the static
    /// dataset catalog) can derive `Deserialize`, and round-trips are
    /// confined to tests.
    fn deserialize_value(value: &Value) -> Result<&'static str, Error> {
        String::deserialize_value(value).map(|s| &*s.leak())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::deserialize_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal: $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(type_error(concat!("array of length ", $len), other)),
                }
            }
        }
    )*};
}

deserialize_tuple! {
    (1: A.0)
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
}

impl Deserialize for Value {
    #[inline]
    fn deserialize_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------
// Support for the derive macros (not public API).

#[doc(hidden)]
pub mod __private {
    use super::Value;

    /// Looks up `name` in an object, treating a missing key as `null`
    /// (so `Option` fields tolerate omission).
    pub fn field<'v>(value: &'v Value, name: &str) -> &'v Value {
        match value {
            Value::Object(fields) => fields
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// Error for a value that is not the object the derive expected.
    pub fn expect_object(value: &Value, ty: &str) -> Result<(), super::Error> {
        match value {
            Value::Object(_) => Ok(()),
            other => Err(super::Error(format!("expected {ty} object, got {other:?}"))),
        }
    }
}
