#[test]
fn large_uint_eq() {
    use serde::Value;
    assert_ne!(Value::UInt(u64::MAX), Value::UInt(u64::MAX - 1));
}
