//! Vendored minimal stand-in for `serde_derive`, written against the
//! built-in `proc_macro` API only (no `syn`/`quote` — the build is
//! offline).
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields, optionally with lifetime-only generics,
//!   honouring `#[serde(skip_serializing_if = "path")]`;
//! * enums whose variants are all unit variants (serialized as the
//!   variant name string, like real serde).
//!
//! Anything else (tuple structs, data-carrying enums, type generics)
//! panics at expansion time with a clear message, which is the correct
//! failure mode for a shim: loud, at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
struct Input {
    name: String,
    /// Raw generics text, e.g. `<'a>`; empty when non-generic.
    generics: String,
    kind: Kind,
}

enum Kind {
    /// Named fields with their `skip_serializing_if` path, if any.
    Struct(Vec<(String, Option<String>)>),
    /// Unit variant names.
    Enum(Vec<String>),
}

/// Derives the workspace `serde::Serialize` trait (tree-building form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let mut pushes = String::new();
            for (field, skip_if) in fields {
                let push = format!(
                    "fields.push(({field:?}.to_string(), \
                     serde::Serialize::serialize_value(&self.{field})));"
                );
                match skip_if {
                    Some(path) => {
                        pushes.push_str(&format!("if !{path}(&self.{field}) {{ {push} }}\n"))
                    }
                    None => {
                        pushes.push_str(&push);
                        pushes.push('\n');
                    }
                }
            }
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(fields)"
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{}::{v} => serde::Value::String({v:?}.to_string()),\n",
                        input.name
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let Input { name, generics, .. } = &input;
    format!(
        "impl{generics} serde::Serialize for {name}{generics} {{\n\
         fn serialize_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the workspace `serde::Deserialize` trait (tree-reading form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|(field, _)| {
                    format!(
                        "{field}: serde::Deserialize::deserialize_value(\
                         serde::__private::field(value, {field:?}))?,\n"
                    )
                })
                .collect();
            format!(
                "serde::__private::expect_object(value, {:?})?;\n\
                 Ok({} {{ {inits} }})",
                input.name, input.name
            )
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({}::{v}),\n", input.name))
                .collect();
            format!(
                "match value {{\n\
                 serde::Value::String(s) => match s.as_str() {{\n\
                 {arms}\
                 other => Err(serde::Error::custom(format!(\
                 \"unknown {} variant {{other:?}}\"))),\n\
                 }},\n\
                 other => Err(serde::Error::custom(format!(\
                 \"expected {} string, got {{other:?}}\"))),\n\
                 }}",
                input.name, input.name
            )
        }
    };
    let Input { name, generics, .. } = &input;
    format!(
        "impl{generics} serde::Deserialize for {name}{generics} {{\n\
         fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Token-stream parsing.

fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let mut is_enum = false;
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                tokens.next();
            }
            Some(TokenTree::Ident(word)) => match word.to_string().as_str() {
                "pub" => {
                    // `pub` or `pub(crate)`: drop an optional paren group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                "struct" => break,
                "enum" => {
                    is_enum = true;
                    break;
                }
                other => panic!("serde_derive shim: unexpected token `{other}`"),
            },
            other => panic!("serde_derive shim: unexpected input {other:?}"),
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    // Optional generics: copy them verbatim (lifetimes only in practice).
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for token in tokens.by_ref() {
                if let TokenTree::Punct(p) = &token {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                generics.push_str(&token.to_string());
                if depth == 0 {
                    break;
                }
            }
            assert!(
                !generics.contains("where"),
                "serde_derive shim: where-clauses are unsupported"
            );
        }
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple structs are unsupported")
            }
            Some(_) => continue, // e.g. where-less trailing tokens
            None => panic!("serde_derive shim: missing body"),
        }
    };
    let kind = if is_enum {
        Kind::Enum(parse_enum(body))
    } else {
        Kind::Struct(parse_struct(body))
    };
    Input {
        name,
        generics,
        kind,
    }
}

/// Parses `{ attrs* vis? name : type , ... }` into field names plus each
/// field's `skip_serializing_if` path.
fn parse_struct(body: TokenStream) -> Vec<(String, Option<String>)> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Attributes before the field.
        let mut skip_if = None;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        if let Some(path) = parse_skip_serializing_if(g.stream()) {
                            skip_if = Some(path);
                        }
                    }
                }
                Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(word)) = tokens.next() else {
            break;
        };
        fields.push((word.to_string(), skip_if));
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        // Consume the type: ends at a comma outside angle brackets.
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

/// Parses `{ attrs* Name , ... }`, insisting every variant is a unit.
fn parse_enum(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next(); // the bracket group
            } else {
                break;
            }
        }
        let Some(token) = tokens.next() else { break };
        match token {
            TokenTree::Ident(word) => variants.push(word.to_string()),
            other => panic!("serde_derive shim: expected unit variant, got {other:?}"),
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive shim: data-carrying enum variants are unsupported")
            }
            Some(other) => panic!("serde_derive shim: unexpected token {other:?}"),
        }
    }
    variants
}

/// Extracts the path from `serde(skip_serializing_if = "path")`, if this
/// attribute group is that. Other serde attributes are rejected loudly
/// so silently wrong output is impossible.
fn parse_skip_serializing_if(attr: TokenStream) -> Option<String> {
    let mut tokens = attr.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(word)) if word.to_string() == "serde" => {}
        Some(TokenTree::Ident(word)) if word.to_string() == "doc" => return None,
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return None;
    };
    let mut tokens = args.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(word)) if word.to_string() == "skip_serializing_if" => {}
        Some(other) => {
            panic!("serde_derive shim: unsupported serde attribute starting at `{other}`")
        }
        None => return None,
    }
    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        other => panic!("serde_derive shim: malformed skip_serializing_if: {other:?}"),
    }
    match tokens.next() {
        Some(TokenTree::Literal(lit)) => {
            let text = lit.to_string();
            Some(text.trim_matches('"').to_string())
        }
        other => panic!("serde_derive shim: malformed skip_serializing_if: {other:?}"),
    }
}
