//! Vendored minimal stand-in for the [`serde_json`] crate.
//!
//! Provides the workspace's JSON needs on top of the vendored `serde`
//! tree model: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], the [`Value`] type (re-exported from `serde`, where
//! the orphan rules force its impls to live) and a [`json!`] macro for
//! literals.
//!
//! The parser is a complete JSON reader (objects, arrays, strings with
//! escapes including `\uXXXX` surrogate pairs, numbers, bools, null);
//! the printers emit compact or 2-space-indented documents.
//!
//! [`serde_json`]: https://crates.io/crates/serde_json

#![warn(missing_docs)]

use std::fmt::Write as _;

pub use serde::Value;

/// Error parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a JSON tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_string())
}

/// Serializes to human-readable JSON with 2-space indentation.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize_value(), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::deserialize_value(&value)?)
}

/// Builds a [`Value`] from a JSON-ish literal: `json!(null)`,
/// `json!(3)`, `json!([1, 2])`, `json!({"k": 1})`, or any serializable
/// expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($element)),* ])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $(($key.to_string(), $crate::json!($value))),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                let _ = write!(out, "{}: ", Value::String(key.clone()));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        // Scalars, "[]" and "{}" use the compact form.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| self.error("invalid low surrogate"))?;
                                char::from_u32(combined)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // slicing at a char boundary is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"name": "abc", "xs": [1, -2, 3.5], "flag": true, "none": null}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["name"], "abc");
        assert_eq!(value["xs"][0], 1);
        assert_eq!(value["xs"][1], -2i64);
        assert_eq!(value["xs"][2], 3.5);
        assert_eq!(value["flag"], true);
        assert!(value["none"].is_null());
        let back: Value = from_str(&to_string(&value).unwrap()).unwrap();
        assert_eq!(back, value);
        let pretty: Value = from_str(&to_string_pretty(&value).unwrap()).unwrap();
        assert_eq!(pretty, value);
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(0), Value::Int(0));
        assert_eq!(json!([3, 4]), from_str::<Value>("[3,4]").unwrap());
        assert_eq!(json!({"a": 1})["a"], 1);
    }

    #[test]
    fn string_escapes() {
        let value: Value = from_str(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(value, "a\"b\\c\nd\u{41}\u{1F600}");
        let back: Value = from_str(&to_string(&value).unwrap()).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn large_integers_compare_exactly() {
        // Above 2^53 an f64 comparison would conflate neighbours.
        assert_ne!(Value::UInt(u64::MAX), Value::UInt(u64::MAX - 1));
        assert_eq!(Value::UInt(u64::MAX), Value::UInt(u64::MAX));
        assert_ne!(Value::Int(i64::MIN), Value::Int(i64::MIN + 1));
        assert_eq!(Value::Int(3), Value::UInt(3));
        assert_eq!(Value::Int(3), Value::Float(3.0));
        let round: Value = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(round, u64::MAX);
    }

    #[test]
    fn index_assignment_inserts_and_replaces() {
        let mut value: Value = from_str(r#"{"seconds": 1.5}"#).unwrap();
        value["seconds"] = json!(0);
        value["new"] = json!("x");
        assert_eq!(value["seconds"], 0);
        assert_eq!(value["new"], "x");
    }
}
