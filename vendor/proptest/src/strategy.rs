//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Generates a value, builds a dependent strategy from it, and
    /// draws from that (e.g. sides first, then edges within them).
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, flat }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    flat: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.flat)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below_inclusive(0, (self.end - self.start - 1) as u64) as $t
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below_inclusive(0, (hi - lo) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
