//! Configuration, error type and RNG behind [`crate::proptest!`].

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Failure of a single generated case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }

    /// Alias of [`TestCaseError::fail`] (proptest calls rejection
    /// differently, but both just carry a message here).
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 RNG seeded from the test's name, so every
/// run and every machine sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a over its bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[min, max]` (inclusive).
    pub fn below_inclusive(&mut self, min: u64, max: u64) -> u64 {
        debug_assert!(min <= max);
        let span = max - min + 1;
        if span == 0 {
            return self.next_u64();
        }
        min + self.next_u64() % span
    }
}
