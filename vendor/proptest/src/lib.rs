//! Vendored minimal stand-in for the [`proptest`] crate.
//!
//! Implements the property-testing surface this workspace uses:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(...)]`), [`prop_assert!`] and
//!   [`prop_assert_eq!`];
//! * the [`strategy::Strategy`] trait with `prop_map` /
//!   `prop_flat_map`, range strategies over the integer types, tuple
//!   strategies, [`collection::vec`] and [`bool::ANY`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest: inputs are drawn from a fixed
//! deterministic seed per test (derived from the test name), and there
//! is **no shrinking** — a failing case reports the case number and the
//! generated inputs' `Debug` form instead. That keeps runs reproducible
//! in CI while staying a few hundred lines.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The admissible length range of a generated `Vec`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest length, inclusive.
        pub min: usize,
        /// Largest length, inclusive.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> SizeRange {
            SizeRange { min: len, max: len }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below_inclusive(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// The any-bool strategy, as `proptest::bool::ANY`.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts inside a [`proptest!`] body; failure fails only the current
/// case, reported with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs (256 by default, or the leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)+ ) => {
        $crate::__proptest_impl! { ($config) $($rest)+ }
    };
    ( $($rest:tt)+ ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)+ }
    };
}

/// Implementation detail of [`proptest!`]; do not call directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            #[test]
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(concat!($(stringify!($arg), " = {:?} "),+), $(&$arg),+);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(error) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, error, inputs,
                        );
                    }
                }
            }
        )+
    };
}
