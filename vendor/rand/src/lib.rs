//! Vendored minimal stand-in for the [`rand`] crate.
//!
//! The build environment has no network access, so the tiny slice of the
//! `rand 0.8` API this workspace uses is reimplemented here:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — the only
//!   construction path the workspace uses (always explicitly seeded, so
//!   every run is reproducible);
//! * [`Rng::gen_range`] over integer and float ranges;
//! * [`Rng::gen_bool`] and [`Rng::gen`] (uniform `f64`/`u32`/`u64`/`bool`).
//!
//! The generator is xoshiro256++ seeded via splitmix64 — not the real
//! crate's ChaCha12, so streams differ from upstream `rand`, but quality
//! is more than adequate for graph generation and randomized tests.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (here: only from a `u64`, the one path used).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection (avoids modulo bias).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let raw = rng.next_u64();
        if raw < zone || zone == 0 {
            return raw % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// A uniform value of an inferred [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded by
    /// splitmix64. Deterministic for a given seed, unlike upstream
    /// `StdRng` only in the exact stream produced.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=8u32);
            assert!((1..=8).contains(&y));
            let f = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "{hits}");
    }
}
