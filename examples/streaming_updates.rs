//! Incremental MBB maintenance on a streaming author–venue graph.
//!
//! Bipartite graphs in the wild are append-mostly streams (papers get
//! published, users rate items). This example feeds a stream of edge
//! insertions — with occasional retractions — through
//! [`mbb_core::incremental::IncrementalMbb`] and shows how the warm-started
//! re-solve tracks the growing optimum.
//!
//! ```text
//! cargo run -p mbb-bench --release --example streaming_updates
//! ```

use mbb_core::incremental::IncrementalMbb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let (authors, venues) = (300u32, 120u32);
    let mut tracker = IncrementalMbb::new(authors, venues);

    // A "collaboration cluster" that keeps densifying over time: authors
    // 0..10 publishing at venues 0..10, edges arriving interleaved with
    // background noise.
    let mut cluster_edges: Vec<(u32, u32)> = (0..10u32)
        .flat_map(|a| (0..10u32).map(move |v| (a, v)))
        .collect();
    // Deterministic shuffle by sort-by-random-key.
    let mut keyed: Vec<(u64, (u32, u32))> = cluster_edges
        .drain(..)
        .map(|e| (rng.gen::<u64>(), e))
        .collect();
    keyed.sort_unstable();
    let cluster_stream: Vec<(u32, u32)> = keyed.into_iter().map(|(_, e)| e).collect();

    let mut history = Vec::new();
    for (step, &(a, v)) in cluster_stream.iter().enumerate() {
        tracker.insert_edge(a, v)?;
        // Two noise edges per cluster edge (kept clear of the cluster's
        // author block so retractions can never break the planted optimum).
        for _ in 0..2 {
            let edge = (rng.gen_range(10..authors), rng.gen_range(0..venues));
            tracker.insert_edge(edge.0, edge.1)?;
            history.push(edge);
        }
        // Every 10 steps, retract one random earlier noise edge.
        if step % 10 == 9 {
            if let Some(&(a, v)) = history.get(rng.gen_range(0..history.len())) {
                tracker.remove_edge(a, v);
            }
        }
        if step % 20 == 19 || step + 1 == cluster_stream.len() {
            let result = tracker.solve();
            println!(
                "after {:4} edges: MBB is {}x{} (stage {})",
                tracker.num_edges(),
                result.biclique.half_size(),
                result.biclique.half_size(),
                result.stats.stage,
            );
        }
    }

    // After the full 10×10 cluster streamed in, the optimum is 10.
    let final_result = tracker.solve();
    println!(
        "\nfinal: {} authors x {} venues — MBB {}x{}",
        authors,
        venues,
        final_result.biclique.half_size(),
        final_result.biclique.half_size()
    );
    assert!(final_result.biclique.half_size() >= 10);
    assert!(final_result.biclique.is_valid(&tracker.snapshot()));

    // Warm restarts are exact: compare against a cold solve.
    let cold = mbb_core::MbbSolver::new()
        .solve(&tracker.snapshot())
        .biclique;
    assert_eq!(cold.half_size(), final_result.biclique.half_size());
    println!(
        "warm-started result matches cold solve: {}x{}",
        cold.half_size(),
        cold.half_size()
    );

    // Between updates the tracker exposes its engine session, so ad-hoc
    // queries (here: top-3) share the indices the solve already built.
    let top = tracker.engine().topk(3);
    println!(
        "top-3 author cliques right now: {:?}",
        top.value
            .iter()
            .map(|b| b.balanced_size())
            .collect::<Vec<_>>()
    );
    assert_eq!(top.value[0].balanced_size(), 10);
    Ok(())
}
