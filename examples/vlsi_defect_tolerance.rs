//! VLSI defect tolerance (§1 of the paper): find the largest defect-free
//! `k × k` sub-crossbar of a partially defective nanoscale crossbar.
//!
//! A reconfigurable crossbar connects `n` horizontal wires to `n` vertical
//! wires through programmable crosspoints; manufacturing defects knock out
//! 5–30 % of the crosspoints. Mapping a `k × k` logic array onto the
//! fabric requires `k` row wires and `k` column wires whose crosspoints all
//! work — exactly a maximum balanced biclique of the "working crosspoint"
//! bipartite graph (Al-Yamani et al. [1], Tahoori [25]).
//!
//! ```text
//! cargo run -p mbb-bench --release --example vlsi_defect_tolerance
//! ```

use mbb_bigraph::generators::dense_uniform;
use mbb_core::dense_mbb_graph;
use mbb_core::engine::MbbEngine;

fn main() {
    println!("defect-tolerant crossbar mapping via denseMBB");
    println!("fabric: 40x40 crossbar, defect rates 10%..35%\n");
    println!(
        "{:<12} {:>10} {:>16} {:>12}",
        "defect rate", "usable k", "fabric util.", "time"
    );

    for defect_percent in [10u32, 15, 20, 25, 30, 35] {
        let working_rate = 1.0 - defect_percent as f64 / 100.0;
        // Edge (r, c) present ⇔ crosspoint between row r and column c works.
        let fabric = dense_uniform(40, 40, working_rate, 96 + defect_percent as u64);

        let start = std::time::Instant::now();
        let result = dense_mbb_graph(&fabric);
        let elapsed = start.elapsed();

        let k = result.biclique.half_size();
        assert!(result.biclique.is_valid(&fabric));
        println!(
            "{:<12} {:>10} {:>15.1}% {:>11.2?}",
            format!("{defect_percent}%"),
            k,
            100.0 * (k * k) as f64 / (40.0 * 40.0),
            elapsed
        );
    }

    println!("\nEach row is the largest logic array mappable onto the defective fabric.");
    println!("The search is exact: no larger defect-free sub-crossbar exists.");

    // Follow-up engineering question, served by an engine session on the
    // worst fabric: "if we *must* route through crosspoint (0, 0), how
    // large an array survives?" — an edge-anchored query.
    let fabric = dense_uniform(40, 40, 0.65, 96 + 35);
    let engine = MbbEngine::new(fabric);
    let (r, c) = engine
        .graph()
        .edges()
        .next()
        .expect("some crosspoint works");
    let pinned = engine.anchored_edge(r, c);
    match &pinned.value {
        Some(array) => println!(
            "\npinning crosspoint ({r}, {c}): best array is {}x{}",
            array.half_size(),
            array.half_size()
        ),
        None => println!("\ncrosspoint ({r}, {c}) is defective"),
    }
    assert!(pinned.termination.is_complete());
}
