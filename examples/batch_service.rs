//! Batch service: drive a mixed top-k / anchored / solve batch across
//! two graph shards through the `mbb-serve` front-end.
//!
//! The scenario: a recommendation service holds two regional
//! interaction graphs ("west", "east"), each served by one warm
//! `MbbEngine` session, and answers client queries in batches — many
//! queries, few sessions, shared cached indices. Deadlined requests are
//! scheduled first (deadline-soonest), and a request whose budget
//! expires comes back best-so-far instead of late.
//!
//! ```text
//! cargo run -p mbb-examples --release --example batch_service
//! ```

use std::time::Duration;

use mbb_bigraph::generators::{self, ChungLuParams};
use mbb_bigraph::graph::Vertex;
use mbb_serve::{BatchExecutor, QueryKind, QueryOutcome, QueryRequest, ShardedFleet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two shards with different shapes: a skewed power-law region and a
    // flatter uniform one.
    let west = generators::chung_lu_bipartite(
        &ChungLuParams {
            num_left: 120,
            num_right: 120,
            num_edges: 900,
            left_exponent: 0.7,
            right_exponent: 0.7,
        },
        7,
    );
    let east = generators::uniform_edges(100, 100, 700, 11);

    let mut fleet = ShardedFleet::new();
    fleet.add_shard("west", west)?.add_shard("east", east)?;
    let executor = BatchExecutor::new(fleet, 2);

    // A mixed batch: exact solves, rankings, per-vertex/per-edge
    // queries, and one deliberately unroutable request to show the
    // rejection path. Ids are client-chosen and echoed in responses.
    let batch = vec![
        QueryRequest::new(1, QueryKind::Solve).on_graph("west"),
        QueryRequest::new(2, QueryKind::Topk { k: 3 })
            .on_graph("west")
            .with_deadline(Duration::from_secs(5)),
        QueryRequest::new(
            3,
            QueryKind::Anchored {
                vertex: Vertex::left(0),
            },
        )
        .on_graph("west"),
        QueryRequest::new(4, QueryKind::Solve)
            .on_graph("east")
            .with_deadline(Duration::from_secs(5)),
        QueryRequest::new(5, QueryKind::Topk { k: 2 }).on_graph("east"),
        QueryRequest::new(6, QueryKind::AnchoredEdge { u: 0, v: 0 }).on_graph("east"),
        QueryRequest::new(7, QueryKind::SizeConstrained { a: 2, b: 2 }).on_graph("east"),
        QueryRequest::new(8, QueryKind::Frontier).on_graph("east"),
        QueryRequest::new(9, QueryKind::Solve), // no graph id: hash-routed
        QueryRequest::new(10, QueryKind::Solve).on_graph("north"), // no such shard
    ];

    let report = executor.run_batch(batch);

    println!("responses (request order):");
    for response in &report.responses {
        match &response.outcome {
            QueryOutcome::Rejected { reason } => {
                println!(
                    "  #{:<2} {:<12} REJECTED: {reason}",
                    response.id, response.kind
                );
            }
            outcome => {
                println!(
                    "  #{:<2} {:<12} shard={:<5} answer-size={:<3} {} ({} nodes, waited {:.2} ms, ran {:.2} ms)",
                    response.id,
                    response.kind,
                    response.shard.as_deref().unwrap_or("-"),
                    outcome.headline_size(),
                    response.termination,
                    response.search_nodes(),
                    response.queue_wait.as_secs_f64() * 1e3,
                    response.service.as_secs_f64() * 1e3,
                );
            }
        }
    }

    let stats = &report.stats;
    println!(
        "\nbatch: {} requests ({} rejected) in {:.2} ms wall clock",
        stats.requests,
        stats.rejected,
        stats.wall_clock.as_secs_f64() * 1e3
    );
    println!(
        "       {} index-reuse hits, max queue wait {:.2} ms, total service {:.2} ms",
        stats.index_reuse_hits,
        stats.max_queue_wait.as_secs_f64() * 1e3,
        stats.total_service.as_secs_f64() * 1e3
    );
    for shard in &stats.per_shard {
        println!(
            "       shard {:<5} served {} requests, {} search nodes, {} reuse hits",
            shard.shard, shard.requests, shard.search_nodes, shard.index_reuse_hits
        );
    }

    // The invariants the service relies on.
    assert_eq!(report.responses.len(), 10);
    assert_eq!(stats.rejected, 1);
    assert!(report
        .responses
        .iter()
        .filter(|r| !r.outcome.is_rejected())
        .all(|r| r.termination.is_complete()));
    // The repeated solves on each shard reused the session indices.
    assert!(stats.index_reuse_hits >= 1);
    println!("\nall invariants hold");
    Ok(())
}
