//! Carrier crate for the runnable examples in this directory.
//!
//! The interesting code is in the example targets, not here:
//!
//! ```text
//! cargo run -p mbb-examples --example quickstart
//! cargo run -p mbb-examples --example biological_biclustering
//! cargo run -p mbb-examples --example dataset_explorer
//! cargo run -p mbb-examples --example recommendation_topk
//! cargo run -p mbb-examples --example streaming_updates
//! cargo run -p mbb-examples --example vlsi_defect_tolerance
//! ```
