//! Top-k and anchored search on a user–item recommendation graph.
//!
//! A user–item bipartite graph drives two product questions:
//!
//! * "what are the strongest co-purchase communities?" — the top-k
//!   balanced bicliques, each a group of users agreeing on a group of
//!   items;
//! * "which community does *this* user belong to?" — the anchored MBB
//!   through that user.
//!
//! ```text
//! cargo run -p mbb-bench --release --example recommendation_topk
//! ```

use std::ops::ControlFlow;

use mbb_bigraph::generators::{chung_lu_bipartite, plant_balanced_biclique, ChungLuParams};
use mbb_bigraph::graph::Vertex;
use mbb_core::budget::SearchBudget;
use mbb_core::engine::MbbEngine;
use mbb_core::enumerate::{enumerate_budgeted, EnumConfig};

fn main() {
    // A synthetic store: 2 000 users, 800 items, power-law activity, with
    // two planted communities (sizes 8 and 6) hiding in the noise.
    let noise = chung_lu_bipartite(
        &ChungLuParams {
            num_left: 2_000,
            num_right: 800,
            num_edges: 10_000,
            left_exponent: 0.8,
            right_exponent: 0.8,
        },
        42,
    );
    let (with_first, first_users, first_items) = plant_balanced_biclique(&noise, 8);
    let (graph, _, _) = plant_balanced_biclique(&with_first, 6);
    println!(
        "store: {} users x {} items, {} interactions",
        graph.num_left(),
        graph.num_right(),
        graph.num_edges()
    );

    // One engine session serves every product question below.
    let engine = MbbEngine::new(graph);

    // --- Question 1: the three strongest communities. ---
    let top = engine.topk(3);
    assert!(top.termination.is_complete());
    println!("\ntop-3 co-purchase communities:");
    for (rank, community) in top.value.iter().enumerate() {
        println!(
            "  #{}: {} users x {} items (balanced size {})",
            rank + 1,
            community.left.len(),
            community.right.len(),
            community.balanced_size()
        );
    }
    assert!(top.value[0].balanced_size() >= 8, "planted community found");

    // --- Question 2: the community of one specific user. ---
    let user = first_users[0];
    let anchored = engine.anchored(Vertex::left(user));
    let community = &anchored.value;
    println!(
        "\nuser {user}'s community: {} users x {} items ({} search nodes)",
        community.left.len(),
        community.right.len(),
        anchored.stats.search.nodes
    );
    assert!(community.half_size() >= 8);
    assert!(community.left.contains(&user));
    // The planted items are all in the community the anchor search found.
    let planted_covered = first_items
        .iter()
        .filter(|item| community.right.contains(item))
        .count();
    println!(
        "  covers {planted_covered}/{} of the planted items",
        first_items.len()
    );

    // --- Bonus: stream the large maximal bicliques (≥ 4 on each side). ---
    println!("\nmaximal bicliques with at least 4 users and 4 items:");
    let config = EnumConfig {
        min_left: 4,
        min_right: 4,
        max_results: Some(10),
        budget: None,
    };
    enumerate_budgeted(engine.graph(), &config, &SearchBudget::unlimited(), |b| {
        println!(
            "  {} users x {} items (e.g. users {:?}...)",
            b.left.len(),
            b.right.len(),
            &b.left[..b.left.len().min(4)]
        );
        ControlFlow::Continue(())
    });

    // The whole session computed its shared indices at most once.
    let index = engine.index_stats();
    println!(
        "\nsession: {} order build(s), {} reuse(s)",
        index.orders_computed, index.orders_reused
    );
}
