//! Dataset explorer: walk the KONECT catalog stand-ins and report the
//! structural quantities the paper's analysis is built on — degeneracy
//! `δ(G)`, bidegeneracy `δ̈(G)`, maximum degree, butterflies, the stage at
//! which `hbvMBB` stops, and the optimum found against its cheap upper
//! bounds.
//!
//! ```text
//! cargo run -p mbb-bench --release --example dataset_explorer -- [count]
//! ```

use mbb_bigraph::graph::Side;
use mbb_bigraph::metrics::GraphProfile;
use mbb_bigraph::projection::project;
use mbb_core::MbbEngine;
use mbb_datasets::{catalog, stand_in, ScaleCaps};

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>6} {:>5} {:>6} {:>10} {:>5} {:>7} {:>8}",
        "dataset", "|L|", "|R|", "|E|", "dmax", "δ", "δ̈", "b'flies", "MBB", "UB", "stage"
    );

    for spec in catalog().iter().take(count) {
        let standin = stand_in(spec, ScaleCaps::small(), 7);
        let g = &standin.graph;
        let profile = GraphProfile::of(g);
        let result = MbbEngine::new(g.clone()).solve();

        // The cheapest sound upper bound available before any search:
        // min of the degeneracy, butterfly and projection bounds.
        let upper_bound = profile
            .mbb_half_upper_bound()
            .min(profile.butterfly_half_upper_bound())
            .min(project(g, Side::Left).mbb_half_upper_bound());

        println!(
            "{:<28} {:>7} {:>7} {:>7} {:>6} {:>5} {:>6} {:>10} {:>5} {:>7} {:>8}",
            spec.name,
            g.num_left(),
            g.num_right(),
            g.num_edges(),
            g.max_degree(),
            profile.degeneracy,
            profile.bidegeneracy,
            profile.butterflies,
            result.value.half_size(),
            upper_bound,
            result.stats.stage.to_string(),
        );
        assert!(result.value.is_valid(g));
        assert!(result.value.half_size() <= upper_bound);
    }

    println!("\nδ̈ ≪ dmax on every dataset — the paper's key observation (§5.3.1):");
    println!("exhaustive search is confined to subgraphs of size at most δ̈.");
    println!("UB = min(degeneracy, butterfly, projection) upper bound, pre-search.");
}
