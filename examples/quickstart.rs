//! Quickstart: build a bipartite graph, open an engine session, and ask
//! for its maximum balanced biclique (plus a couple of sibling queries —
//! the point of the session API is that they share the cached indices).
//!
//! ```text
//! cargo run -p mbb-examples --release --example quickstart
//! ```

use std::time::Duration;

use mbb_bigraph::graph::BipartiteGraph;
use mbb_core::engine::MbbEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1(b): users 1..6 on the left, items 7..12 on the
    // right (0-indexed here). The maximum balanced biclique is
    // ({3, 4}, {9, 10}) — users 3 and 4 both connected to items 9 and 10.
    let graph = BipartiteGraph::from_edges(
        6,
        6,
        [
            (0, 0), // 1-7
            (1, 0), // 2-7
            (1, 1), // 2-8
            (2, 1), // 3-8
            (2, 2), // 3-9
            (2, 3), // 3-10
            (3, 2), // 4-9
            (3, 3), // 4-10
            (4, 2), // 5-9
            (4, 3), // 5-10
            (5, 4), // 6-11
            (5, 5), // 6-12
        ],
    )?;

    println!("graph: {graph:?}");

    // One session per graph; every query below shares its cached indices.
    let engine = MbbEngine::new(graph);

    // The full builder: deadline, threads, then the query kind.
    let result = engine
        .query()
        .deadline(Duration::from_secs(10))
        .threads(0) // 0 = one verification worker per core
        .solve();
    let mbb = &result.value;
    println!(
        "maximum balanced biclique: L = {:?}, R = {:?} (total size {})",
        mbb.left,
        mbb.right,
        mbb.total_size()
    );
    assert!(result.termination.is_complete(), "10s is plenty here");
    assert!(mbb.is_valid(engine.graph()));
    assert_eq!(mbb.half_size(), 2);
    println!(
        "solved in stage {} (δ = {}, δ̈ = {}, {} vertex-centred subgraphs)",
        result.stats.stage,
        result.stats.degeneracy,
        result.stats.bidegeneracy,
        result.stats.subgraphs_generated,
    );

    // Sibling queries on the same session: top-k and the size frontier.
    let top = engine.topk(2);
    println!(
        "top-2 balanced bicliques: sizes {:?}",
        top.value
            .iter()
            .map(|b| b.balanced_size())
            .collect::<Vec<_>>()
    );
    let frontier = engine.frontier();
    println!("feasible size frontier: {:?}", frontier.value.pairs);
    assert_eq!(frontier.value.mbb_half(), 2);

    // The session computed its search order exactly once across all three
    // queries — the index-reuse counters prove it.
    let index = engine.index_stats();
    println!(
        "session indices: {} order(s) computed, {} reuse(s), {:.1}ms preprocessing",
        index.orders_computed,
        index.orders_reused,
        index.preprocess_seconds * 1e3
    );
    assert_eq!(index.orders_computed, 1);
    Ok(())
}
