//! Quickstart: build a bipartite graph, find its maximum balanced biclique.
//!
//! ```text
//! cargo run -p mbb-bench --release --example quickstart
//! ```

use mbb_bigraph::graph::BipartiteGraph;
use mbb_core::{MbbSolver, SolverConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1(b): users 1..6 on the left, items 7..12 on the
    // right (0-indexed here). The maximum balanced biclique is
    // ({3, 4}, {9, 10}) — users 3 and 4 both connected to items 9 and 10.
    let graph = BipartiteGraph::from_edges(
        6,
        6,
        [
            (0, 0), // 1-7
            (1, 0), // 2-7
            (1, 1), // 2-8
            (2, 1), // 3-8
            (2, 2), // 3-9
            (2, 3), // 3-10
            (3, 2), // 4-9
            (3, 3), // 4-10
            (4, 2), // 5-9
            (4, 3), // 5-10
            (5, 4), // 6-11
            (5, 5), // 6-12
        ],
    )?;

    println!("graph: {graph:?}");

    // The one-liner.
    let mbb = mbb_core::solve_mbb(&graph);
    println!(
        "maximum balanced biclique: L = {:?}, R = {:?} (total size {})",
        mbb.left,
        mbb.right,
        mbb.total_size()
    );
    assert!(mbb.is_valid(&graph));
    assert_eq!(mbb.half_size(), 2);

    // The full API: configure the solver and inspect the statistics.
    let solver = MbbSolver::with_config(SolverConfig {
        heuristic_seeds: 4,
        ..Default::default()
    });
    let result = solver.solve(&graph);
    println!(
        "solved in stage {} (δ = {}, δ̈ = {}, {} vertex-centred subgraphs)",
        result.stats.stage,
        result.stats.degeneracy,
        result.stats.bidegeneracy,
        result.stats.subgraphs_generated,
    );
    Ok(())
}
