//! Biological biclustering (§1 of the paper): find the largest balanced
//! bicluster in a gene–condition expression graph.
//!
//! Following Cheng & Church [7], a bicluster is a set of genes co-expressed
//! under a set of conditions; an exact maximum *balanced* bicluster is a
//! maximum balanced biclique of the bipartite graph connecting genes to the
//! conditions under which they are over-expressed. Real expression graphs
//! are large and sparse with a heavy-tailed degree distribution — the
//! regime `hbvMBB` (Algorithm 4) was designed for.
//!
//! ```text
//! cargo run -p mbb-bench --release --example biological_biclustering
//! ```

use mbb_bigraph::generators::{chung_lu_bipartite, plant_balanced_biclique, ChungLuParams};
use mbb_core::MbbEngine;

fn main() {
    // Synthetic expression data: 4000 genes × 300 conditions, ~25k
    // over-expression events, with a hidden 12-gene × 12-condition module.
    let background = chung_lu_bipartite(
        &ChungLuParams {
            num_left: 4000,
            num_right: 300,
            num_edges: 25_000,
            left_exponent: 0.75,
            right_exponent: 0.75,
        },
        2024,
    );
    let (expression, module_genes, module_conditions) = plant_balanced_biclique(&background, 12);

    println!(
        "expression graph: {} genes x {} conditions, {} events",
        expression.num_left(),
        expression.num_right(),
        expression.num_edges()
    );
    println!(
        "hidden module: {} genes x {} conditions\n",
        module_genes.len(),
        module_conditions.len()
    );

    let engine = MbbEngine::new(expression.clone());
    let start = std::time::Instant::now();
    let result = engine.solve();
    let elapsed = start.elapsed();

    println!(
        "maximum balanced bicluster: {} genes x {} conditions (found in {elapsed:.2?})",
        result.value.left.len(),
        result.value.right.len()
    );
    println!("genes:      {:?}", result.value.left);
    println!("conditions: {:?}", result.value.right);
    println!(
        "solver stopped at stage {} (δ = {}, δ̈ = {}, {} subgraphs verified)",
        result.stats.stage,
        result.stats.degeneracy,
        result.stats.bidegeneracy,
        result.stats.subgraphs_verified
    );

    assert!(result.value.is_valid(&expression));
    assert!(
        result.value.half_size() >= 12,
        "the planted module is a lower bound on the optimum"
    );
    // The planted module sits on hub vertices 0..12 of both sides; verify
    // the found bicluster is at least as large as the plant.
    println!("\nexact: no larger balanced bicluster exists in this dataset.");
}
