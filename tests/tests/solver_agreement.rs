//! Cross-crate agreement: every exact algorithm in the workspace must
//! report the same optimum half-size on the same graph.

use mbb_baselines::exhaustive::brute_force_mbb;
use mbb_baselines::{all_adapted, ext_bbclq};
use mbb_bigraph::generators;
use mbb_core::{dense_mbb_graph, MbbSolver, SolverConfig};

fn all_exact_halves(graph: &mbb_bigraph::BipartiteGraph) -> Vec<(String, usize)> {
    let mut results = Vec::new();
    results.push(("brute".to_string(), brute_force_mbb(graph).half_size()));
    results.push((
        "hbvMBB".to_string(),
        MbbSolver::new().solve(graph).biclique.half_size(),
    ));
    for (name, config) in [
        ("bd1", SolverConfig::bd1()),
        ("bd2", SolverConfig::bd2()),
        ("bd3", SolverConfig::bd3()),
        ("bd4", SolverConfig::bd4()),
        ("bd5", SolverConfig::bd5()),
    ] {
        results.push((
            name.to_string(),
            MbbSolver::with_config(config)
                .solve(graph)
                .biclique
                .half_size(),
        ));
    }
    results.push((
        "denseMBB".to_string(),
        dense_mbb_graph(graph).biclique.half_size(),
    ));
    results.push(("extBBClq".to_string(), {
        let out = ext_bbclq(graph, None);
        assert!(!out.timed_out);
        out.biclique.half_size()
    }));
    for baseline in all_adapted() {
        let out = baseline.run(graph, None);
        assert!(!out.timed_out);
        results.push((baseline.name().to_string(), out.biclique.half_size()));
    }
    results
}

fn assert_agreement(graph: &mbb_bigraph::BipartiteGraph, label: &str) {
    let results = all_exact_halves(graph);
    let expected = results[0].1;
    for (name, half) in &results {
        assert_eq!(
            *half, expected,
            "{label}: {name} found {half}, brute force found {expected}"
        );
    }
}

#[test]
fn agreement_on_uniform_random_graphs() {
    for seed in 0..10u64 {
        let g = generators::uniform_edges(12, 12, 60, seed);
        assert_agreement(&g, &format!("uniform seed {seed}"));
    }
}

#[test]
fn agreement_on_dense_graphs() {
    for seed in 0..6u64 {
        for density in [0.7, 0.85, 0.95] {
            let g = generators::dense_uniform(10, 10, density, seed);
            assert_agreement(&g, &format!("dense {density} seed {seed}"));
        }
    }
}

#[test]
fn agreement_on_power_law_graphs() {
    for seed in 0..6u64 {
        let g = generators::chung_lu_bipartite(
            &generators::ChungLuParams {
                num_left: 14,
                num_right: 12,
                num_edges: 55,
                left_exponent: 0.75,
                right_exponent: 0.75,
            },
            seed,
        );
        assert_agreement(&g, &format!("power-law seed {seed}"));
    }
}

#[test]
fn agreement_on_lopsided_graphs() {
    for seed in 0..5u64 {
        let g = generators::uniform_edges(6, 20, 50, seed);
        assert_agreement(&g, &format!("lopsided seed {seed}"));
    }
}

#[test]
fn agreement_on_structured_graphs() {
    // Complete graph.
    assert_agreement(&generators::complete(6, 6), "complete 6x6");
    // Star.
    let star = mbb_bigraph::BipartiteGraph::from_edges(1, 10, (0..10).map(|v| (0, v))).unwrap();
    assert_agreement(&star, "star");
    // Perfect matching (disjoint edges).
    let matching = mbb_bigraph::BipartiteGraph::from_edges(8, 8, (0..8).map(|i| (i, i))).unwrap();
    assert_agreement(&matching, "matching");
    // Planted biclique in noise.
    let g = generators::uniform_edges(12, 12, 30, 3);
    let (planted, _, _) = generators::plant_balanced_biclique(&g, 4);
    assert_agreement(&planted, "planted");
}
