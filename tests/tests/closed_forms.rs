//! Closed-form verification: structured graph families whose MBB,
//! butterfly counts, frontier and component structure are derivable by
//! hand. Every public API must reproduce the formula — a failure here
//! localises a bug much faster than a random-graph mismatch.

// These suites intentionally keep exercising the deprecated one-shot
// wrappers: they are the compatibility surface over the engine, and the
// engine itself is covered by tests/tests/engine_api.rs.
#![allow(deprecated)]

use mbb_bigraph::butterfly::count_butterflies;
use mbb_bigraph::components::connected_components;
use mbb_bigraph::core_decomp::core_decomposition;
use mbb_bigraph::generators::complete;
use mbb_bigraph::graph::BipartiteGraph;
use mbb_core::enumerate::{all_maximal_bicliques, EnumConfig};
use mbb_core::frontier::SizeFrontier;
use mbb_core::solve_mbb;
use mbb_core::topk::topk_balanced_bicliques;

/// K(m, n) minus a perfect matching on the first `min(m, n)` pairs
/// (the "crown" when m = n).
fn complete_minus_matching(m: u32, n: u32) -> BipartiteGraph {
    let edges = (0..m).flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)));
    BipartiteGraph::from_edges(m, n, edges).unwrap()
}

/// Alternating path with `k` edges: L0-R0-L1-R1-…
fn path(k: u32) -> BipartiteGraph {
    let edges = (0..k).map(|i| {
        if i % 2 == 0 {
            (i / 2, i / 2)
        } else {
            (i / 2 + 1, i / 2)
        }
    });
    let nl = k / 2 + 1;
    let nr = k.div_ceil(2);
    BipartiteGraph::from_edges(nl, nr, edges).unwrap()
}

/// Even cycle with `2k` vertices (`k` per side).
fn cycle(k: u32) -> BipartiteGraph {
    assert!(k >= 2);
    let edges = (0..k).flat_map(|i| [(i, i), (i, (i + k - 1) % k)]);
    BipartiteGraph::from_edges(k, k, edges).unwrap()
}

/// Two hubs joined by an edge, each with `p` pendant leaves.
fn double_star(p: u32) -> BipartiteGraph {
    let mut edges = vec![(0u32, 0u32)];
    edges.extend((0..p).map(|i| (0, 1 + i))); // left hub leaves
    edges.extend((0..p).map(|i| (1 + i, 0))); // right hub leaves
    BipartiteGraph::from_edges(p + 1, p + 1, edges).unwrap()
}

#[test]
fn complete_bipartite_formulas() {
    for (m, n) in [(2u32, 2u32), (3, 5), (6, 4), (7, 7)] {
        let g = complete(m, n);
        let k = m.min(n) as usize;
        assert_eq!(solve_mbb(&g).half_size(), k, "K({m},{n})");
        // One maximal biclique: the whole graph.
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert_eq!(all.len(), 1);
        // C(m,2) · C(n,2) butterflies.
        let expected = (m as u64 * (m as u64 - 1) / 2) * (n as u64 * (n as u64 - 1) / 2);
        assert_eq!(count_butterflies(&g), expected);
        // Frontier is the single point (m, n).
        let f = SizeFrontier::of(&g, None);
        assert_eq!(f.pairs, vec![(m as usize, n as usize)]);
        // Degeneracy is min(m, n).
        assert_eq!(core_decomposition(&g).degeneracy, m.min(n));
        assert_eq!(connected_components(&g).count, 1);
    }
}

#[test]
fn crown_graph_formulas() {
    // K(n,n) minus a perfect matching: MBB half = floor(n/2) (split the
    // matching pairs between the sides), butterflies = C(n,2)² − C(n,2)·
    // … computed via the n(n-1)/2 pairs sharing n−2 commons:
    // each left pair (u,w) has n−2 common neighbours → C(n−2,2) each.
    for n in [3u32, 4, 5, 6, 7] {
        let g = complete_minus_matching(n, n);
        assert_eq!(solve_mbb(&g).half_size(), (n / 2) as usize, "crown {n}");
        let pairs = n as u64 * (n as u64 - 1) / 2;
        let c = n as u64 - 2;
        assert_eq!(
            count_butterflies(&g),
            pairs * (c * (c - 1) / 2),
            "crown {n}"
        );
    }
}

#[test]
fn complete_minus_one_edge() {
    // K(n,n) minus a single edge: half = n − 1.
    for n in [2u32, 3, 4, 5] {
        let edges = (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .filter(|&(u, v)| !(u == 0 && v == 0));
        let g = BipartiteGraph::from_edges(n, n, edges).unwrap();
        assert_eq!(solve_mbb(&g).half_size(), (n - 1) as usize, "n = {n}");
        // Exactly two maximal bicliques: (L∖{0})×R and L×(R∖{0}).
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert_eq!(all.len(), 2, "n = {n}");
    }
}

#[test]
fn paths_have_half_one() {
    // Trees are C4-free: MBB half is 1 as soon as an edge exists.
    for k in 1..8u32 {
        let g = path(k);
        assert_eq!(solve_mbb(&g).half_size(), 1, "P_{k}");
        assert_eq!(count_butterflies(&g), 0);
        // A path's maximal bicliques are its stars around internal
        // vertices (degree-2) and, for k = 1, the single edge.
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert!(all.iter().all(|b| b.balanced_size() == 1));
        assert_eq!(connected_components(&g).count, 1);
    }
}

#[test]
fn cycles_formulas() {
    // C4 (k = 2) is K(2,2): half 2, one butterfly. Longer even cycles are
    // C4-free: half 1, one maximal biclique (a 2-star) per vertex.
    let c4 = cycle(2);
    assert_eq!(solve_mbb(&c4).half_size(), 2);
    assert_eq!(count_butterflies(&c4), 1);
    for k in 3..8u32 {
        let g = cycle(k);
        assert_eq!(solve_mbb(&g).half_size(), 1, "C_{}", 2 * k);
        assert_eq!(count_butterflies(&g), 0);
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert_eq!(
            all.len(),
            2 * k as usize,
            "C_{}: one star per vertex",
            2 * k
        );
        // Every vertex has degree 2, so the core number is 2 everywhere.
        assert_eq!(core_decomposition(&g).degeneracy, 2);
    }
}

#[test]
fn double_star_formulas() {
    for p in [1u32, 3, 6] {
        let g = double_star(p);
        assert_eq!(solve_mbb(&g).half_size(), 1, "double star {p}");
        assert_eq!(count_butterflies(&g), 0);
        // Maximal bicliques: the two hub stars ({L0}×R-side and
        // L-side×{R0}).
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert_eq!(all.len(), 2, "double star {p}");
        let top = topk_balanced_bicliques(&g, 2, None);
        assert_eq!(top.bicliques.len(), 2);
        assert_eq!(top.bicliques[0].balanced_size(), 1);
    }
}

#[test]
fn disjoint_union_of_blocks() {
    // Blocks of sizes 1..=4 stacked diagonally: MBB = the largest block;
    // component count = number of blocks; butterflies add up.
    let mut edges = Vec::new();
    let mut offset = 0u32;
    let mut expected_butterflies = 0u64;
    for size in 1..=4u32 {
        for u in 0..size {
            for v in 0..size {
                edges.push((offset + u, offset + v));
            }
        }
        let pairs = size as u64 * (size as u64 - 1) / 2;
        expected_butterflies += pairs * pairs;
        offset += size;
    }
    let g = BipartiteGraph::from_edges(offset, offset, edges).unwrap();
    assert_eq!(solve_mbb(&g).half_size(), 4);
    assert_eq!(connected_components(&g).count, 4);
    assert_eq!(count_butterflies(&g), expected_butterflies);
    // Top-4 balanced sizes are exactly 4, 3, 2, 1.
    let top = topk_balanced_bicliques(&g, 4, None);
    let sizes: Vec<usize> = top.bicliques.iter().map(|b| b.balanced_size()).collect();
    assert_eq!(sizes, vec![4, 3, 2, 1]);
    // The frontier stacks the blocks: (k, k) pairs are dominated by (4,4)
    // … every block is a square, so the frontier is just (4, 4).
    let f = SizeFrontier::of(&g, None);
    assert_eq!(f.pairs, vec![(4, 4)]);
}

#[test]
fn grid_graph_formulas() {
    // The 3×3 rook's graph interpretation: left = rows, right = columns,
    // cell (i, j) an edge with multiplicity 1 — i.e. K(3,3); sanity-check
    // the generator path instead with an explicit bipartite grid
    // (incidence of a 4-cycle chain): C4 chain glued edge-to-edge.
    // Two glued C4s share two vertices; the MBB is still 2×2.
    let g =
        BipartiteGraph::from_edges(3, 2, [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]).unwrap();
    // This is K(3,2): half = 2, frontier (3,2).
    assert_eq!(solve_mbb(&g).half_size(), 2);
    assert_eq!(SizeFrontier::of(&g, None).pairs, vec![(3, 2)]);
}

#[test]
fn single_vertex_sides() {
    // 1×n star: half 1, frontier (1, n).
    for n in [1u32, 4, 9] {
        let g = BipartiteGraph::from_edges(1, n, (0..n).map(|v| (0, v))).unwrap();
        assert_eq!(solve_mbb(&g).half_size(), 1);
        assert_eq!(SizeFrontier::of(&g, None).pairs, vec![(1, n as usize)]);
        assert_eq!(count_butterflies(&g), 0);
    }
}
