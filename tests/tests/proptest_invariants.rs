//! Property-based invariants across the workspace.

// These suites intentionally keep exercising the deprecated one-shot
// wrappers: they are the compatibility surface over the engine, and the
// engine itself is covered by tests/tests/engine_api.rs.
#![allow(deprecated)]

use mbb_baselines::exhaustive::brute_force_mbb;
use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::core_decomp::core_decomposition;
use mbb_bigraph::generators;
use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::matching::maximum_vertex_biclique;
use mbb_core::MbbSolver;
use proptest::prelude::*;

/// Strategy: a random bipartite graph with sides ≤ 10 and arbitrary edges.
fn small_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..=10, 1u32..=10).prop_flat_map(|(nl, nr)| {
        proptest::collection::vec((0..nl, 0..nr), 0..=((nl * nr) as usize))
            .prop_map(move |edges| BipartiteGraph::from_edges(nl, nr, edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_matches_brute_force(g in small_graph()) {
        let exact = MbbSolver::new().solve(&g);
        let brute = brute_force_mbb(&g);
        prop_assert_eq!(exact.biclique.half_size(), brute.half_size());
        prop_assert!(exact.biclique.is_valid(&g));
    }

    #[test]
    fn mbb_bounded_by_mvb(g in small_graph()) {
        // A balanced biclique is a biclique: 2·half ≤ MVB total.
        let exact = MbbSolver::new().solve(&g);
        let (a, b) = maximum_vertex_biclique(&g);
        prop_assert!(2 * exact.biclique.half_size() <= a.len() + b.len());
    }

    #[test]
    fn mbb_half_bounded_by_degeneracy(g in small_graph()) {
        // A (k,k) biclique is a k-core, so half ≤ δ(G).
        let exact = MbbSolver::new().solve(&g);
        let degeneracy = core_decomposition(&g).degeneracy as usize;
        prop_assert!(exact.biclique.half_size() <= degeneracy);
    }

    #[test]
    fn bicore_dominates_core(g in small_graph()) {
        let cores = core_decomposition(&g);
        let bicores = bicore_decomposition(&g);
        for v in 0..g.num_vertices() {
            prop_assert!(bicores.bicore[v] >= cores.core[v]);
        }
    }

    #[test]
    fn biclique_witness_is_sorted_and_unique(g in small_graph()) {
        let exact = MbbSolver::new().solve(&g);
        let b = &exact.biclique;
        prop_assert!(b.left.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(b.right.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn solver_is_deterministic(g in small_graph()) {
        let a = MbbSolver::new().solve(&g);
        let b = MbbSolver::new().solve(&g);
        prop_assert_eq!(a.biclique, b.biclique);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn enumeration_best_equals_mbb(g in small_graph()) {
        use mbb_core::enumerate::{all_maximal_bicliques, EnumConfig};
        let (all, complete) = all_maximal_bicliques(&g, &EnumConfig::default());
        prop_assert!(complete);
        let best = all.iter().map(|b| b.balanced_size()).max().unwrap_or(0);
        prop_assert_eq!(best, brute_force_mbb(&g).half_size());
    }

    #[test]
    fn enumeration_has_no_duplicates(g in small_graph()) {
        use mbb_core::enumerate::{all_maximal_bicliques, EnumConfig};
        use std::collections::HashSet;
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        let set: HashSet<_> = all.iter().map(|b| (b.left.clone(), b.right.clone())).collect();
        prop_assert_eq!(set.len(), all.len());
        for b in &all {
            prop_assert!(b.is_maximal(&g));
        }
    }

    #[test]
    fn topk_is_a_sorted_prefix_of_enumeration(g in small_graph(), k in 1usize..5) {
        use mbb_core::topk::topk_balanced_bicliques;
        let out = topk_balanced_bicliques(&g, k, None);
        prop_assert!(out.complete);
        for w in out.bicliques.windows(2) {
            let a = (w[0].balanced_size(), w[0].total_size());
            let b = (w[1].balanced_size(), w[1].total_size());
            prop_assert!(a >= b);
        }
        let top1 = out.bicliques.first().map_or(0, |b| b.balanced_size());
        prop_assert_eq!(top1, brute_force_mbb(&g).half_size());
    }

    #[test]
    fn anchored_is_bounded_and_achieved(g in small_graph()) {
        use mbb_core::anchored::anchored_mbb;
        use mbb_bigraph::graph::Vertex;
        let global = brute_force_mbb(&g).half_size();
        let mut best = 0;
        for u in 0..g.num_left() as u32 {
            let (b, _) = anchored_mbb(&g, Vertex::left(u));
            prop_assert!(b.half_size() <= global);
            prop_assert!(b.is_empty() || b.is_valid(&g));
            best = best.max(b.half_size());
        }
        if g.num_edges() > 0 {
            prop_assert_eq!(best, global);
        }
    }

    #[test]
    fn butterflies_match_brute_force(g in small_graph()) {
        use mbb_bigraph::butterfly::count_butterflies;
        let nl = g.num_left() as u32;
        let nr = g.num_right() as u32;
        let mut brute = 0u64;
        for u1 in 0..nl {
            for u2 in u1 + 1..nl {
                for v1 in 0..nr {
                    for v2 in v1 + 1..nr {
                        if g.has_edge(u1, v1) && g.has_edge(u1, v2)
                            && g.has_edge(u2, v1) && g.has_edge(u2, v2) {
                            brute += 1;
                        }
                    }
                }
            }
        }
        prop_assert_eq!(count_butterflies(&g), brute);
    }

    #[test]
    fn scoped_and_consensus_enumerators_agree(g in small_graph()) {
        use mbb_core::enumerate::{all_maximal_bicliques, EnumConfig};
        use mbb_core::enumerate_scoped::all_maximal_bicliques_scoped;
        use std::collections::HashSet;
        let (a, c1) = all_maximal_bicliques(&g, &EnumConfig::default());
        let (b, c2) = all_maximal_bicliques_scoped(&g, &EnumConfig::default());
        prop_assert!(c1 && c2);
        let sa: HashSet<_> = a.iter().map(|x| (x.left.clone(), x.right.clone())).collect();
        let sb: HashSet<_> = b.iter().map(|x| (x.left.clone(), x.right.clone())).collect();
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn projection_bound_is_sound(g in small_graph()) {
        use mbb_bigraph::graph::Side;
        use mbb_bigraph::projection::project;
        let half = brute_force_mbb(&g).half_size();
        prop_assert!(project(&g, Side::Left).mbb_half_upper_bound() >= half);
        prop_assert!(project(&g, Side::Right).mbb_half_upper_bound() >= half);
    }

    #[test]
    fn weighted_with_unit_weights_is_mbb(g in small_graph()) {
        use mbb_core::weighted::weighted_mbb;
        let weights = vec![1u64; g.num_vertices()];
        let (_, weight) = weighted_mbb(&g, &weights);
        prop_assert_eq!(weight as usize, 2 * brute_force_mbb(&g).half_size());
    }

    #[test]
    fn frontier_corners_are_consistent(g in small_graph()) {
        use mbb_core::frontier::SizeFrontier;
        let f = SizeFrontier::of(&g, None);
        prop_assert!(f.complete);
        prop_assert_eq!(f.mbb_half(), brute_force_mbb(&g).half_size());
        // Every frontier pair is feasible by definition and undominated.
        for (i, &(a, b)) in f.pairs.iter().enumerate() {
            prop_assert!(f.is_feasible(a, b));
            for (j, &(a2, b2)) in f.pairs.iter().enumerate() {
                if i != j {
                    prop_assert!(!(a2 >= a && b2 >= b), "dominated pair in frontier");
                }
            }
        }
    }

    #[test]
    fn warm_start_never_changes_the_answer(g in small_graph()) {
        let cold = MbbSolver::new().solve(&g);
        let warm = MbbSolver::new().solve_with_incumbent(&g, cold.biclique.clone());
        prop_assert_eq!(warm.biclique.half_size(), cold.biclique.half_size());
    }

    #[test]
    fn componentwise_solve_is_exact(g in small_graph()) {
        let parts = MbbSolver::new().solve_componentwise(&g);
        prop_assert_eq!(parts.biclique.half_size(), brute_force_mbb(&g).half_size());
        prop_assert!(parts.biclique.is_empty() || parts.biclique.is_valid(&g));
    }

    #[test]
    fn incremental_matches_cold_after_one_update(
        g in small_graph(),
        u in 0u32..10,
        v in 0u32..10,
        delete in proptest::bool::ANY,
    ) {
        use mbb_core::incremental::IncrementalMbb;
        let mut inc = IncrementalMbb::from_graph(&g);
        inc.solve();
        let u = u % g.num_left() as u32;
        let v = v % g.num_right() as u32;
        if delete {
            inc.remove_edge(u, v);
        } else {
            inc.insert_edge(u, v).unwrap();
        }
        let warm = inc.solve().biclique;
        let cold = brute_force_mbb(&inc.snapshot());
        prop_assert_eq!(warm.half_size(), cold.half_size());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planted_biclique_is_found(
        seed in 0u64..1000,
        half in 3u32..6,
        noise in 20usize..80,
    ) {
        let g = generators::uniform_edges(20, 20, noise, seed);
        let (planted, _, _) = generators::plant_balanced_biclique(&g, half);
        let exact = MbbSolver::new().solve(&planted);
        prop_assert!(exact.biclique.half_size() >= half as usize);
        prop_assert!(exact.biclique.is_valid(&planted));
    }

    #[test]
    fn subgraph_optimum_never_exceeds_graph_optimum(
        seed in 0u64..1000,
    ) {
        // Monotonicity: deleting vertices cannot grow the MBB.
        let g = generators::uniform_edges(10, 10, 45, seed);
        let full = MbbSolver::new().solve(&g).biclique.half_size();
        let sub = mbb_bigraph::subgraph::induce_by_ids(
            &g,
            (0..8).collect(),
            (0..8).collect(),
        );
        let reduced = MbbSolver::new().solve(&sub.graph).biclique.half_size();
        prop_assert!(reduced <= full);
    }
}
