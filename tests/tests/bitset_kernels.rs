//! Differential tests for the fused bitset kernels.
//!
//! Every dispatched kernel in `mbb_bigraph::kernels` must be bit-for-bit
//! identical to the scalar reference loops in `kernels::reference`, on every
//! backend the host CPU offers (`Reference`, `Blocked`, and — with the `simd`
//! feature — `Sse2`/`Avx2`). The suite drives random word vectors with
//! ragged tails (`capacity % 64 != 0`), empty/full extremes, and single-bit
//! deltas, then closes the loop at solver level: `dense_mbb` must return the
//! same maximum balanced biclique whichever backend is live.
//!
//! Backend forcing mutates a process-wide static, so every test that calls
//! `force_backend` serialises through [`backend_lock`] and restores the
//! default dispatch on exit (panic included) via [`ForcedBackend`].

use std::sync::{Mutex, MutexGuard, OnceLock};

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::kernels::{self, available_backends, force_backend, Backend};
use mbb_bigraph::local::LocalGraph;
use mbb_core::dense::dense_mbb;
use proptest::bool::ANY;
use proptest::prelude::*;

/// Global lock serialising tests that force a kernel backend.
fn backend_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        // A test that panicked while holding the lock poisons it; the forced
        // backend is still restored by `ForcedBackend::drop`, so the lock
        // state itself is fine to reuse.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// RAII guard: forces `backend` on construction, restores runtime dispatch
/// on drop so a panicking test cannot leak a forced backend into the next.
struct ForcedBackend;

impl ForcedBackend {
    fn new(backend: Backend) -> Self {
        assert!(
            force_backend(Some(backend)),
            "backend {} unavailable on this host",
            backend.name()
        );
        ForcedBackend
    }
}

impl Drop for ForcedBackend {
    fn drop(&mut self) {
        force_backend(None);
    }
}

/// Runs `check` once per backend available on this host, serialised against
/// every other backend-forcing test in the binary.
fn with_each_backend(mut check: impl FnMut(Backend)) {
    let _serial = backend_lock();
    for backend in available_backends() {
        let _forced = ForcedBackend::new(backend);
        check(backend);
    }
}

/// Packs `bits` (little-endian bit order) into 64-bit words, leaving any
/// tail bits beyond `bits.len()` zero, exactly like `BitSet` storage.
fn pack(bits: &[bool]) -> Vec<u64> {
    let words = bits.len().div_ceil(64).max(1);
    let mut out = vec![0u64; words];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
    out
}

/// Strategy: a pair of equal-capacity random bit vectors whose capacity
/// sweeps word boundaries (ragged tails and multi-word lengths).
fn word_pairs() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, usize)> {
    (1usize..=310).prop_flat_map(|cap| {
        (
            proptest::collection::vec(ANY, cap),
            proptest::collection::vec(ANY, cap),
        )
            .prop_map(move |(a, b)| (pack(&a), pack(&b), cap))
    })
}

/// Asserts every dispatched kernel on the live backend agrees with the
/// scalar reference implementation for the word pair `(a, b)`.
fn assert_kernels_match(backend: Backend, a: &[u64], b: &[u64]) {
    let tag = backend.name();
    assert_eq!(
        kernels::popcount(a),
        kernels::reference::popcount(a),
        "popcount diverged on {tag}"
    );
    assert_eq!(
        kernels::and_popcount(a, b),
        kernels::reference::and_popcount(a, b),
        "and_popcount diverged on {tag}"
    );
    assert_eq!(
        kernels::andnot_popcount(a, b),
        kernels::reference::andnot_popcount(a, b),
        "andnot_popcount diverged on {tag}"
    );
    assert_eq!(
        kernels::first_and(a, b),
        kernels::reference::first_and(a, b),
        "first_and diverged on {tag}"
    );
    assert_eq!(
        kernels::last_and(a, b),
        kernels::reference::last_and(a, b),
        "last_and diverged on {tag}"
    );
    assert_eq!(
        kernels::first_andnot(a, b),
        kernels::reference::first_andnot(a, b),
        "first_andnot diverged on {tag}"
    );

    // Mutating kernels: identical counts AND identical resulting words.
    for (name, fused, scalar) in [
        (
            "and_assign_count",
            kernels::and_assign_count as fn(&mut [u64], &[u64]) -> usize,
            kernels::reference::and_assign_count as fn(&mut [u64], &[u64]) -> usize,
        ),
        (
            "or_assign_count",
            kernels::or_assign_count,
            kernels::reference::or_assign_count,
        ),
        (
            "andnot_assign_count",
            kernels::andnot_assign_count,
            kernels::reference::andnot_assign_count,
        ),
    ] {
        let mut fused_words = a.to_vec();
        let mut scalar_words = a.to_vec();
        let fused_count = fused(&mut fused_words, b);
        let scalar_count = scalar(&mut scalar_words, b);
        assert_eq!(fused_count, scalar_count, "{name} count diverged on {tag}");
        assert_eq!(fused_words, scalar_words, "{name} words diverged on {tag}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Scalar vs fused vs SIMD, bit for bit, on random ragged-tail inputs.
    #[test]
    fn dispatched_kernels_match_reference(pair in word_pairs()) {
        let (a, b, _cap) = pair;
        with_each_backend(|backend| assert_kernels_match(backend, &a, &b));
    }

    // Flipping a single bit must shift every kernel's answer exactly the
    // way the reference loops say it should — on every backend.
    #[test]
    fn single_bit_deltas_track_reference(pair in word_pairs(), flip in 0usize..=309) {
        let (a, b, cap) = pair;
        let i = flip % cap;
        let mut a_flipped = a.clone();
        a_flipped[i / 64] ^= 1u64 << (i % 64);
        with_each_backend(|backend| {
            assert_kernels_match(backend, &a_flipped, &b);
            // The delta between original and flipped must be internally
            // consistent: exactly one bit of |a| moved.
            let before = kernels::popcount(&a);
            let after = kernels::popcount(&a_flipped);
            assert_eq!(
                before.abs_diff(after),
                1,
                "single-bit flip changed popcount by != 1 on {}",
                backend.name()
            );
        });
    }

    // Batched multi-row AND agrees with the reference fold for any stack
    // of rows, including the empty stack (accumulator unchanged).
    #[test]
    fn multi_and_matches_reference(
        cap in 0usize..=310,
        raw_rows in proptest::collection::vec(
            proptest::collection::vec(ANY, 0..=310),
            0..6
        ),
        acc in proptest::collection::vec(ANY, 0..=310),
    ) {
        let mut acc_bits = acc;
        acc_bits.resize(cap, true);
        let packed_rows: Vec<Vec<u64>> = raw_rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.resize(cap, false);
                pack(&r)
            })
            .collect();
        with_each_backend(|backend| {
            let rows_ref: Vec<&[u64]> = packed_rows.iter().map(|r| r.as_slice()).collect();
            let mut fused_acc = pack(&acc_bits);
            let mut scalar_acc = pack(&acc_bits);
            let fused = kernels::multi_and_popcount(&mut fused_acc, &rows_ref);
            let scalar = kernels::reference::multi_and_popcount(&mut scalar_acc, &rows_ref);
            assert_eq!(fused, scalar, "multi_and count diverged on {}", backend.name());
            assert_eq!(
                fused_acc,
                scalar_acc,
                "multi_and words diverged on {}",
                backend.name()
            );
        });
    }

    // Survivor scans through the `BitSet` surface agree with iterating the
    // materialised intersection, independent of backend.
    #[test]
    fn bitset_scans_match_materialised_sets(
        cap in 1usize..=200,
        a_bits in proptest::collection::vec(ANY, 200usize),
        b_bits in proptest::collection::vec(ANY, 200usize),
    ) {
        let mut a = BitSet::new(cap);
        let mut b = BitSet::new(cap);
        for (i, &bit) in a_bits.iter().take(cap).enumerate() {
            if bit {
                a.insert(i);
            }
        }
        for (i, &bit) in b_bits.iter().take(cap).enumerate() {
            if bit {
                b.insert(i);
            }
        }
        with_each_backend(|_| {
            let mut both = a.clone();
            both.intersect_with(&b);
            assert_eq!(a.intersection_len(&b), both.len());
            assert_eq!(
                a.first_intersection(&b),
                both.iter().next()
            );
            assert_eq!(
                a.last_intersection(&b),
                both.iter().last()
            );
            let mut only_a = a.clone();
            only_a.subtract(&b);
            assert_eq!(a.difference_len(&b), only_a.len());
            assert_eq!(
                a.first_difference(&b),
                only_a.iter().next()
            );
        });
    }

    // Solver-level closure: `dense_mbb` must find the same maximum balanced
    // biclique under every backend — scalar reference, blocked, and (with
    // the `simd` feature) the wide paths.
    #[test]
    fn dense_mbb_identical_across_backends(
        nl in 1usize..=9,
        nr in 1usize..=9,
        edges in proptest::collection::vec((0u32..9, 0u32..9), 0..=40),
    ) {
        let mut local = LocalGraph::new(nl, nr);
        for &(u, v) in &edges {
            if (u as usize) < nl && (v as usize) < nr {
                local.add_edge(u, v);
            }
        }
        let mut results = Vec::new();
        with_each_backend(|backend| {
            let (best, _stats) = dense_mbb(&local, 0);
            results.push((backend, best));
        });
        let (first_backend, first) = &results[0];
        for (backend, best) in &results[1..] {
            assert_eq!(
                (&best.left, &best.right),
                (&first.left, &first.right),
                "dense_mbb diverged: {} vs {}",
                backend.name(),
                first_backend.name()
            );
        }
    }
}

/// The full-scan extremes deserve deterministic (non-random) coverage at
/// each word-boundary capacity, on every backend.
#[test]
fn empty_and_full_extremes_every_backend() {
    for cap in [0usize, 1, 63, 64, 65, 127, 128, 191, 256, 300] {
        let empty = pack(&vec![false; cap]);
        let full = pack(&vec![true; cap]);
        with_each_backend(|backend| {
            assert_kernels_match(backend, &empty, &full);
            assert_kernels_match(backend, &full, &empty);
            assert_kernels_match(backend, &full, &full);
            assert_kernels_match(backend, &empty, &empty);
            assert_eq!(
                kernels::popcount(&full),
                cap,
                "full popcount at cap {cap} on {}",
                backend.name()
            );
        });
    }
}

/// `force_backend` rejects backends the host cannot run and reports the
/// forced backend through `active_backend`.
#[test]
fn force_backend_roundtrip() {
    let _serial = backend_lock();
    let available = available_backends();
    assert!(available.contains(&Backend::Reference));
    assert!(available.contains(&Backend::Blocked));
    for backend in available.iter().copied() {
        let _forced = ForcedBackend::new(backend);
        assert_eq!(kernels::active_backend(), backend);
    }
    // After every guard dropped, dispatch falls back to runtime detection.
    assert!(available.contains(&kernels::active_backend()));
}
