//! End-to-end runs over the KONECT stand-ins at test scale.

use mbb_core::{MbbSolver, Stage};
use mbb_datasets::{catalog, find, stand_in, ScaleCaps};

/// Golden round trip: every generator family, written with
/// `write_edge_list` and re-read through the streaming two-pass builder,
/// reproduces the buffered reader's CSR arrays exactly — and the re-read
/// graph carries the original edge set (trailing isolated vertices are
/// the one lossy aspect of the text format, by design).
#[test]
fn generator_write_streaming_read_round_trip() {
    use mbb_bigraph::generators;

    let graphs: Vec<(&str, mbb_bigraph::BipartiteGraph)> = vec![
        ("uniform", generators::uniform_edges(40, 30, 220, 3)),
        ("complete", generators::complete(9, 7)),
        ("dense", generators::dense_uniform(24, 24, 0.8, 5)),
        (
            "chung-lu",
            generators::chung_lu_bipartite(
                &generators::ChungLuParams {
                    num_left: 80,
                    num_right: 60,
                    num_edges: 500,
                    left_exponent: 0.75,
                    right_exponent: 0.75,
                },
                11,
            ),
        ),
        (
            "stand-in",
            stand_in(find("unicodelang").unwrap(), ScaleCaps::small(), 21).graph,
        ),
    ];

    for (name, graph) in graphs {
        let mut text = Vec::new();
        mbb_bigraph::io::write_edge_list(&graph, &mut text).unwrap();
        let streamed =
            mbb_bigraph::io::read_edge_list_streaming(std::io::Cursor::new(&text)).unwrap();
        let buffered = mbb_bigraph::io::read_edge_list(std::io::Cursor::new(&text)).unwrap();

        assert_eq!(
            streamed.left_offsets(),
            buffered.left_offsets(),
            "{name}: left offsets"
        );
        assert_eq!(
            streamed.left_neighbors(),
            buffered.left_neighbors(),
            "{name}: left adjacency"
        );
        assert_eq!(
            streamed.right_offsets(),
            buffered.right_offsets(),
            "{name}: right offsets"
        );
        assert_eq!(
            streamed.right_neighbors(),
            buffered.right_neighbors(),
            "{name}: right adjacency"
        );

        assert_eq!(
            streamed.num_edges(),
            graph.num_edges(),
            "{name}: edge count"
        );
        for (u, v) in graph.edges() {
            assert!(streamed.has_edge(u, v), "{name}: lost edge ({u}, {v})");
        }
    }
}

#[test]
fn every_standin_solves_and_meets_the_plant() {
    for spec in catalog() {
        let standin = stand_in(spec, ScaleCaps::small(), 11);
        let result = MbbSolver::new().solve(&standin.graph);
        assert!(
            result.biclique.is_valid(&standin.graph),
            "{}: invalid witness",
            spec.name
        );
        assert!(
            result.biclique.half_size() >= standin.planted_half as usize,
            "{}: found {} < planted {}",
            spec.name,
            result.biclique.half_size(),
            standin.planted_half
        );
    }
}

#[test]
fn standins_are_deterministic_across_calls() {
    let spec = find("github").unwrap();
    let a = stand_in(spec, ScaleCaps::small(), 3);
    let b = stand_in(spec, ScaleCaps::small(), 3);
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    let ra = MbbSolver::new().solve(&a.graph);
    let rb = MbbSolver::new().solve(&b.graph);
    assert_eq!(ra.biclique, rb.biclique);
}

#[test]
fn tough_standins_exercise_later_stages() {
    // At default caps the tough datasets carry a core inflater that defeats
    // the Lemma 5 early exit; at least some of them must reach S2/S3.
    let mut later_stage = 0;
    for name in ["github", "pics-ut", "reuters"] {
        let spec = find(name).unwrap();
        let standin = stand_in(spec, ScaleCaps::default(), 42);
        let result = MbbSolver::new().solve(&standin.graph);
        assert!(result.biclique.half_size() >= standin.planted_half as usize);
        if result.stats.stage != Stage::S1 {
            later_stage += 1;
        }
    }
    assert!(later_stage >= 1, "all tough stand-ins exited at stage S1");
}

#[test]
fn stage_statistics_are_consistent() {
    let spec = find("escorts").unwrap();
    let standin = stand_in(spec, ScaleCaps::small(), 5);
    let result = MbbSolver::new().solve(&standin.graph);
    let stats = &result.stats;
    assert_eq!(stats.optimum_half, result.biclique.half_size());
    assert!(stats.heuristic_global_half <= stats.heuristic_local_half);
    assert!(stats.heuristic_local_half <= stats.optimum_half);
    if stats.stage == Stage::S3 {
        assert!(stats.subgraphs_generated >= stats.subgraphs_verified);
    }
}

#[test]
fn parallel_and_sequential_agree_on_standins() {
    use mbb_core::SolverConfig;
    let spec = find("opsahl-ucforum").unwrap();
    let standin = stand_in(spec, ScaleCaps::small(), 9);
    let sequential = MbbSolver::new().solve(&standin.graph);
    let parallel = MbbSolver::with_config(SolverConfig {
        threads: 4,
        ..Default::default()
    })
    .solve(&standin.graph);
    assert_eq!(
        sequential.biclique.half_size(),
        parallel.biclique.half_size()
    );
}
