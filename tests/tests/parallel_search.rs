//! Parallel-search properties: the intra-subgraph worker pool must agree
//! with the serial algorithm on every input, and a cancelled parallel
//! search must still hand back a verified (possibly empty) biclique —
//! never a torn or invalid one.

use std::time::Duration;

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::generators;
use mbb_bigraph::local::LocalGraph;
use mbb_core::budget::{CancelToken, SearchBudget, Termination};
use mbb_core::dense::{dense_mbb, dense_mbb_parallel, DenseConfig};
use mbb_core::engine::MbbEngine;
use mbb_core::verify::ParallelMode;
use mbb_core::SolverConfig;
use proptest::prelude::*;

/// Strategy: a random local (bitset) bipartite graph with sides ≤ 11.
fn small_local_graph() -> impl Strategy<Value = LocalGraph> {
    (2usize..=11, 2usize..=11).prop_flat_map(|(nl, nr)| {
        proptest::collection::vec((0..nl as u32, 0..nr as u32), 0..=(nl * nr))
            .prop_map(move |edges| LocalGraph::from_edges(nl, nr, edges))
    })
}

fn run_parallel(g: &LocalGraph, workers: usize, budget: &SearchBudget) -> (Vec<u32>, Vec<u32>) {
    let (found, _) = dense_mbb_parallel(
        g,
        Vec::new(),
        Vec::new(),
        BitSet::full(g.num_left()),
        BitSet::full(g.num_right()),
        0,
        DenseConfig::default(),
        budget,
        workers,
    );
    (found.left, found.right)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Parallel `denseMBB` at 2 and 4 workers finds the same optimum
    // half-size as the serial search on arbitrary small graphs, and its
    // witness is a real biclique.
    #[test]
    fn parallel_dense_matches_serial(g in small_local_graph()) {
        let (serial, _) = dense_mbb(&g, 0);
        for workers in [2usize, 4] {
            let (left, right) = run_parallel(&g, workers, &SearchBudget::unlimited());
            prop_assert_eq!(left.len().min(right.len()), serial.half(), "workers {}", workers);
            prop_assert!(g.is_biclique(&left, &right), "workers {}", workers);
        }
    }

    // A parallel search whose budget is cancelled from the start still
    // returns a verified biclique (the trivial empty one at worst).
    #[test]
    fn cancelled_parallel_dense_is_verified(g in small_local_graph()) {
        let token = CancelToken::new();
        token.cancel();
        let budget = SearchBudget::with_cancel_token(token);
        let (left, right) = run_parallel(&g, 4, &budget);
        prop_assert!(g.is_biclique(&left, &right));
    }
}

/// A deadline that expires mid-search stops the pool promptly and the
/// best-so-far result is a valid biclique of the input graph.
#[test]
fn deadline_mid_search_returns_valid_biclique() {
    // Dense enough that the serial search takes well beyond the deadline.
    let graph = generators::dense_uniform(48, 48, 0.72, 9);
    let left_ids: Vec<u32> = (0..48).collect();
    let right_ids: Vec<u32> = (0..48).collect();
    let local = LocalGraph::induced(&graph, &left_ids, &right_ids);
    let budget = SearchBudget::with_deadline(Duration::from_millis(10));
    let (left, right) = run_parallel(&local, 4, &budget);
    assert!(local.is_biclique(&left, &right));
}

/// Cancelling an engine query that runs a multi-threaded intra-subgraph
/// verification surfaces `Termination::Cancelled` with a valid
/// best-so-far payload.
#[test]
fn cancelled_parallel_engine_query_is_valid() {
    let graph = generators::chung_lu_bipartite(
        &generators::ChungLuParams {
            num_left: 200,
            num_right: 200,
            num_edges: 17_000,
            left_exponent: 0.55,
            right_exponent: 0.55,
        },
        42,
    );
    let engine = MbbEngine::new(graph);
    let token = CancelToken::new();
    let canceller = token.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        canceller.cancel();
    });
    let result = engine.query().threads(4).cancel_token(token).solve();
    handle.join().unwrap();
    assert!(result.value.is_empty() || result.value.is_valid(engine.graph()));
    // The solve takes well over 30 ms serial on any machine this suite
    // runs on; if it somehow finished first, Complete is the honest
    // answer, so accept (but do not require) it.
    assert!(matches!(
        result.termination,
        Termination::Cancelled | Termination::Complete
    ));
}

/// The two parallel modes and the serial path agree end-to-end through
/// the engine on random sparse graphs.
#[test]
fn engine_modes_agree_on_random_graphs() {
    for seed in 0..6u64 {
        let g = generators::uniform_edges(16, 16, 100, seed ^ 0x7a11);
        let engine = MbbEngine::new(g);
        let serial = engine.query().threads(1).solve();
        let intra = engine
            .query()
            .threads(4)
            .parallel_mode(ParallelMode::IntraSubgraph)
            .solve();
        let subgraph = engine
            .query()
            .threads(4)
            .parallel_mode(ParallelMode::Subgraph)
            .solve();
        assert_eq!(
            serial.value.half_size(),
            intra.value.half_size(),
            "seed {seed}"
        );
        assert_eq!(
            serial.value.half_size(),
            subgraph.value.half_size(),
            "seed {seed}"
        );
        assert!(intra.value.is_valid(engine.graph()));
        assert!(subgraph.value.is_valid(engine.graph()));
    }
}

/// `SolverConfig::threads = 0` resolves to the available cores in both
/// modes and stays exact.
#[test]
fn auto_threads_is_exact() {
    for mode in [ParallelMode::IntraSubgraph, ParallelMode::Subgraph] {
        let g = generators::uniform_edges(14, 14, 80, 3);
        let engine = MbbEngine::with_config(
            g,
            SolverConfig {
                threads: 0,
                parallel_mode: mode,
                ..SolverConfig::default()
            },
        );
        let auto = engine.solve();
        let one = engine.query().threads(1).solve();
        assert_eq!(auto.value.half_size(), one.value.half_size());
    }
}
