//! Span-timeline integration suite: drive the real solver and the real
//! resident server with span recording on, then check the timeline
//! *makes sense* — the right stages appear, child spans nest inside
//! their parents, per-stage time sums to no more than the wall clock,
//! and every span carries the request/connection ids of the work it
//! measured.
//!
//! The span switch (`obs::enable`) is process-global, so every test in
//! this file serialises through [`obs_lock`]; no other file in this
//! test binary touches the facade.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use mbb_bigraph::generators;
use mbb_core::engine::MbbEngine;
use mbb_obs as obs;
use mbb_serve::jsonl::encode_request;
use mbb_serve::{QueryKind, QueryRequest, ShardedFleet, StreamConfig, StreamServer};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` with spans enabled and returns everything it recorded.
/// Leaves the facade disabled and the rings drained.
fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<obs::SpanRecord>) {
    obs::enable();
    obs::drain(|_| {}); // discard anything a previous test left behind
    let value = f();
    let mut records = Vec::new();
    obs::drain(|r| records.push(r));
    obs::disable();
    records.sort_by_key(|r| (r.start_nanos, r.seq));
    (value, records)
}

fn label(record: &obs::SpanRecord) -> &'static str {
    obs::Stage::from_u16(record.stage)
        .map(|s| s.label())
        .unwrap_or("?")
}

fn spans_of<'a>(records: &'a [obs::SpanRecord], stage: &str) -> Vec<&'a obs::SpanRecord> {
    records.iter().filter(|r| label(r) == stage).collect()
}

/// A full solve records the preprocessing and solve stages, and their
/// total stays within the measured wall clock (the clock-discipline
/// contract: stage boundaries only, no double counting at one level).
#[test]
fn solver_stage_spans_cover_and_fit_the_wall_clock() {
    let _guard = obs_lock();
    let graph = generators::uniform_edges(30, 30, 260, 17);
    let (wall, records) = capture(|| {
        // The window opens before the engine is built: preprocessing
        // spans may record during construction as well as lazily inside
        // solve().
        let start = Instant::now();
        let engine = MbbEngine::new(graph);
        let result = engine.solve();
        assert!(result.value.half_size() >= 1);
        start.elapsed()
    });

    for stage in ["preprocess.bicore", "preprocess.order", "solve.heuristic"] {
        assert!(
            !spans_of(&records, stage).is_empty(),
            "stage {stage} missing from {:?}",
            records.iter().map(label).collect::<Vec<_>>()
        );
    }

    // The three solver stages are strictly sequential, so their
    // durations sum to no more than the wall clock. Preprocessing spans
    // are excluded: the engine builds its indexes lazily, so a
    // `preprocess.*` span may nest *inside* a solver stage (counting it
    // here would double-bill that time) — as do the `bridge_centre` and
    // `dense` children.
    let top_level = ["solve.heuristic", "solve.bridge", "solve.verify"];
    let total: u64 = records
        .iter()
        .filter(|r| top_level.contains(&label(r)))
        .map(|r| r.duration_nanos)
        .sum();
    assert!(
        total <= wall.as_nanos() as u64,
        "stage total {total}ns exceeds wall clock {}ns",
        wall.as_nanos()
    );

    // Child spans nest: every per-centre bridging span lies inside some
    // bridge-stage span, every dense-search span inside some verify
    // span.
    for (child, parent) in [
        ("solve.bridge_centre", "solve.bridge"),
        ("solve.dense", "solve.verify"),
    ] {
        let parents = spans_of(&records, parent);
        for c in spans_of(&records, child) {
            assert!(
                parents
                    .iter()
                    .any(|p| p.start_nanos <= c.start_nanos && c.end_nanos() <= p.end_nanos()),
                "{child} span {c:?} escapes every {parent} span"
            );
        }
    }

    // All spans fall within one wall-clock window of each other.
    let first = records.iter().map(|r| r.start_nanos).min().unwrap();
    let last = records.iter().map(|r| r.end_nanos()).max().unwrap();
    assert!(
        last - first <= wall.as_nanos() as u64,
        "span window {}ns exceeds wall clock {}ns",
        last - first,
        wall.as_nanos()
    );
}

/// A served request's timeline: parse → queue → execute, each span
/// stamped with the request id, the solver stages nested inside the
/// execute span, and queue + execute fitting inside the serve wall
/// clock.
#[test]
fn served_request_timeline_nests_serve_and_solver_stages() {
    let _guard = obs_lock();
    let mut fleet = ShardedFleet::new();
    fleet
        .add_shard("g", generators::uniform_edges(12, 12, 70, 23))
        .unwrap();
    let server = StreamServer::new(
        fleet,
        StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        },
    );

    let input = [
        encode_request(&QueryRequest::new(41, QueryKind::Solve).on_graph("g")),
        encode_request(&QueryRequest::new(42, QueryKind::Solve).on_graph("g")),
    ]
    .join("\n")
        + "\n";
    let (stats, records) = capture(|| server.serve_with(input.as_bytes(), |_e| {}));
    assert_eq!(stats.completed, 2);

    for id in [41u64, 42] {
        let of_request: Vec<&obs::SpanRecord> =
            records.iter().filter(|r| r.request == id).collect();
        for stage in ["serve.queue", "serve.execute"] {
            assert!(
                of_request.iter().any(|r| label(r) == stage),
                "request {id}: stage {stage} missing from {:?}",
                of_request.iter().map(|r| label(r)).collect::<Vec<_>>()
            );
        }
        // Solver stages run inside (and are stamped with) the request.
        let execute = of_request
            .iter()
            .find(|r| label(r) == "serve.execute")
            .copied()
            .unwrap();
        let heuristic = of_request
            .iter()
            .find(|r| label(r) == "solve.heuristic")
            .unwrap_or_else(|| panic!("request {id}: no solver span inherited the request id"));
        assert!(
            execute.start_nanos <= heuristic.start_nanos
                && heuristic.end_nanos() <= execute.end_nanos(),
            "request {id}: solver span escapes the execute span"
        );
        // The queue span ends where execution begins (same instant is
        // reused — the zero-extra-clock-read contract).
        let queue = of_request
            .iter()
            .find(|r| label(r) == "serve.queue")
            .copied()
            .unwrap();
        assert_eq!(
            queue.end_nanos(),
            execute.start_nanos,
            "request {id}: queue must hand off to execute at one shared instant"
        );
    }

    // Parse spans were recorded for the input lines (request id is not
    // yet known while parsing, so they carry id 0).
    assert!(
        !spans_of(&records, "serve.parse").is_empty(),
        "no parse spans in {:?}",
        records.iter().map(label).collect::<Vec<_>>()
    );

    // Nothing was dropped in this small run.
    assert_eq!(obs::dropped_records(), 0);
}

/// The facade's zero-cost-when-off contract, observable end to end:
/// with the switch off (the default), running the same workload records
/// nothing.
#[test]
fn disabled_facade_records_nothing() {
    let _guard = obs_lock();
    obs::disable();
    obs::drain(|_| {});
    let engine = MbbEngine::new(generators::uniform_edges(10, 10, 40, 5));
    let _ = engine.solve();
    let mut count = 0u64;
    obs::drain(|_| count += 1);
    assert_eq!(count, 0, "spans recorded while disabled");
}
