//! The storage subsystem end to end: streaming reader vs. buffered
//! reader, binary cache round trips, rejection of damaged caches, and
//! `GraphStore` provenance.

use std::io::Cursor;
use std::path::PathBuf;

use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::io::{
    read_edge_list, read_edge_list_file, read_edge_list_streaming, write_edge_list,
    write_edge_list_file,
};
use mbb_store::binfmt::{decode_graph, encode_graph};
use mbb_store::{CacheMode, GraphStore, Provenance, SourceStamp, StoreError};
use proptest::prelude::*;

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("mbb-store-it-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn assert_same_csr(a: &BipartiteGraph, b: &BipartiteGraph, context: &str) {
    assert_eq!(
        a.left_offsets(),
        b.left_offsets(),
        "{context}: left offsets"
    );
    assert_eq!(
        a.left_neighbors(),
        b.left_neighbors(),
        "{context}: left adjacency"
    );
    assert_eq!(
        a.right_offsets(),
        b.right_offsets(),
        "{context}: right offsets"
    );
    assert_eq!(
        a.right_neighbors(),
        b.right_neighbors(),
        "{context}: right adjacency"
    );
}

fn edge_list_strategy() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>)> {
    (1..30u32, 1..30u32).prop_flat_map(|(nl, nr)| {
        proptest::collection::vec((0..nl, 0..nr), 0..200).prop_map(move |edges| (nl, nr, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Acceptance criterion, end to end: text → streaming reader →
    // binary cache → decode is byte-identical to the buffered reader at
    // every step (duplicate edges included — the writer emits the
    // deduplicated graph, the readers dedup the raw text).
    #[test]
    fn text_to_cache_to_csr_is_byte_identical(case in edge_list_strategy()) {
        let (nl, nr, edges) = case;
        let graph = BipartiteGraph::from_edges(nl, nr, edges.clone()).unwrap();
        let mut text = Vec::new();
        write_edge_list(&graph, &mut text).unwrap();
        // Duplicate a prefix of the raw edges at the end of the file to
        // exercise dedup in both readers.
        for (u, v) in edges.iter().take(7) {
            text.extend_from_slice(format!("{} {}\n", u + 1, v + 1).as_bytes());
        }

        let buffered = read_edge_list(Cursor::new(&text)).unwrap();
        let streamed = read_edge_list_streaming(Cursor::new(&text)).unwrap();
        assert_same_csr(&buffered, &streamed, "streaming vs buffered");

        let bytes = encode_graph(&streamed, SourceStamp::default());
        let (decoded, _) = decode_graph(&bytes).unwrap();
        assert_same_csr(&buffered, &decoded, "cache decode vs buffered");
    }

    // Any single corrupted byte in the cache is rejected, never decoded
    // into a wrong graph.
    #[test]
    fn corrupted_cache_never_decodes(case in edge_list_strategy(), pos_seed in 0usize..10_000, bit in 0u8..8) {
        let (nl, nr, edges) = case;
        let graph = BipartiteGraph::from_edges(nl, nr, edges).unwrap();
        let mut bytes = encode_graph(&graph, SourceStamp::default());
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        match decode_graph(&bytes) {
            Err(_) => {}
            Ok((back, stamp)) => {
                // Flips inside the source stamp leave the graph intact but
                // must still fail the checksum… unless the flip targets the
                // checksum-covered region, which always errors. A decode
                // that *succeeds* can therefore never happen.
                prop_assert!(false, "corrupt byte {pos} decoded: {back:?} stamp {stamp:?}");
            }
        }
    }
}

#[test]
fn warm_cache_load_is_byte_identical_to_text_parse() {
    let dir = TempDir::new("acceptance");
    let path = dir.0.join("graph.txt");
    let graph = mbb_bigraph::generators::chung_lu_bipartite(
        &mbb_bigraph::generators::ChungLuParams {
            num_left: 150,
            num_right: 120,
            num_edges: 900,
            left_exponent: 0.7,
            right_exponent: 0.7,
        },
        99,
    );
    write_edge_list_file(&graph, &path).unwrap();
    let store = GraphStore::new();
    let spec = path.to_str().unwrap();

    let cold = store.load(spec).unwrap();
    assert_eq!(cold.provenance, Provenance::ParsedAndCached);
    let warm = store.load(spec).unwrap();
    assert_eq!(warm.provenance, Provenance::CacheHit);

    let parsed = read_edge_list_file(&path).unwrap();
    assert_same_csr(&warm.graph, &parsed, "warm cache vs read_edge_list_file");
    assert_same_csr(
        &cold.graph,
        &parsed,
        "cold store load vs read_edge_list_file",
    );
}

#[test]
fn truncation_version_bump_and_magic_are_rejected() {
    let graph = mbb_bigraph::generators::uniform_edges(25, 25, 120, 8);
    let bytes = encode_graph(&graph, SourceStamp::default());

    for cut in [0, 2, 10, 47, bytes.len() / 3, bytes.len() - 1] {
        assert!(
            matches!(
                decode_graph(&bytes[..cut]),
                Err(StoreError::Truncated { .. }) | Err(StoreError::BadMagic { .. })
            ),
            "cut at {cut} must be rejected"
        );
    }

    let mut bumped = bytes.clone();
    bumped[4] = 0x7f;
    assert!(matches!(
        decode_graph(&bumped),
        Err(StoreError::UnsupportedVersion { found: 0x7f, .. })
    ));

    let mut alien = bytes.clone();
    alien[..4].copy_from_slice(b"PNG\0");
    assert!(matches!(
        decode_graph(&alien),
        Err(StoreError::BadMagic { .. })
    ));
}

#[test]
fn store_reports_provenance_across_the_cache_lifecycle() {
    let dir = TempDir::new("lifecycle");
    let path = dir.0.join("g.txt");
    std::fs::write(&path, "1 1\n1 2\n2 1\n2 2\n").unwrap();
    let spec = path.to_str().unwrap();

    // Off: always a parse, no cache file appears.
    let off = GraphStore::with_mode(CacheMode::Off);
    assert_eq!(off.load(spec).unwrap().provenance, Provenance::Parsed);
    assert!(!path.with_file_name("g.txt.mbbg").exists());

    // ReadWrite: parse+cache, then hit; timings are populated.
    let store = GraphStore::new();
    let cold = store.load(spec).unwrap();
    assert_eq!(cold.provenance, Provenance::ParsedAndCached);
    assert!(cold.cache_write_time.is_some());
    let warm = store.load(spec).unwrap();
    assert!(warm.provenance.is_cache_hit());
    assert!(warm.load_time.as_nanos() > 0);

    // Touching the source (content change) invalidates; the store heals.
    std::fs::write(&path, "1 1\n1 2\n2 1\n2 2\n3 1\n").unwrap();
    let refreshed = store.load(spec).unwrap();
    assert_eq!(refreshed.provenance, Provenance::ParsedAndCached);
    assert_eq!(refreshed.graph.num_edges(), 5);
    assert!(store.load(spec).unwrap().provenance.is_cache_hit());

    // A parse failure in the source surfaces as a Parse error, cache or
    // not.
    std::fs::write(&path, "1 1\nbroken line\n").unwrap();
    assert!(matches!(store.load(spec), Err(StoreError::Parse(_))));
}

#[test]
fn streaming_reader_handles_dirty_real_world_files() {
    // Mixed comments, blank lines, extra columns, duplicates, unsorted.
    let text = "\
% KONECT-style header
# another comment style
5 5 3.5 1370000000

1 2
5 5
1 2
3 1 77
2 4
";
    let streamed = read_edge_list_streaming(Cursor::new(text)).unwrap();
    let buffered = read_edge_list(Cursor::new(text)).unwrap();
    assert_same_csr(&streamed, &buffered, "dirty file");
    // Six data lines, two of them duplicates.
    assert_eq!(streamed.num_edges(), 4);
    assert_eq!(streamed.num_left(), 5);
    assert_eq!(streamed.num_right(), 5);
}
