//! Empirical checks of Lemmas 6–8: the total size of vertex-centred
//! subgraphs under each search order respects the paper's bounds, and the
//! bidegeneracy order produces the smallest/densest decomposition.

use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::core_decomp::core_decomposition;
use mbb_bigraph::generators;
use mbb_bigraph::graph::{BipartiteGraph, Side, Vertex};
use mbb_bigraph::order::{compute_order, SearchOrder};
use mbb_bigraph::two_hop::n2_neighbors;

/// Total vertex count over all vertex-centred subgraphs under an order.
fn total_decomposition_size(graph: &BipartiteGraph, order: &[u32]) -> usize {
    let mut rank = vec![0u32; graph.num_vertices()];
    for (i, &g) in order.iter().enumerate() {
        rank[g as usize] = i as u32;
    }
    let mut total = 0usize;
    for (i, &center_global) in order.iter().enumerate() {
        let center = graph.vertex_of_global(center_global as usize);
        let later = |side: Side, idx: u32| -> bool {
            rank[graph.global_id(Vertex { side, index: idx })] as usize > i
        };
        let opposite = graph
            .neighbors(center)
            .iter()
            .filter(|&&w| later(center.side.opposite(), w))
            .count();
        let same = n2_neighbors(graph, center)
            .into_iter()
            .filter(|&w| later(center.side, w))
            .count();
        total += 1 + opposite + same;
    }
    total
}

fn test_graph(seed: u64) -> BipartiteGraph {
    generators::chung_lu_bipartite(
        &generators::ChungLuParams {
            num_left: 150,
            num_right: 120,
            num_edges: 600,
            left_exponent: 0.75,
            right_exponent: 0.75,
        },
        seed,
    )
}

#[test]
fn lemma6_degree_order_bound() {
    // Total size under any order ≤ (|L|+|R|) · d_max² + n (Lemma 6).
    for seed in 0..4u64 {
        let g = test_graph(seed);
        let order = compute_order(&g, SearchOrder::Degree);
        let total = total_decomposition_size(&g, &order);
        let bound = g.num_vertices() * g.max_degree().pow(2) + g.num_vertices();
        assert!(total <= bound, "seed {seed}: {total} > {bound}");
    }
}

#[test]
fn lemma7_degeneracy_order_bound() {
    // Under degeneracy order: O(n · δ(G) · d_max) (Lemma 7).
    for seed in 0..4u64 {
        let g = test_graph(seed);
        let order = compute_order(&g, SearchOrder::Degeneracy);
        let total = total_decomposition_size(&g, &order);
        let delta = core_decomposition(&g).degeneracy as usize;
        let bound = g.num_vertices() * delta.max(1) * g.max_degree() + g.num_vertices();
        assert!(total <= bound, "seed {seed}: {total} > {bound}");
    }
}

#[test]
fn lemma8_bidegeneracy_order_bound() {
    // Under bidegeneracy order the per-centre subgraph is at most δ̈ + 1
    // vertices: the centre has the minimum |N≤2| among remaining vertices
    // at its peel step, which is at most δ̈.
    for seed in 0..4u64 {
        let g = test_graph(seed);
        let order = compute_order(&g, SearchOrder::Bidegeneracy);
        let bidegeneracy = bicore_decomposition(&g).bidegeneracy as usize;
        let total = total_decomposition_size(&g, &order);
        let bound = g.num_vertices() * (bidegeneracy + 1);
        assert!(total <= bound, "seed {seed}: {total} > {bound}");
    }
}

#[test]
fn bidegeneracy_order_gives_smallest_total() {
    // The headline of §5.3.2: bidegeneracy order bounds the decomposition
    // most tightly on heavy-tailed graphs.
    let mut wins = 0;
    for seed in 0..5u64 {
        let g = test_graph(seed + 100);
        let by_order = |o: SearchOrder| {
            let order = compute_order(&g, o);
            total_decomposition_size(&g, &order)
        };
        let degree = by_order(SearchOrder::Degree);
        let bidegeneracy = by_order(SearchOrder::Bidegeneracy);
        if bidegeneracy <= degree {
            wins += 1;
        }
    }
    assert!(
        wins >= 4,
        "bidegeneracy won only {wins}/5 against degree order"
    );
}

#[test]
fn bidegeneracy_much_smaller_than_dmax_after_reduction() {
    // §5.3.1's motivation: δ̈ ≪ d_max. On a *raw* graph a hub's star alone
    // forces δ̈ = deg(hub) (every leaf 2-hop-sees every other leaf), so the
    // comparison is made on the Lemma 4-reduced graph, exactly as the
    // paper's pipeline does (bidegeneracy is computed on G′ in step 2).
    for seed in 0..3u64 {
        let g = generators::chung_lu_bipartite(
            &generators::ChungLuParams {
                num_left: 2000,
                num_right: 1500,
                num_edges: 8000,
                left_exponent: 0.85,
                right_exponent: 0.85,
            },
            seed,
        );
        let dmax = g.max_degree();
        // The paper computes δ̈ on G′, the graph after the heuristic-driven
        // Lemma 4 reduction (Algorithm 6 line 1) — that is where "δ̈ is only
        // a few hundreds" holds. On the raw graph a single hub star already
        // forces δ̈ ≈ d_max.
        let outcome = mbb_core::heuristic::hmbb(&g, 8, true);
        let bidegeneracy = bicore_decomposition(&outcome.reduced.graph).bidegeneracy as usize;
        assert!(
            bidegeneracy * 2 < dmax,
            "seed {seed}: δ̈(G') = {bidegeneracy} not ≪ d_max = {dmax}"
        );
    }
}
