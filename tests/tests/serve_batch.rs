//! End-to-end coverage of the `mbb-serve` front-end: batch answers must
//! equal direct per-engine queries, terminations must be honest under
//! mixed budgets, and routing must be deterministic.

use std::time::Duration;

use mbb_bigraph::generators;
use mbb_bigraph::graph::{BipartiteGraph, Vertex};
use mbb_core::budget::{CancelToken, Termination};
use mbb_core::engine::MbbEngine;
use mbb_core::enumerate::EnumConfig;
use mbb_serve::jsonl::{encode_report, parse_requests};
use mbb_serve::{BatchExecutor, QueryKind, QueryOutcome, QueryRequest, ShardedFleet};
use proptest::prelude::*;
use serde_json::Value;

/// The three shard graphs used by the acceptance test. Regenerating
/// from the same seeds gives the "direct" comparison engines identical
/// graphs without sharing any state with the fleet.
fn shard_graphs() -> Vec<(&'static str, BipartiteGraph)> {
    vec![
        ("alpha", generators::uniform_edges(14, 14, 62, 21)),
        ("beta", generators::uniform_edges(12, 15, 58, 22)),
        ("gamma", generators::uniform_edges(16, 11, 55, 23)),
    ]
}

/// All nine query kinds against one shard. `(u, v)` is a known edge of
/// the shard graph so the anchored-edge query has a witness.
fn all_kinds(graph: &BipartiteGraph) -> Vec<QueryKind> {
    let (u, v) = graph.edges().next().expect("test graphs have edges");
    vec![
        QueryKind::Solve,
        QueryKind::Topk { k: 3 },
        QueryKind::Anchored {
            vertex: Vertex::left(u),
        },
        QueryKind::AnchoredEdge { u, v },
        QueryKind::Weighted {
            weights: vec![1; graph.num_vertices()],
        },
        QueryKind::Meb,
        QueryKind::Frontier,
        QueryKind::SizeConstrained { a: 2, b: 2 },
        QueryKind::Enumerate {
            min_left: 1,
            min_right: 1,
            max_results: None,
        },
        // A repeat solve: same answer, but served from the session's
        // cached indices — the reuse the batch report must surface.
        QueryKind::Solve,
    ]
}

/// Runs `kind` directly on `engine` (no service in between) and returns
/// `(headline size, termination)` in the same normalisation the batch
/// outcome uses.
fn direct(engine: &MbbEngine, kind: &QueryKind) -> (usize, Termination) {
    match kind {
        QueryKind::Solve => {
            let r = engine.solve();
            (r.value.half_size(), r.termination)
        }
        QueryKind::Topk { k } => {
            let r = engine.topk(*k);
            (
                r.value.iter().map(|b| b.balanced_size()).max().unwrap_or(0),
                r.termination,
            )
        }
        QueryKind::Anchored { vertex } => {
            let r = engine.anchored(*vertex);
            (r.value.half_size(), r.termination)
        }
        QueryKind::AnchoredEdge { u, v } => {
            let r = engine.anchored_edge(*u, *v);
            (r.value.map_or(0, |b| b.half_size()), r.termination)
        }
        QueryKind::Weighted { weights } => {
            let r = engine.weighted(weights);
            (r.value.weight as usize, r.termination)
        }
        QueryKind::Meb => {
            let r = engine.meb();
            (r.value.edges(), r.termination)
        }
        QueryKind::Frontier => {
            let r = engine.frontier();
            (r.value.mbb_half(), r.termination)
        }
        QueryKind::SizeConstrained { a, b } => {
            let r = engine.size_constrained(*a, *b);
            (
                r.value.map_or(0, |w| w.left.len().min(w.right.len())),
                r.termination,
            )
        }
        QueryKind::Enumerate { .. } => {
            let r = engine.enumerate(EnumConfig::default());
            (
                r.value
                    .bicliques
                    .iter()
                    .map(|b| b.balanced_size())
                    .max()
                    .unwrap_or(0),
                r.termination,
            )
        }
    }
}

/// The acceptance bar: a 3-shard fleet batch of ≥ 20 mixed-kind,
/// unbudgeted requests returns results identical — headline sizes and
/// `Termination` — to sequential calls against fresh single engines on
/// the same graphs.
#[test]
fn three_shard_mixed_batch_matches_sequential_single_engine_calls() {
    let mut fleet = ShardedFleet::new();
    for (id, graph) in shard_graphs() {
        fleet.add_shard(id, graph).unwrap();
    }
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for (id, graph) in shard_graphs() {
        // An isolated engine per shard: the sequential reference path.
        let engine = MbbEngine::new(graph);
        for kind in all_kinds(engine.graph()) {
            expected.push(direct(&engine, &kind));
            requests.push(QueryRequest::new(requests.len() as u64, kind).on_graph(id));
        }
    }
    assert!(requests.len() >= 20, "30 mixed requests expected");

    let executor = BatchExecutor::new(fleet, 3);
    let report = executor.run_batch(requests);
    assert_eq!(report.responses.len(), expected.len());
    for (response, (size, termination)) in report.responses.iter().zip(&expected) {
        assert!(
            !response.outcome.is_rejected(),
            "id {}: {:?}",
            response.id,
            response.outcome
        );
        assert_eq!(
            response.outcome.headline_size(),
            *size,
            "id {} ({})",
            response.id,
            response.kind
        );
        // Unbudgeted requests must agree on termination too (Complete).
        assert_eq!(response.termination, *termination, "id {}", response.id);
        assert!(response.termination.is_complete(), "id {}", response.id);
    }
    // Every shard served its ten requests (nine kinds + repeat solve).
    for shard in &report.stats.per_shard {
        assert_eq!(shard.requests, 10, "shard {}", shard.shard);
    }
    // Repeated queries on one session scored index reuse.
    assert!(report.stats.index_reuse_hits >= 3);
}

/// Solved payloads coming out of a batch are valid bicliques of the
/// shard graph they were routed to.
#[test]
fn batch_payloads_are_valid_bicliques() {
    let mut fleet = ShardedFleet::new();
    for (id, graph) in shard_graphs() {
        fleet.add_shard(id, graph).unwrap();
    }
    let executor = BatchExecutor::new(fleet, 2);
    let requests: Vec<QueryRequest> = shard_graphs()
        .iter()
        .enumerate()
        .map(|(i, (id, _))| QueryRequest::new(i as u64, QueryKind::Solve).on_graph(*id))
        .collect();
    let report = executor.run_batch(requests);
    for (i, response) in report.responses.iter().enumerate() {
        let engine = executor.fleet().engine(i);
        let graph = engine.graph();
        match &response.outcome {
            QueryOutcome::Solve(b) => assert!(b.is_valid(graph), "shard {i}"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}

/// One batch whose requests end in all three `Termination` variants:
/// unbudgeted → `Complete`, an already-expired deadline →
/// `DeadlineExceeded`, an already-fired cancel token → `Cancelled`.
#[test]
fn mixed_deadline_batch_hits_all_three_terminations() {
    // Dense enough that stage 1 cannot prove optimality, so budget
    // checks actually observe the expired deadline / fired token.
    let mut fleet = ShardedFleet::new();
    fleet
        .add_shard("dense", generators::dense_uniform(40, 40, 0.8, 3))
        .unwrap();
    let token = CancelToken::new();
    token.cancel();
    let executor = BatchExecutor::new(fleet, 2);
    let report = executor.run_batch(vec![
        QueryRequest::new(0, QueryKind::Solve).on_graph("dense"),
        QueryRequest::new(1, QueryKind::Solve)
            .on_graph("dense")
            .with_deadline(Duration::ZERO),
        QueryRequest::new(2, QueryKind::Solve)
            .on_graph("dense")
            .with_cancel(token),
    ]);
    let terminations: Vec<Termination> = report.responses.iter().map(|r| r.termination).collect();
    assert_eq!(
        terminations,
        vec![
            Termination::Complete,
            Termination::DeadlineExceeded,
            Termination::Cancelled,
        ]
    );
    // Anytime semantics: the complete solve dominates the budgeted ones.
    let complete = report.responses[0].outcome.headline_size();
    for r in &report.responses[1..] {
        assert!(r.outcome.headline_size() <= complete);
    }
}

/// A real batch's JSONL output round-trips: every line parses as one
/// JSON object, ids come back in request order, and terminations use
/// the documented wire strings.
#[test]
fn jsonl_batch_output_round_trips() {
    let text = r#"
{"id": 1, "graph": "a", "kind": "solve"}
{"id": 2, "graph": "a", "kind": "topk", "k": 2}
{"id": 3, "graph": "b", "kind": "frontier", "deadline_ms": 5000}
{"id": 4, "kind": "meb"}
{"id": 5, "graph": "nowhere", "kind": "solve"}
"#;
    let requests = parse_requests(text).unwrap();
    assert_eq!(requests.len(), 5);

    let mut fleet = ShardedFleet::new();
    fleet
        .add_shard("a", generators::uniform_edges(10, 10, 45, 31))
        .unwrap()
        .add_shard("b", generators::uniform_edges(10, 10, 45, 32))
        .unwrap();
    let executor = BatchExecutor::new(fleet, 2);
    let report = executor.run_batch(requests);
    let output = encode_report(&report, true);
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(lines.len(), 6, "5 responses + stats line");

    for (line, expected_id) in lines[..5].iter().zip(1u64..) {
        let value: Value = serde_json::from_str(line).unwrap();
        assert_eq!(value["id"].as_u64(), Some(expected_id));
        if expected_id == 5 {
            assert!(value["error"].as_str().unwrap().contains("nowhere"));
        } else {
            let termination = value["termination"].as_str().unwrap();
            assert!(termination.parse::<Termination>().is_ok(), "{termination}");
        }
    }
    let stats: Value = serde_json::from_str(lines[5]).unwrap();
    assert_eq!(stats["batch"]["requests"].as_u64(), Some(5));
    assert_eq!(stats["batch"]["rejected"].as_u64(), Some(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Batch execution is a pure scheduling layer: for any small random
    // graphs, batch answers equal direct engine answers, at any worker
    // count.
    #[test]
    fn batch_results_equal_direct_engine_queries(
        seed_a in 0u64..500,
        seed_b in 0u64..500,
        workers in 1usize..4,
    ) {
        let graph_a = generators::uniform_edges(9, 9, 36, seed_a);
        let graph_b = generators::uniform_edges(8, 10, 34, seed_b);
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("a", graph_a.clone())
            .unwrap()
            .add_shard("b", graph_b.clone())
            .unwrap();
        let executor = BatchExecutor::new(fleet, workers);

        let kinds = [
            QueryKind::Solve,
            QueryKind::Topk { k: 2 },
            QueryKind::Frontier,
            QueryKind::Meb,
        ];
        let mut requests = Vec::new();
        let mut expected = Vec::new();
        for (shard, graph) in [("a", &graph_a), ("b", &graph_b)] {
            let engine = MbbEngine::new(graph.clone());
            for kind in &kinds {
                expected.push(direct(&engine, kind));
                requests.push(
                    QueryRequest::new(requests.len() as u64, kind.clone()).on_graph(shard),
                );
            }
        }
        let report = executor.run_batch(requests);
        for (response, (size, termination)) in report.responses.iter().zip(&expected) {
            prop_assert_eq!(response.outcome.headline_size(), *size);
            prop_assert_eq!(response.termination, *termination);
        }
    }

    // Shard routing is deterministic: the same request routes to the
    // same shard across repeated calls and across separately-built
    // fleets with the same shard layout.
    #[test]
    fn shard_routing_is_deterministic(
        ids in proptest::collection::vec(0u64..10_000, 1..30),
        shards in 1usize..5,
    ) {
        let build = || {
            let mut fleet = ShardedFleet::new();
            for s in 0..shards {
                fleet
                    .add_shard(format!("shard-{s}"), generators::uniform_edges(4, 4, 8, s as u64))
                    .unwrap();
            }
            fleet
        };
        let first = build();
        let second = build();
        for &id in &ids {
            let hashed = QueryRequest::new(id, QueryKind::Solve);
            let route = first.route(&hashed).unwrap();
            prop_assert!(route < shards);
            prop_assert_eq!(first.route(&hashed).unwrap(), route);
            prop_assert_eq!(second.route(&hashed).unwrap(), route);
            // Explicit graph ids override the hash and hit exactly.
            let explicit = QueryRequest::new(id, QueryKind::Solve)
                .on_graph(format!("shard-{}", id as usize % shards));
            prop_assert_eq!(first.route(&explicit).unwrap(), id as usize % shards);
        }
    }
}
