//! Failure injection and degenerate-shape coverage.

// These suites intentionally keep exercising the deprecated one-shot
// wrappers: they are the compatibility surface over the engine, and the
// engine itself is covered by tests/tests/engine_api.rs.
#![allow(deprecated)]

use mbb_bigraph::graph::{BipartiteGraph, GraphError};
use mbb_bigraph::io;
use mbb_core::{solve_mbb, MbbSolver};
use std::io::Cursor;

#[test]
fn empty_graph_is_handled_by_everything() {
    let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
    assert_eq!(solve_mbb(&g).half_size(), 0);
    assert_eq!(mbb_core::dense_mbb_graph(&g).biclique.half_size(), 0);
    assert_eq!(mbb_baselines::ext_bbclq(&g, None).biclique.half_size(), 0);
    assert_eq!(
        mbb_bigraph::bicore::bicore_decomposition(&g).bidegeneracy,
        0
    );
}

#[test]
fn one_sided_graphs() {
    let left_only = BipartiteGraph::from_edges(5, 0, []).unwrap();
    assert_eq!(solve_mbb(&left_only).half_size(), 0);
    let right_only = BipartiteGraph::from_edges(0, 5, []).unwrap();
    assert_eq!(solve_mbb(&right_only).half_size(), 0);
}

#[test]
fn isolated_vertices_do_not_crash_anything() {
    let g = BipartiteGraph::from_edges(100, 100, [(0, 0), (1, 1)]).unwrap();
    let result = MbbSolver::new().solve(&g);
    assert_eq!(result.biclique.half_size(), 1);
}

#[test]
fn self_loop_impossible_by_construction() {
    // Bipartite graphs cannot have same-side edges; the builder's type
    // system enforces it. This documents the invariant.
    let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
    assert_eq!(g.num_edges(), 4);
}

#[test]
fn out_of_range_edges_are_rejected_not_ignored() {
    let err = BipartiteGraph::from_edges(2, 2, [(7, 0)]).unwrap_err();
    assert!(matches!(err, GraphError::EndpointOutOfRange { .. }));
}

#[test]
fn malformed_edge_lists_are_rejected() {
    for bad in ["a b\n", "1\n", "1 2 extra is ok\n0 1\n", "-1 2\n"] {
        let result = io::read_edge_list(Cursor::new(bad));
        if bad.starts_with("1 2") {
            // Extra columns are fine; the 0-id line must fail.
            assert!(result.is_err(), "{bad:?} should fail on the 0 id");
        } else {
            assert!(result.is_err(), "{bad:?} should fail");
        }
    }
}

#[test]
fn duplicate_heavy_input_collapses() {
    let edges: Vec<(u32, u32)> = (0..1000).map(|_| (0, 0)).collect();
    let g = BipartiteGraph::from_edges(1, 1, edges).unwrap();
    assert_eq!(g.num_edges(), 1);
    assert_eq!(solve_mbb(&g).half_size(), 1);
}

#[test]
fn path_and_cycle_shapes() {
    // Long path: optimum is 1x1... actually a path L0-R0-L1-R1-... has
    // 2x2 bicliques? No: each left vertex sees ≤ 2 rights but two lefts
    // share at most one right. Optimum half = 1.
    let mut edges = Vec::new();
    for i in 0..20u32 {
        edges.push((i, i));
        if i + 1 < 20 {
            edges.push((i + 1, i));
        }
    }
    let path = BipartiteGraph::from_edges(20, 20, edges).unwrap();
    assert_eq!(solve_mbb(&path).half_size(), 1);

    // Even cycle: same.
    let mut edges = Vec::new();
    for i in 0..10u32 {
        edges.push((i, i));
        edges.push(((i + 1) % 10, i));
    }
    let cycle = BipartiteGraph::from_edges(10, 10, edges).unwrap();
    assert_eq!(solve_mbb(&cycle).half_size(), 1);
}

#[test]
fn complete_bipartite_extremes() {
    let g = mbb_bigraph::generators::complete(1, 50);
    assert_eq!(solve_mbb(&g).half_size(), 1);
    let g = mbb_bigraph::generators::complete(30, 30);
    assert_eq!(solve_mbb(&g).half_size(), 30);
}

#[test]
fn crown_graph() {
    // Complete minus a perfect matching (each left i misses right i): the
    // complement is a perfect matching — the Lemma 3 polynomial case with
    // n odd paths of length 1, each contributing (1,0) or (0,1). Chosen
    // lefts and rights must use disjoint matching pairs, so a + b ≤ n and
    // the optimum half-size is ⌊n/2⌋.
    for n in [2u32, 3, 5, 8] {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = BipartiteGraph::from_edges(n, n, edges).unwrap();
        let found = solve_mbb(&g);
        assert_eq!(found.half_size(), (n / 2) as usize, "crown n={n}");
        assert!(found.is_valid(&g));
    }
}

#[test]
fn zero_budget_baselines_report_timeout() {
    let g = mbb_bigraph::generators::dense_uniform(30, 30, 0.8, 1);
    let out = mbb_baselines::ext_bbclq(&g, Some(std::time::Duration::ZERO));
    assert!(out.timed_out);
}
