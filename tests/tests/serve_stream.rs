//! Service-level coverage of resident mode (`StreamServer`): streamed
//! answers must equal sequential fresh-engine calls regardless of
//! arrival order, cross-batch EDF must let a late tight deadline
//! overtake queued slack, blown budgets must be shed (never executed,
//! never perturbing others), and a reload must drop zero responses while
//! old-session queries finish on the old graph.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use mbb_bigraph::generators;
use mbb_bigraph::graph::{BipartiteGraph, Vertex};
use mbb_core::budget::Termination;
use mbb_core::engine::MbbEngine;
use mbb_core::enumerate::EnumConfig;
use mbb_serve::jsonl::encode_request;
use mbb_serve::{QueryKind, QueryRequest, ShardedFleet, StreamConfig, StreamEvent, StreamServer};
use proptest::prelude::*;

/// The two shard graphs of the equivalence suite; regenerating from the
/// same seeds gives "direct" comparison engines identical graphs with no
/// shared state.
fn shard_graphs() -> Vec<(&'static str, BipartiteGraph)> {
    vec![
        ("alpha", generators::uniform_edges(14, 14, 62, 31)),
        ("beta", generators::uniform_edges(12, 15, 58, 32)),
    ]
}

/// All nine query kinds against one shard graph.
fn all_kinds(graph: &BipartiteGraph) -> Vec<QueryKind> {
    let (u, v) = graph.edges().next().expect("test graphs have edges");
    vec![
        QueryKind::Solve,
        QueryKind::Topk { k: 3 },
        QueryKind::Anchored {
            vertex: Vertex::left(u),
        },
        QueryKind::AnchoredEdge { u, v },
        QueryKind::Weighted {
            weights: vec![1; graph.num_vertices()],
        },
        QueryKind::Meb,
        QueryKind::Frontier,
        QueryKind::SizeConstrained { a: 2, b: 2 },
        QueryKind::Enumerate {
            min_left: 1,
            min_right: 1,
            max_results: None,
        },
    ]
}

/// Runs `kind` directly on `engine` (no service in between), returning
/// `(headline size, termination)` in the batch outcome's normalisation.
fn direct(engine: &MbbEngine, kind: &QueryKind) -> (usize, Termination) {
    match kind {
        QueryKind::Solve => {
            let r = engine.solve();
            (r.value.half_size(), r.termination)
        }
        QueryKind::Topk { k } => {
            let r = engine.topk(*k);
            (
                r.value.iter().map(|b| b.balanced_size()).max().unwrap_or(0),
                r.termination,
            )
        }
        QueryKind::Anchored { vertex } => {
            let r = engine.anchored(*vertex);
            (r.value.half_size(), r.termination)
        }
        QueryKind::AnchoredEdge { u, v } => {
            let r = engine.anchored_edge(*u, *v);
            (r.value.map_or(0, |b| b.half_size()), r.termination)
        }
        QueryKind::Weighted { weights } => {
            let r = engine.weighted(weights);
            (r.value.weight as usize, r.termination)
        }
        QueryKind::Meb => {
            let r = engine.meb();
            (r.value.edges(), r.termination)
        }
        QueryKind::Frontier => {
            let r = engine.frontier();
            (r.value.mbb_half(), r.termination)
        }
        QueryKind::SizeConstrained { a, b } => {
            let r = engine.size_constrained(*a, *b);
            (
                r.value.map_or(0, |w| w.left.len().min(w.right.len())),
                r.termination,
            )
        }
        QueryKind::Enumerate { .. } => {
            let r = engine.enumerate(EnumConfig::default());
            (
                r.value
                    .bicliques
                    .iter()
                    .map(|b| b.balanced_size())
                    .max()
                    .unwrap_or(0),
                r.termination,
            )
        }
    }
}

/// Streams `requests` (as JSONL, in the given order) through a fresh
/// server and returns the collected events plus the final stats.
fn stream(
    config: StreamConfig,
    requests: &[QueryRequest],
) -> (Vec<StreamEvent>, mbb_serve::ServeStats) {
    let mut fleet = ShardedFleet::new();
    for (id, graph) in shard_graphs() {
        fleet.add_shard(id, graph).unwrap();
    }
    let server = StreamServer::new(fleet, config);
    let input: String = requests.iter().map(|r| encode_request(r) + "\n").collect();
    let events = Mutex::new(Vec::new());
    let stats = server.serve_with(input.as_bytes(), |e| events.lock().unwrap().push(e));
    (events.into_inner().unwrap(), stats)
}

/// Fisher–Yates with an LCG: a deterministic arrival-order permutation
/// from one seed (the vendored proptest has no shuffle strategy).
fn permute<T>(items: &mut [T], seed: u64) {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole equivalence bar: any arrival order of the full
    // mixed-kind request set over both shards produces responses
    // identical — headline size and `Termination` — to sequential calls
    // on fresh single engines, under a concurrent worker pool.
    #[test]
    fn streamed_responses_match_sequential_fresh_engines(seed in 0u64..10_000) {
        // The expected answer per request id, from fresh engines.
        let mut requests = Vec::new();
        let mut expected = HashMap::new();
        let mut next_id = 1u64;
        for (shard, graph) in shard_graphs() {
            let engine = MbbEngine::new(graph.clone());
            for kind in all_kinds(&graph) {
                expected.insert(next_id, direct(&engine, &kind));
                requests.push(QueryRequest::new(next_id, kind).on_graph(shard));
                next_id += 1;
            }
        }
        permute(&mut requests, seed);

        let (events, stats) = stream(
            StreamConfig { workers: 3, ..StreamConfig::default() },
            &requests,
        );
        prop_assert_eq!(stats.completed, expected.len() as u64);
        prop_assert_eq!(stats.shed, 0);
        prop_assert_eq!(stats.rejected, 0);

        let mut seen = 0usize;
        for event in &events {
            let StreamEvent::Response(response) = event else { continue };
            seen += 1;
            let (size, termination) = expected[&response.id];
            prop_assert!(!response.outcome.is_rejected(), "id {}", response.id);
            prop_assert_eq!(
                response.outcome.headline_size(), size,
                "id {} ({})", response.id, response.kind
            );
            prop_assert_eq!(response.termination, termination, "id {}", response.id);
        }
        prop_assert_eq!(seen, expected.len());
    }
}

/// A long-running request that pins the single worker for its whole
/// `deadline_ms`: full enumeration of a dense 40×40 graph cannot finish,
/// so the engine runs to the deadline and returns a partial result.
fn pin_worker(id: u64, deadline_ms: u64) -> QueryRequest {
    QueryRequest::new(
        id,
        QueryKind::Enumerate {
            min_left: 1,
            min_right: 1,
            max_results: None,
        },
    )
    .on_graph("dense")
    .with_deadline(Duration::from_millis(deadline_ms))
}

/// Streams over a fleet with one dense shard (for `pin_worker`) plus the
/// `alpha` shard, single worker. `queue_depth` is the backpressure bound:
/// 1 forces each admission to wait until the previous request was popped,
/// which pins down *when* requests enter the queue relative to the
/// in-flight one.
fn stream_pinned(
    requests: &[QueryRequest],
    queue_depth: usize,
) -> (Vec<StreamEvent>, mbb_serve::ServeStats) {
    let mut fleet = ShardedFleet::new();
    fleet
        .add_shard("dense", generators::uniform_edges(40, 40, 800, 7))
        .unwrap()
        .add_shard("alpha", generators::uniform_edges(14, 14, 62, 31))
        .unwrap();
    let server = StreamServer::new(
        fleet,
        StreamConfig {
            workers: 1,
            queue_depth,
            ..StreamConfig::default()
        },
    );
    let input: String = requests.iter().map(|r| encode_request(r) + "\n").collect();
    let events = Mutex::new(Vec::new());
    let stats = server.serve_with(input.as_bytes(), |e| events.lock().unwrap().push(e));
    (events.into_inner().unwrap(), stats)
}

/// Cross-batch EDF: while the single worker is pinned, a tight-deadline
/// request arriving *after* a slack one overtakes it — the ordering no
/// single `run_batch` call could provide across arrivals.
#[test]
fn later_tight_deadline_overtakes_queued_slack_requests() {
    let requests = vec![
        pin_worker(1, 400),
        // Queued while 1 is in flight, in this arrival order:
        QueryRequest::new(2, QueryKind::Solve)
            .on_graph("dense")
            .with_deadline(Duration::from_secs(30)), // slack
        QueryRequest::new(3, QueryKind::Solve).on_graph("dense"), // no deadline
        QueryRequest::new(4, QueryKind::Solve)
            .on_graph("dense")
            .with_deadline(Duration::from_secs(5)), // tight, arrives last
    ];
    let (events, stats) = stream_pinned(&requests, 1024);
    assert_eq!(stats.completed, 4, "nothing may be dropped or shed");
    assert_eq!(stats.shed, 0);

    let order: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            StreamEvent::Response(r) => Some(r.id),
            _ => None,
        })
        .collect();
    let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
    // The late-arriving 5s deadline beats the earlier 30s one, which
    // beats the deadline-free request.
    assert!(
        pos(4) < pos(2),
        "tight deadline must overtake slack: {order:?}"
    );
    assert!(pos(2) < pos(3), "any deadline beats none: {order:?}");
}

/// Load shedding, both shed points: a zero budget is refused at
/// admission, an expired-while-queued budget at dispatch — neither is
/// ever executed, and untouched requests come back with exactly the
/// fresh-engine answer.
#[test]
fn blown_budgets_are_shed_without_perturbing_other_responses() {
    let alpha = generators::uniform_edges(14, 14, 62, 31);
    let want = direct(&MbbEngine::new(alpha), &QueryKind::Solve);
    let requests = vec![
        pin_worker(1, 300),
        // Dead on arrival: zero budget.
        QueryRequest::new(2, QueryKind::Solve)
            .on_graph("alpha")
            .with_deadline(Duration::ZERO),
        // Dies in the queue: 50ms budget behind a 300ms pin.
        QueryRequest::new(3, QueryKind::Solve)
            .on_graph("dense")
            .with_deadline(Duration::from_millis(50)),
        // Must be answered exactly as a fresh engine would.
        QueryRequest::new(4, QueryKind::Solve).on_graph("alpha"),
    ];
    // queue_depth 1: request 3 cannot even be admitted until the worker
    // has picked up the pin, so its 50ms budget deterministically expires
    // behind the pin's 300ms of service.
    let (events, stats) = stream_pinned(&requests, 1);
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.completed, 2); // the pin and request 4

    let mut shed_reasons = HashMap::new();
    for event in &events {
        match event {
            StreamEvent::Shed { id, reason, .. } => {
                shed_reasons.insert(*id, reason.clone());
            }
            StreamEvent::Response(r) => {
                assert!(
                    r.id != 2 && r.id != 3,
                    "shed request {} must never produce a response",
                    r.id
                );
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert!(shed_reasons[&2].contains("arrival"), "{shed_reasons:?}");
    assert!(shed_reasons[&3].contains("queued"), "{shed_reasons:?}");

    let survivor = events
        .iter()
        .find_map(|e| match e {
            StreamEvent::Response(r) if r.id == 4 => Some(r.clone()),
            _ => None,
        })
        .expect("request 4 must be answered");
    assert_eq!(
        (survivor.outcome.headline_size(), survivor.termination),
        want,
        "shedding must not perturb other responses"
    );
}

/// Graceful reload: swap a shard's graph while a query is in flight on
/// it. Zero dropped responses; the in-flight query and everything
/// admitted before the control line finish on the old session (old
/// graph's answer), everything after sees the new graph.
#[test]
fn reload_while_in_flight_drops_nothing_and_splits_old_from_new() {
    let dir = std::env::temp_dir().join(format!("mbb-serve-stream-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Old graph: K3,3 (solve half = 3). New graph: K5,5 (solve half = 5).
    let old_graph =
        BipartiteGraph::from_edges(3, 3, (0u32..3).flat_map(|u| (0u32..3).map(move |v| (u, v))))
            .unwrap();
    let new_graph =
        BipartiteGraph::from_edges(5, 5, (0u32..5).flat_map(|u| (0u32..5).map(move |v| (u, v))))
            .unwrap();
    let new_path = dir.join("k55.txt");
    mbb_bigraph::io::write_edge_list_file(&new_graph, &new_path).unwrap();

    let mut fleet = ShardedFleet::new();
    fleet
        .add_shard("g", old_graph)
        .unwrap()
        .add_shard("dense", generators::uniform_edges(40, 40, 800, 7))
        .unwrap();
    let server = StreamServer::new(
        fleet,
        StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        },
    )
    .with_store(mbb_store::GraphStore::new());

    // Single worker: the pin is in flight on "dense" while everything
    // after it — two old-graph solves, the reload, two post-reload
    // solves — is admitted. The queued pre-reload solves bound the old
    // session at admission, so the reload cannot retroactively change
    // their answer.
    let mut input = String::new();
    input.push_str(&(encode_request(&pin_worker(1, 300)) + "\n"));
    for id in [2, 3] {
        input.push_str(
            &(encode_request(&QueryRequest::new(id, QueryKind::Solve).on_graph("g")) + "\n"),
        );
    }
    input.push_str(&format!(
        "{{\"control\": \"reload\", \"graph\": \"g\", \"source\": {:?}}}\n",
        new_path.to_str().unwrap()
    ));
    for id in [4, 5] {
        input.push_str(
            &(encode_request(&QueryRequest::new(id, QueryKind::Solve).on_graph("g")) + "\n"),
        );
    }
    input.push_str("{\"control\": \"drain\"}\n");

    let events = Mutex::new(Vec::new());
    let stats = server.serve_with(input.as_bytes(), |e| events.lock().unwrap().push(e));
    let events = events.into_inner().unwrap();

    // Zero dropped: every admitted request completed, none shed.
    assert_eq!(stats.admitted, 5);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.reloads, 1);
    assert!(events
        .iter()
        .any(|e| matches!(e, StreamEvent::Drained { completed: 5 })));

    // The reload was acknowledged as a fresh (non-forked) session.
    let ack = events
        .iter()
        .find_map(|e| match e {
            StreamEvent::ReloadAck { graph, result } => Some((graph.clone(), result.clone())),
            _ => None,
        })
        .expect("reload must be acknowledged");
    assert_eq!(ack.0, "g");
    assert!(!ack.1.expect("reload must succeed").forked);

    // Pre-reload queries answered on the old graph, post-reload on the
    // new one.
    let half = |id: u64| {
        events
            .iter()
            .find_map(|e| match e {
                StreamEvent::Response(r) if r.id == id => Some(r.outcome.headline_size()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("response {id} dropped"))
    };
    assert_eq!(half(2), 3, "queued pre-reload query must see the old graph");
    assert_eq!(half(3), 3, "queued pre-reload query must see the old graph");
    assert_eq!(half(4), 5, "post-reload query must see the new graph");
    assert_eq!(half(5), 5, "post-reload query must see the new graph");

    // The per-shard stats surface the swap.
    let shard_g = stats.per_shard.iter().find(|s| s.shard == "g").unwrap();
    assert_eq!(shard_g.reloads, 1);
    assert_eq!(shard_g.served, 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// `{"control": "metrics"}` round trip: after a drain, the metrics
/// event must carry (a) the same counter snapshot the `stats` verb
/// reports, (b) latency histograms whose counts equal the completed
/// requests, with monotone quantiles, and (c) a wire encoding exposing
/// the quantile fields in milliseconds under the frozen `"metrics"`
/// envelope — while the `stats` sub-object stays byte-compatible with
/// the standalone verb (same builder, so they cannot drift).
#[test]
fn metrics_control_reports_quantiles_and_matches_stats() {
    let graph =
        BipartiteGraph::from_edges(3, 3, (0u32..3).flat_map(|u| (0u32..3).map(move |v| (u, v))))
            .unwrap();
    let mut fleet = ShardedFleet::new();
    fleet.add_shard("g", graph).unwrap();
    let server = StreamServer::new(
        fleet,
        StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        },
    );

    let mut input = String::new();
    for id in [1, 2, 3] {
        input.push_str(
            &(encode_request(&QueryRequest::new(id, QueryKind::Solve).on_graph("g")) + "\n"),
        );
    }
    // Drain first so the worker has retired everything: the metrics
    // snapshot that follows is then deterministic.
    input.push_str("{\"control\": \"drain\"}\n");
    input.push_str("{\"control\": \"metrics\"}\n");
    input.push_str("{\"control\": \"stats\"}\n");

    let events = Mutex::new(Vec::new());
    server.serve_with(input.as_bytes(), |e| events.lock().unwrap().push(e));
    let events = events.into_inner().unwrap();

    let report = events
        .iter()
        .find_map(|e| match e {
            StreamEvent::Metrics(m) => Some(m.clone()),
            _ => None,
        })
        .expect("metrics control must be answered");
    let stats = events
        .iter()
        .find_map(|e| match e {
            StreamEvent::Stats(s) => Some(s.clone()),
            _ => None,
        })
        .expect("stats control must be answered");

    // (a) The embedded counters match the standalone stats verb.
    assert_eq!(report.stats.admitted, 3);
    assert_eq!(report.stats.completed, 3);
    assert_eq!(report.stats.admitted, stats.admitted);
    assert_eq!(report.stats.completed, stats.completed);
    assert_eq!(report.stats.shed, stats.shed);

    // (b) Histogram counts reconcile with the counters; quantiles are
    // monotone and the top quantile covers the recorded max.
    for (name, h) in [
        ("queue_wait", &report.queue_wait),
        ("service", &report.service),
    ] {
        assert_eq!(h.count, 3, "{name}: one sample per completed request");
        assert!(h.p50() <= h.p90(), "{name}");
        assert!(h.p90() <= h.p99(), "{name}");
        assert!(
            h.quantile(1.0) >= h.max,
            "{name}: q1.0 covers the max bucket"
        );
    }
    assert!(report.service.sum > 0, "three solves take nonzero time");

    // (c) Wire shape: quantile fields in ms under "metrics", stats
    // sub-object identical to the standalone verb's payload.
    let line = mbb_serve::jsonl::encode_stream_event(&StreamEvent::Metrics(report));
    let value: serde_json::Value = serde_json::from_str(&line).unwrap();
    let metrics = &value["metrics"];
    assert_eq!(metrics["stats"]["admitted"].as_u64(), Some(3));
    assert_eq!(metrics["stats"]["completed"].as_u64(), Some(3));
    assert!(metrics["spans_dropped"].as_u64().is_some());
    for hist in ["queue_wait_ms", "service_ms"] {
        let h = &metrics["histograms"][hist];
        assert_eq!(h["count"].as_u64(), Some(3), "{hist}");
        for field in ["mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"] {
            assert!(
                h[field].as_f64().is_some(),
                "{hist}.{field} missing: {line}"
            );
        }
        assert!(
            h["p50_ms"].as_f64() <= h["p99_ms"].as_f64(),
            "{hist}: wire quantiles monotone"
        );
    }

    // The nested stats object is rendered by the same builder as the
    // standalone verb — the metrics line must contain the standalone
    // line's `"stats":{...}` payload byte for byte (the wire-compat
    // freeze: adding metrics must not perturb the stats schema).
    let standalone = mbb_serve::jsonl::encode_stream_event(&StreamEvent::Stats(stats));
    let standalone_body = standalone
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("stats line is one object");
    assert!(
        line.contains(standalone_body),
        "metrics must embed the exact stats payload:\n  metrics: {line}\n  stats:  {standalone}"
    );
}
