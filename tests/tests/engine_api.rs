//! The unified `MbbEngine` query API, cross-checked against the legacy
//! one-shot entry points it replaces.
//!
//! Three concerns:
//!
//! 1. **equivalence** — every engine query kind must agree with its legacy
//!    free-function counterpart on random graphs (the deprecated wrappers
//!    are called here deliberately, as the reference);
//! 2. **budgets** — `DeadlineExceeded` / `Cancelled` terminations must
//!    return the best-so-far biclique and fire within a bounded overshoot;
//! 3. **index reuse** — one session computes the bidegeneracy order and
//!    bicore decomposition exactly once across query kinds.
#![allow(deprecated)]

use std::time::{Duration, Instant};

use mbb_bigraph::generators;
use mbb_bigraph::graph::Vertex;
use mbb_core::anchored::{anchored_mbb, anchored_mbb_edge};
use mbb_core::budget::{CancelToken, Termination};
use mbb_core::engine::MbbEngine;
use mbb_core::enumerate::{all_maximal_bicliques, EnumConfig};
use mbb_core::frontier::SizeFrontier;
use mbb_core::meb::maximum_edge_biclique;
use mbb_core::size_constrained::find_size_constrained;
use mbb_core::weighted::weighted_mbb;
use mbb_core::{solve_mbb, topk_balanced_bicliques};

/// Every engine query kind equals its legacy counterpart, seed by seed.
#[test]
fn engine_queries_match_legacy_free_functions() {
    for seed in 0..12u64 {
        let g = generators::uniform_edges(10, 10, 42, seed);
        let engine = MbbEngine::new(g.clone());

        // solve
        assert_eq!(
            engine.solve().value.half_size(),
            solve_mbb(&g).half_size(),
            "solve seed {seed}"
        );

        // topk
        for k in [1usize, 3] {
            let legacy = topk_balanced_bicliques(&g, k, None);
            assert!(legacy.complete);
            assert_eq!(
                engine.topk(k).value,
                legacy.bicliques,
                "topk {k} seed {seed}"
            );
        }

        // anchored (vertex and edge)
        for u in 0..4u32 {
            let (legacy, _) = anchored_mbb(&g, Vertex::left(u));
            let session = engine.anchored(Vertex::left(u));
            assert_eq!(
                session.value.half_size(),
                legacy.half_size(),
                "anchored L{u} seed {seed}"
            );
        }
        if let Some((u, v)) = g.edges().next() {
            let legacy = anchored_mbb_edge(&g, u, v).expect("edge exists").0;
            let session = engine.anchored_edge(u, v).value.expect("edge exists");
            assert_eq!(session.half_size(), legacy.half_size(), "edge seed {seed}");
        }

        // weighted (pseudo-random but deterministic weights)
        let weights: Vec<u64> = (0..g.num_vertices() as u64)
            .map(|i| (i * 7 + seed) % 13)
            .collect();
        let (_, legacy_weight) = weighted_mbb(&g, &weights);
        assert_eq!(
            engine.weighted(&weights).value.weight,
            legacy_weight,
            "weighted seed {seed}"
        );

        // meb
        assert_eq!(
            engine.meb().value.edges(),
            maximum_edge_biclique(&g).edges(),
            "meb seed {seed}"
        );

        // frontier
        let legacy = SizeFrontier::of(&g, None);
        assert!(legacy.complete);
        assert_eq!(engine.frontier().value, legacy, "frontier seed {seed}");

        // size-constrained (existence must agree; witnesses may differ)
        for (a, b) in [(1usize, 1usize), (2, 2), (3, 2), (4, 4)] {
            assert_eq!(
                engine.size_constrained(a, b).value.is_some(),
                find_size_constrained(&g, a, b).is_some(),
                "size ({a},{b}) seed {seed}"
            );
        }

        // enumerate
        let (legacy, complete) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert!(complete);
        assert_eq!(
            engine.enumerate(EnumConfig::default()).value.bicliques,
            legacy,
            "enumerate seed {seed}"
        );
    }
}

/// The ISSUE acceptance bar: one engine, three query kinds, the
/// bidegeneracy order and bicore decomposition computed exactly once.
#[test]
fn one_session_builds_shared_indices_once() {
    let g = generators::uniform_edges(40, 40, 200, 11);
    let engine = MbbEngine::new(g);
    engine.solve();
    engine.topk(3);
    engine.anchored(Vertex::left(0));
    let index = engine.index_stats();
    assert_eq!(index.orders_computed, 1, "{index:?}");
    assert_eq!(index.bicores_computed, 1, "{index:?}");
    // Re-solving reuses instead of recomputing.
    let again = engine.solve();
    assert_eq!(again.stats.index.orders_computed, 1);
    assert!(again.stats.index.orders_reused >= 1);
}

/// A Table-4-scale dense instance (256×256, 80% density) cannot finish in
/// 50 ms; the deadline must surface `DeadlineExceeded` with a non-empty
/// best-so-far biclique, within a bounded overshoot.
#[test]
fn deadline_on_dense_instance_returns_best_so_far() {
    let g = generators::dense_uniform(256, 256, 0.8, 4);
    let engine = MbbEngine::new(g);
    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let result = engine.query().deadline(deadline).solve();
    let elapsed = start.elapsed();
    assert_eq!(result.termination, Termination::DeadlineExceeded);
    assert!(
        !result.value.is_empty(),
        "stage-1 heuristic guarantees a non-empty incumbent"
    );
    assert!(result.value.is_valid(engine.graph()));
    // Bounded overshoot: the budget is checked per search node and per
    // bridged centre; allow generous slack for slow CI machines, but the
    // 256×256 solve would take far longer than this uncapped.
    assert!(
        elapsed < deadline + Duration::from_secs(5),
        "overshoot: {elapsed:?}"
    );
}

/// Cancellation from another thread stops a running solve promptly and
/// reports `Termination::Cancelled` with a valid best-so-far result.
#[test]
fn cancellation_mid_solve_returns_best_so_far() {
    let g = generators::dense_uniform(256, 256, 0.8, 9);
    let engine = MbbEngine::new(g);
    let token = CancelToken::new();
    let canceller = token.clone();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            canceller.cancel();
        });
        let start = Instant::now();
        let result = engine.query().cancel_token(token).solve();
        let elapsed = start.elapsed();
        assert_eq!(result.termination, Termination::Cancelled);
        assert!(!result.value.is_empty());
        assert!(result.value.is_valid(engine.graph()));
        assert!(
            elapsed < Duration::from_secs(10),
            "hung after cancel: {elapsed:?}"
        );
    });
}

/// Budgets flow through non-solve queries too: an expired deadline on an
/// enumeration-backed query terminates as `DeadlineExceeded`, never hangs.
#[test]
fn deadline_applies_to_enumeration_backed_queries() {
    let g = generators::dense_uniform(28, 28, 0.75, 2);
    let engine = MbbEngine::new(g);
    let result = engine
        .query()
        .deadline(Duration::from_millis(10))
        .frontier();
    if !result.termination.is_complete() {
        assert!(!result.value.complete);
    }
    let topk = engine.query().deadline(Duration::from_millis(10)).topk(5);
    // Either it finished in 10ms or it reports the deadline — both fine;
    // what must never happen is a silent "complete" truncation.
    if !topk.termination.is_complete() {
        assert_eq!(topk.termination, Termination::DeadlineExceeded);
    }
}

/// Warm starts through the builder match the legacy incumbent path.
#[test]
fn warm_started_session_solves_are_exact() {
    for seed in 0..8u64 {
        let g = generators::uniform_edges(12, 12, 60, seed);
        let engine = MbbEngine::new(g.clone());
        let cold = engine.solve();
        let warm = engine.query().warm_start(cold.value.clone()).solve();
        assert_eq!(
            warm.value.half_size(),
            cold.value.half_size(),
            "seed {seed}"
        );
        assert!(warm.value.is_valid(&g));
    }
}
