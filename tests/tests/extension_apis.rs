//! Cross-crate agreement tests for the extension APIs: maximal-biclique
//! enumeration, top-k, anchored search, incremental maintenance, and the
//! analysis metrics. Each API is checked against an independent oracle —
//! usually the exact solver or full enumeration.

// These suites intentionally keep exercising the deprecated one-shot
// wrappers: they are the compatibility surface over the engine, and the
// engine itself is covered by tests/tests/engine_api.rs.
#![allow(deprecated)]

use std::ops::ControlFlow;

use mbb_bigraph::butterfly::{butterflies_per_vertex, count_butterflies};
use mbb_bigraph::generators;
use mbb_bigraph::graph::{BipartiteGraph, Vertex};
use mbb_bigraph::metrics::GraphProfile;
use mbb_core::anchored::{anchored_mbb, anchored_mbb_edge};
use mbb_core::enumerate::{all_maximal_bicliques, enumerate_maximal_bicliques, EnumConfig};
use mbb_core::incremental::IncrementalMbb;
use mbb_core::topk::topk_balanced_bicliques;
use mbb_core::{solve_mbb, MbbSolver};

fn random_graphs(count: u64) -> impl Iterator<Item = BipartiteGraph> {
    (0..count).map(|seed| generators::uniform_edges(12, 12, 55, seed * 31 + 5))
}

#[test]
fn enumeration_best_matches_solver() {
    // The best balanced size over all maximal bicliques IS the MBB size.
    for g in random_graphs(12) {
        let (all, complete) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert!(complete);
        let best_balanced = all.iter().map(|b| b.balanced_size()).max().unwrap_or(0);
        assert_eq!(best_balanced, solve_mbb(&g).half_size());
    }
}

#[test]
fn every_enumerated_biclique_is_maximal_and_complete() {
    for g in random_graphs(6) {
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        for b in &all {
            assert!(g.is_biclique(&b.left, &b.right));
            assert!(b.is_maximal(&g));
        }
    }
}

#[test]
fn topk_heads_agree_with_solver_across_datasets() {
    use mbb_datasets::{stand_in, ScaleCaps};
    for name in ["unicodelang", "dbpedia-writer"] {
        let spec = mbb_datasets::find(name).expect("catalog entry");
        let stand_in = stand_in(spec, ScaleCaps::small(), 1);
        let top = topk_balanced_bicliques(&stand_in.graph, 1, None);
        let solved = MbbSolver::new().solve(&stand_in.graph);
        let top_half = top.bicliques.first().map_or(0, |b| b.balanced_size());
        assert_eq!(top_half, solved.biclique.half_size(), "{name}");
    }
}

#[test]
fn anchored_covers_the_global_optimum() {
    // Anchoring at every vertex of the optimum must reproduce its size.
    for g in random_graphs(8) {
        let best = solve_mbb(&g);
        for &u in &best.left {
            let (through_u, _) = anchored_mbb(&g, Vertex::left(u));
            assert_eq!(through_u.half_size(), best.half_size());
        }
        for &v in &best.right {
            let (through_v, _) = anchored_mbb(&g, Vertex::right(v));
            assert_eq!(through_v.half_size(), best.half_size());
        }
    }
}

#[test]
fn edge_anchored_is_consistent_with_vertex_anchored() {
    for g in random_graphs(5) {
        for (u, v) in g.edges().take(8) {
            let (through_edge, _) = anchored_mbb_edge(&g, u, v).expect("edge exists");
            let (through_u, _) = anchored_mbb(&g, Vertex::left(u));
            // The edge constraint is stronger than the vertex constraint.
            assert!(through_edge.half_size() <= through_u.half_size());
            assert!(through_edge.half_size() >= 1);
        }
    }
}

#[test]
fn incremental_tracks_scratch_solver_on_a_stream() {
    let g = generators::uniform_edges(15, 15, 60, 77);
    let mut inc = IncrementalMbb::from_graph(&g);
    // Stream in a growing block, interleaved with deletions of its corner.
    for k in 0..6u32 {
        for i in 0..=k {
            inc.insert_edge(i, k).unwrap();
            inc.insert_edge(k, i).unwrap();
        }
        if k % 2 == 1 {
            inc.remove_edge(0, 0);
        }
        let warm = inc.solve().biclique;
        let cold = solve_mbb(&inc.snapshot());
        assert_eq!(warm.half_size(), cold.half_size(), "k = {k}");
    }
}

#[test]
fn butterfly_count_respects_planted_biclique() {
    // A planted k×k block guarantees at least C(k,2)² butterflies.
    let noise = generators::uniform_edges(40, 40, 100, 9);
    for k in [3u32, 5, 7] {
        let (g, _, _) = generators::plant_balanced_biclique(&noise, k);
        let pairs = (k as u64) * (k as u64 - 1) / 2;
        assert!(
            count_butterflies(&g) >= pairs * pairs,
            "k = {k}: {} < {}",
            count_butterflies(&g),
            pairs * pairs
        );
    }
}

#[test]
fn butterfly_upper_bound_dominates_mbb() {
    for g in random_graphs(10) {
        let profile = GraphProfile::of(&g);
        let half = solve_mbb(&g).half_size();
        assert!(
            profile.butterfly_half_upper_bound() >= half.max(1),
            "butterfly bound {} < MBB half {half}",
            profile.butterfly_half_upper_bound()
        );
        assert!(profile.mbb_half_upper_bound() >= half);
    }
}

#[test]
fn per_vertex_butterflies_zero_outside_any_c4() {
    // Pendant vertex participates in no butterfly.
    let mut edges: Vec<(u32, u32)> = (0..3).flat_map(|u| (0..3).map(move |v| (u, v))).collect();
    edges.push((3, 3));
    let g = BipartiteGraph::from_edges(4, 4, edges).unwrap();
    let per_vertex = butterflies_per_vertex(&g);
    assert_eq!(per_vertex[3], 0, "pendant left vertex");
    assert_eq!(per_vertex[g.num_left() + 3], 0, "pendant right vertex");
    assert!(per_vertex[0] > 0);
}

#[test]
fn enumeration_budget_is_honoured_and_partial_results_valid() {
    let g = generators::dense_uniform(30, 30, 0.6, 4);
    let config = EnumConfig {
        max_results: Some(50),
        ..EnumConfig::default()
    };
    let mut count = 0u64;
    let outcome = enumerate_maximal_bicliques(&g, &config, |b| {
        assert!(g.is_biclique(&b.left, &b.right));
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 50);
    assert!(!outcome.complete);
}

#[test]
fn projection_bound_dominates_exact_mbb() {
    use mbb_bigraph::graph::Side;
    use mbb_bigraph::projection::project;
    for g in random_graphs(12) {
        let half = solve_mbb(&g).half_size();
        for side in [Side::Left, Side::Right] {
            let p = project(&g, side);
            assert!(
                p.mbb_half_upper_bound() >= half,
                "{side:?} bound {} < optimum {half}",
                p.mbb_half_upper_bound()
            );
        }
    }
}

#[test]
fn both_enumerators_agree_on_stand_ins() {
    use mbb_core::enumerate_scoped::all_maximal_bicliques_scoped;
    use mbb_datasets::{stand_in, ScaleCaps};
    use std::collections::HashSet;
    let spec = mbb_datasets::find("unicodelang").expect("catalog entry");
    let g = stand_in(spec, ScaleCaps::small(), 1).graph;
    let (consensus, c1) = all_maximal_bicliques(&g, &EnumConfig::default());
    let (scoped, c2) = all_maximal_bicliques_scoped(&g, &EnumConfig::default());
    assert!(c1 && c2);
    let a: HashSet<_> = consensus
        .iter()
        .map(|b| (b.left.clone(), b.right.clone()))
        .collect();
    let b: HashSet<_> = scoped
        .iter()
        .map(|b| (b.left.clone(), b.right.clone()))
        .collect();
    assert_eq!(a, b);
}

#[test]
fn result_types_round_trip_through_json() {
    use mbb_core::frontier::SizeFrontier;
    let g = generators::uniform_edges(8, 8, 30, 21);

    let result = MbbSolver::new().solve(&g);
    let json = serde_json::to_string(&result.biclique).unwrap();
    let back: mbb_core::Biclique = serde_json::from_str(&json).unwrap();
    assert_eq!(back, result.biclique);
    let stats_json = serde_json::to_string(&result.stats).unwrap();
    assert!(stats_json.contains("stage"));

    let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
    if let Some(first) = all.first() {
        let json = serde_json::to_string(first).unwrap();
        let back: mbb_core::enumerate::MaximalBiclique = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, first);
    }

    let frontier = SizeFrontier::of(&g, None);
    let json = serde_json::to_string(&frontier).unwrap();
    let back: SizeFrontier = serde_json::from_str(&json).unwrap();
    assert_eq!(back, frontier);

    let profile = GraphProfile::of(&g);
    let json = serde_json::to_string(&profile).unwrap();
    let back: mbb_bigraph::metrics::GraphProfile = serde_json::from_str(&json).unwrap();
    assert_eq!(back, profile);
}

#[test]
fn profile_matches_graph_counters_on_stand_ins() {
    use mbb_datasets::{stand_in, ScaleCaps};
    let spec = mbb_datasets::find("moreno-crime-crime").expect("catalog entry");
    let g = stand_in(spec, ScaleCaps::small(), 1).graph;
    let profile = GraphProfile::cheap(&g);
    assert_eq!(profile.num_left, g.num_left());
    assert_eq!(profile.num_right, g.num_right());
    assert_eq!(profile.num_edges, g.num_edges());
    assert_eq!(profile.left_degrees.max, {
        (0..g.num_left() as u32)
            .map(|u| g.degree_left(u))
            .max()
            .unwrap_or(0)
    });
}
