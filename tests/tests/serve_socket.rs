//! Socket front-end integration suite (`--features socket`): K
//! concurrent TCP clients must see exactly the answers sequential
//! fresh engines would give — plus the fault-injection battery from the
//! connection-lifecycle contract (mid-line disconnect, half-close,
//! dribbled writes, slow readers, cross-connection shed isolation,
//! abrupt disconnect cancelling queued work).
#![cfg(feature = "socket")]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use mbb_bigraph::generators;
use mbb_bigraph::graph::{BipartiteGraph, Vertex};
use mbb_core::budget::Termination;
use mbb_core::engine::MbbEngine;
use mbb_core::enumerate::EnumConfig;
use mbb_serve::jsonl::encode_request;
use mbb_serve::socket::{ShutdownHandle, SocketFrontEnd};
use mbb_serve::{QueryKind, QueryRequest, ServeStats, ShardedFleet, StreamConfig, StreamServer};
use proptest::prelude::*;
use serde_json::Value;

// ---------------------------------------------------------------------
// Harness.

/// The two shard graphs of the equivalence suite (same seeds as
/// serve_stream.rs, so "direct" comparison engines are identical).
fn shard_graphs() -> Vec<(&'static str, BipartiteGraph)> {
    vec![
        ("alpha", generators::uniform_edges(14, 14, 62, 31)),
        ("beta", generators::uniform_edges(12, 15, 58, 32)),
    ]
}

/// All nine query kinds against one shard graph.
fn all_kinds(graph: &BipartiteGraph) -> Vec<QueryKind> {
    let (u, v) = graph.edges().next().expect("test graphs have edges");
    vec![
        QueryKind::Solve,
        QueryKind::Topk { k: 3 },
        QueryKind::Anchored {
            vertex: Vertex::left(u),
        },
        QueryKind::AnchoredEdge { u, v },
        QueryKind::Weighted {
            weights: vec![1; graph.num_vertices()],
        },
        QueryKind::Meb,
        QueryKind::Frontier,
        QueryKind::SizeConstrained { a: 2, b: 2 },
        QueryKind::Enumerate {
            min_left: 1,
            min_right: 1,
            max_results: None,
        },
    ]
}

/// Runs `kind` directly on `engine` (no service, no socket), returning
/// `(headline size, termination)`.
fn direct(engine: &MbbEngine, kind: &QueryKind) -> (usize, Termination) {
    match kind {
        QueryKind::Solve => {
            let r = engine.solve();
            (r.value.half_size(), r.termination)
        }
        QueryKind::Topk { k } => {
            let r = engine.topk(*k);
            (
                r.value.iter().map(|b| b.balanced_size()).max().unwrap_or(0),
                r.termination,
            )
        }
        QueryKind::Anchored { vertex } => {
            let r = engine.anchored(*vertex);
            (r.value.half_size(), r.termination)
        }
        QueryKind::AnchoredEdge { u, v } => {
            let r = engine.anchored_edge(*u, *v);
            (r.value.map_or(0, |b| b.half_size()), r.termination)
        }
        QueryKind::Weighted { weights } => {
            let r = engine.weighted(weights);
            (r.value.weight as usize, r.termination)
        }
        QueryKind::Meb => {
            let r = engine.meb();
            (r.value.edges(), r.termination)
        }
        QueryKind::Frontier => {
            let r = engine.frontier();
            (r.value.mbb_half(), r.termination)
        }
        QueryKind::SizeConstrained { a, b } => {
            let r = engine.size_constrained(*a, *b);
            (
                r.value.map_or(0, |w| w.left.len().min(w.right.len())),
                r.termination,
            )
        }
        QueryKind::Enumerate { .. } => {
            let r = engine.enumerate(EnumConfig::default());
            (
                r.value
                    .bicliques
                    .iter()
                    .map(|b| b.balanced_size())
                    .max()
                    .unwrap_or(0),
                r.termination,
            )
        }
    }
}

/// The wire-level headline of a response line, matching
/// `QueryOutcome::headline_size` kind by kind.
fn headline(line: &Value) -> usize {
    let kind = line["kind"].as_str().expect("kind field");
    let r = &line["result"];
    let as_usize = |v: &Value| v.as_u64().expect("numeric field") as usize;
    match kind {
        "solve" | "anchored" => as_usize(&r["half_size"]),
        "anchored_edge" => {
            if r["found"].as_bool() == Some(true) {
                as_usize(&r["half_size"])
            } else {
                0
            }
        }
        "topk" | "enumerate" => r["bicliques"]
            .as_array()
            .expect("bicliques array")
            .iter()
            .map(|b| as_usize(&b["balanced_size"]))
            .max()
            .unwrap_or(0),
        "weighted" => as_usize(&r["weight"]),
        "meb" => as_usize(&r["edges"]),
        "frontier" => r["pairs"]
            .as_array()
            .expect("pairs array")
            .iter()
            .map(|p| {
                let pair = p.as_array().expect("pair");
                as_usize(&pair[0]).min(as_usize(&pair[1]))
            })
            .max()
            .unwrap_or(0),
        "size_constrained" => {
            if r["found"].as_bool() == Some(true) {
                let left = r["left"].as_array().expect("left").len();
                let right = r["right"].as_array().expect("right").len();
                left.min(right)
            } else {
                0
            }
        }
        other => panic!("unexpected kind {other:?}"),
    }
}

/// A front-end serving on an ephemeral localhost port, on its own
/// thread.
struct Running {
    addr: SocketAddr,
    handle: ShutdownHandle,
    join: std::thread::JoinHandle<ServeStats>,
}

fn start(config: StreamConfig, max_conns: usize, shards: Vec<(&str, BipartiteGraph)>) -> Running {
    let mut fleet = ShardedFleet::new();
    for (id, graph) in shards {
        fleet.add_shard(id, graph).unwrap();
    }
    let bound = SocketFrontEnd::new(StreamServer::new(fleet, config))
        .with_tcp("127.0.0.1:0")
        .with_max_conns(max_conns)
        .bind()
        .unwrap();
    let addr = bound.tcp_addr().unwrap();
    let handle = bound.shutdown_handle();
    let join = std::thread::spawn(move || bound.serve());
    Running { addr, handle, join }
}

impl Running {
    fn stop(self) -> ServeStats {
        self.handle.shutdown();
        self.join.join().unwrap()
    }
}

/// One whole-stream exchange: write `payload`, half-close, read every
/// response line until the server closes.
fn exchange(addr: SocketAddr, payload: &str) -> Vec<Value> {
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    sock.write_all(payload.as_bytes()).unwrap();
    sock.shutdown(Shutdown::Write).unwrap();
    read_all(sock)
}

fn read_all(sock: TcpStream) -> Vec<Value> {
    BufReader::new(sock)
        .lines()
        .map(|line| serde_json::from_str(&line.unwrap()).unwrap())
        .collect()
}

fn jsonl(requests: &[QueryRequest]) -> String {
    requests.iter().map(|r| encode_request(r) + "\n").collect()
}

/// Fisher–Yates with an LCG: a deterministic arrival-order permutation
/// from one seed (the vendored proptest has no shuffle strategy).
fn permute<T>(items: &mut [T], seed: u64) {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

// ---------------------------------------------------------------------
// Tentpole equivalence.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The multi-client equivalence bar: the full mixed-kind request set,
    // shuffled and split across 3 concurrent TCP clients against one
    // shared server, answers exactly — headline size and termination —
    // like sequential calls on fresh single engines. Each client must
    // receive precisely its own responses (no loss, no cross-delivery).
    #[test]
    fn concurrent_socket_clients_match_sequential_fresh_engines(seed in 0u64..10_000) {
        let mut requests = Vec::new();
        let mut expected = HashMap::new();
        let mut next_id = 1u64;
        for (shard, graph) in shard_graphs() {
            let engine = MbbEngine::new(graph.clone());
            for kind in all_kinds(&graph) {
                expected.insert(next_id, direct(&engine, &kind));
                requests.push(QueryRequest::new(next_id, kind).on_graph(shard));
                next_id += 1;
            }
        }
        permute(&mut requests, seed);

        let server = start(
            StreamConfig { workers: 3, ..StreamConfig::default() },
            8,
            shard_graphs(),
        );
        let per_client = requests.len().div_ceil(3);
        let slices: Vec<&[QueryRequest]> = requests.chunks(per_client).collect();
        let responses: Vec<Vec<Value>> = std::thread::scope(|scope| {
            let clients: Vec<_> = slices
                .iter()
                .map(|slice| {
                    let addr = server.addr;
                    let payload = jsonl(slice);
                    scope.spawn(move || exchange(addr, &payload))
                })
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        });

        for (slice, lines) in slices.iter().zip(&responses) {
            let mut want_ids: Vec<u64> = slice.iter().map(|r| r.id).collect();
            want_ids.sort_unstable();
            let mut got_ids: Vec<u64> =
                lines.iter().map(|l| l["id"].as_u64().unwrap()).collect();
            got_ids.sort_unstable();
            prop_assert_eq!(
                &got_ids, &want_ids,
                "each client sees exactly its own responses"
            );
            for line in lines {
                let id = line["id"].as_u64().unwrap();
                let (size, termination) = expected[&id];
                prop_assert!(line["error_kind"].is_null(), "id {}: {}", id, line);
                prop_assert_eq!(headline(line), size, "id {}: {}", id, line);
                prop_assert_eq!(
                    line["termination"].as_str().unwrap(),
                    termination.to_string(),
                    "id {}", id
                );
            }
        }

        let stats = server.stop();
        prop_assert_eq!(stats.admitted, expected.len() as u64);
        prop_assert_eq!(stats.completed, expected.len() as u64);
        prop_assert_eq!(stats.shed, 0);
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.connections, 3);
        prop_assert_eq!(stats.active_conns, 0);
        prop_assert_eq!(stats.disconnects, 0);
        prop_assert_eq!(stats.disconnected, 0);
    }
}

// ---------------------------------------------------------------------
// Fault injection.

/// A client that dies mid-line (its final request line is cut off
/// before the newline): the fragment becomes one parse error, and a
/// concurrent healthy client is answered exactly as normal.
#[test]
fn mid_line_disconnect_is_one_parse_error_and_neighbours_are_unharmed() {
    let (_, graph) = &shard_graphs()[0];
    let want = direct(&MbbEngine::new(graph.clone()), &QueryKind::Solve);
    let server = start(StreamConfig::default(), 8, shard_graphs());

    let mut broken = TcpStream::connect(server.addr).unwrap();
    broken
        .write_all(b"{\"id\": 9, \"graph\": \"alpha\", \"ki")
        .unwrap();
    drop(broken);

    let healthy = exchange(
        server.addr,
        &jsonl(&[QueryRequest::new(1, QueryKind::Solve).on_graph("alpha")]),
    );
    assert_eq!(healthy.len(), 1);
    assert_eq!(healthy[0]["id"].as_u64(), Some(1));
    assert_eq!(headline(&healthy[0]), want.0);

    let stats = server.stop();
    assert_eq!(
        stats.parse_errors, 1,
        "the cut-off fragment is one parse error"
    );
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.active_conns, 0);
}

/// Half-close: the client shuts down its write side — with the final
/// request line *not* newline-terminated — and must still receive every
/// response before the server closes the connection.
#[test]
fn half_closed_write_side_flushes_the_trailing_line_and_every_response() {
    let server = start(StreamConfig::default(), 8, shard_graphs());
    let payload = jsonl(&[
        QueryRequest::new(1, QueryKind::Solve).on_graph("alpha"),
        QueryRequest::new(2, QueryKind::Meb).on_graph("beta"),
    ]);
    // Strip the final newline: EOF itself must terminate the line.
    let trimmed = payload.trim_end().to_string();
    let lines = exchange(server.addr, &trimmed);
    let mut ids: Vec<u64> = lines.iter().map(|l| l["id"].as_u64().unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2], "both requests answered after half-close");

    let stats = server.stop();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.parse_errors, 0);
    assert_eq!(stats.disconnects, 0, "half-close is a clean close");
}

/// A request line dribbled in one-byte TCP writes must be reassembled
/// into exactly one request.
#[test]
fn request_split_across_many_tiny_writes_is_reassembled() {
    let server = start(StreamConfig::default(), 8, shard_graphs());
    let payload = jsonl(&[QueryRequest::new(42, QueryKind::Solve).on_graph("alpha")]);

    let mut sock = TcpStream::connect(server.addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    sock.set_nodelay(true).unwrap();
    for (i, byte) in payload.as_bytes().iter().enumerate() {
        sock.write_all(std::slice::from_ref(byte)).unwrap();
        sock.flush().unwrap();
        // A few real pauses force separate TCP segments (and separate
        // reads server-side); pausing on every byte would be slow.
        if i % 10 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    sock.shutdown(Shutdown::Write).unwrap();
    let lines = read_all(sock);
    assert_eq!(lines.len(), 1, "exactly one request was assembled");
    assert_eq!(lines[0]["id"].as_u64(), Some(42));

    let stats = server.stop();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.parse_errors, 0);
}

/// A slow-reading client (large responses queued, never reading) must
/// not block a neighbour's responses: per-connection outboxes and
/// writer threads isolate the stall.
#[test]
fn slow_reading_client_does_not_block_a_neighbour() {
    let server = start(
        StreamConfig {
            workers: 2,
            ..StreamConfig::default()
        },
        8,
        shard_graphs(),
    );

    // The slow client queues 10 full enumerations (the largest response
    // lines the wire produces) and never reads while the neighbour runs.
    let mut slow = TcpStream::connect(server.addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let slow_requests: Vec<QueryRequest> = (1..=10)
        .map(|id| {
            QueryRequest::new(
                id,
                QueryKind::Enumerate {
                    min_left: 1,
                    min_right: 1,
                    max_results: None,
                },
            )
            .on_graph("alpha")
        })
        .collect();
    slow.write_all(jsonl(&slow_requests).as_bytes()).unwrap();
    slow.shutdown(Shutdown::Write).unwrap();

    // The neighbour must be answered promptly — bounded by the read
    // timeout — while the slow client has consumed nothing.
    let mut fast = TcpStream::connect(server.addr).unwrap();
    fast.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    fast.write_all(jsonl(&[QueryRequest::new(99, QueryKind::Solve).on_graph("beta")]).as_bytes())
        .unwrap();
    fast.shutdown(Shutdown::Write).unwrap();
    let fast_lines = read_all(fast);
    assert_eq!(
        fast_lines.len(),
        1,
        "neighbour answered while slow client stalls"
    );
    assert_eq!(fast_lines[0]["id"].as_u64(), Some(99));

    // The slow client eventually drains its own backlog intact.
    let slow_lines = read_all(slow);
    assert_eq!(slow_lines.len(), 10);
    let stats = server.stop();
    assert_eq!(stats.completed, 11);
    assert_eq!(stats.disconnects, 0);
}

/// A blown-deadline request from one client is shed with a typed error
/// on *that* connection only; a neighbour's plain request is answered
/// exactly as a fresh engine would.
#[test]
fn blown_deadline_shed_does_not_perturb_a_neighbour_connection() {
    let (_, graph) = &shard_graphs()[0];
    let want = direct(&MbbEngine::new(graph.clone()), &QueryKind::Solve);
    let server = start(StreamConfig::default(), 8, shard_graphs());

    let (doomed, healthy) = std::thread::scope(|scope| {
        let addr = server.addr;
        let doomed = scope.spawn(move || {
            exchange(
                addr,
                &jsonl(&[QueryRequest::new(1, QueryKind::Solve)
                    .on_graph("alpha")
                    .with_deadline(Duration::ZERO)]),
            )
        });
        let healthy = scope.spawn(move || {
            exchange(
                addr,
                &jsonl(&[QueryRequest::new(2, QueryKind::Solve).on_graph("alpha")]),
            )
        });
        (doomed.join().unwrap(), healthy.join().unwrap())
    });

    assert_eq!(doomed.len(), 1);
    assert_eq!(doomed[0]["id"].as_u64(), Some(1));
    assert_eq!(
        doomed[0]["error_kind"].as_str(),
        Some("shed"),
        "{:?}",
        doomed[0]
    );
    assert_eq!(healthy.len(), 1);
    assert_eq!(headline(&healthy[0]), want.0, "neighbour unperturbed");

    let stats = server.stop();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 1);
}

/// Abrupt disconnect with work still queued: once the server detects
/// the dead connection (a response write fails), that connection's
/// queued requests are cancelled — with typed `disconnected` accounting
/// — instead of wasting the pool, and a neighbour admitted behind them
/// is served. Every admitted request retires exactly once.
#[test]
fn abrupt_disconnect_cancels_queued_work_and_frees_the_pool() {
    let mut shards = shard_graphs();
    shards.push(("dense", generators::uniform_edges(40, 40, 800, 7)));
    let server = start(
        StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        },
        8,
        shards,
    );

    // Seven worker-pinning enumerations with staggered budgets: each
    // executes for ~300ms after the previous, so response writes to the
    // vanished client are spaced far apart — the second write reliably
    // observes the connection reset, long before the queue is empty.
    let pins: Vec<QueryRequest> = (1..=7)
        .map(|id| {
            QueryRequest::new(
                id,
                QueryKind::Enumerate {
                    min_left: 1,
                    min_right: 1,
                    max_results: None,
                },
            )
            .on_graph("dense")
            .with_deadline(Duration::from_millis(300 * id))
        })
        .collect();
    let mut vanishing = TcpStream::connect(server.addr).unwrap();
    vanishing.write_all(jsonl(&pins).as_bytes()).unwrap();
    // Wait until the stream is admitted, then vanish without reading a
    // single response.
    std::thread::sleep(Duration::from_millis(150));
    drop(vanishing);

    // The neighbour's deadline-free request sits behind the pins in EDF
    // order; it can only be answered this side of ~2.1s because the
    // dead connection's remaining pins were cancelled.
    let healthy = exchange(
        server.addr,
        &jsonl(&[QueryRequest::new(99, QueryKind::Solve).on_graph("alpha")]),
    );
    assert_eq!(healthy.len(), 1);
    assert_eq!(healthy[0]["id"].as_u64(), Some(99));

    let stats = server.stop();
    assert_eq!(stats.connections, 2);
    assert_eq!(
        stats.disconnects, 1,
        "the vanished client is an abrupt close"
    );
    assert!(
        stats.disconnected >= 1,
        "queued requests were cancelled: {stats:?}"
    );
    assert_eq!(
        stats.completed + stats.shed + stats.disconnected,
        stats.admitted,
        "every admitted request retires exactly once: {stats:?}"
    );
    assert_eq!(stats.active_conns, 0);
}

/// `{"control": "metrics"}` over a live TCP connection: the answer must
/// arrive on the asking connection, embed the counter snapshot, and
/// expose millisecond histogram quantiles whose counts reconcile with
/// the requests this exchange completed.
#[test]
fn metrics_control_over_socket_reports_quantiles() {
    let server = start(
        StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        },
        4,
        shard_graphs(),
    );

    let mut payload = jsonl(&[
        QueryRequest::new(1, QueryKind::Solve).on_graph("alpha"),
        QueryRequest::new(2, QueryKind::Solve).on_graph("beta"),
    ]);
    payload.push_str("{\"control\": \"drain\"}\n");
    payload.push_str("{\"control\": \"metrics\"}\n");
    let lines = exchange(server.addr, &payload);

    let metrics = lines
        .iter()
        .find(|l| !l["metrics"].is_null())
        .unwrap_or_else(|| panic!("no metrics line in {lines:?}"));
    let m = &metrics["metrics"];
    assert_eq!(m["stats"]["admitted"].as_u64(), Some(2));
    assert_eq!(m["stats"]["completed"].as_u64(), Some(2));
    assert!(m["spans_dropped"].as_u64().is_some());
    for hist in ["queue_wait_ms", "service_ms"] {
        let h = &m["histograms"][hist];
        assert_eq!(h["count"].as_u64(), Some(2), "{hist}: {metrics}");
        for field in ["mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"] {
            assert!(h[field].as_f64().is_some(), "{hist}.{field}: {metrics}");
        }
        assert!(
            h["p50_ms"].as_f64() <= h["p99_ms"].as_f64(),
            "{hist}: quantiles monotone: {metrics}"
        );
    }

    let stats = server.stop();
    assert_eq!(stats.completed, 2);
}
