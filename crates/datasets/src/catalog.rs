//! The 30 KONECT datasets of Table 5 and the 12 "tough" datasets (D1–D12)
//! of Table 6 / Figures 4–6.
//!
//! The real KONECT files are not redistributable/offline-available, so each
//! entry records the published shape — `|L|`, `|R|`, density ×10⁻⁴ and the
//! paper-reported optimum half-size — from which `crate::synth` builds a
//! scaled synthetic stand-in (see `DESIGN.md` §4 for the substitution
//! rationale).

use serde::{Deserialize, Serialize};

/// Shape and ground truth of one Table 5 dataset.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DatasetSpec {
    /// KONECT dataset name as printed in Table 5.
    pub name: &'static str,
    /// `|L|` of the real dataset.
    pub left: u64,
    /// `|R|` of the real dataset.
    pub right: u64,
    /// Edge density × 10⁴ (the paper's `Density×10−4` column).
    pub density_e4: f64,
    /// Paper-reported optimum MBB half-size (`Optimum` column).
    pub optimum: u32,
    /// Position in Table 6's tough-dataset list (`D1`–`D12`), if present.
    pub tough_rank: Option<u8>,
}

impl DatasetSpec {
    /// Edge count implied by the published shape.
    pub fn num_edges(&self) -> u64 {
        (self.left as f64 * self.right as f64 * self.density_e4 * 1e-4).round() as u64
    }

    /// The `D*` label for tough datasets.
    pub fn tough_label(&self) -> Option<String> {
        self.tough_rank.map(|r| format!("D{r}"))
    }
}

/// The 30 datasets of Table 5, in the paper's row order.
pub fn catalog() -> &'static [DatasetSpec] {
    const fn spec(
        name: &'static str,
        left: u64,
        right: u64,
        density_e4: f64,
        optimum: u32,
        tough_rank: Option<u8>,
    ) -> DatasetSpec {
        DatasetSpec {
            name,
            left,
            right,
            density_e4,
            optimum,
            tough_rank,
        }
    }
    static CATALOG: [DatasetSpec; 30] = [
        spec("unicodelang", 254, 614, 8.0, 4, None),
        spec("moreno-crime-crime", 829, 551, 3.2, 2, None),
        spec("opsahl-ucforum", 899, 522, 71.855, 5, None),
        spec("escorts", 10_106, 6_624, 0.756, 6, None),
        spec("jester", 173_421, 100, 563.376, 100, Some(1)),
        spec("pics-ut", 17_122, 82_035, 1.637, 30, Some(2)),
        spec("youtube-groupmemberships", 94_238, 30_087, 0.103, 12, None),
        spec("dbpedia-writer", 89_356, 46_213, 0.035, 6, None),
        spec("dbpedia-starring", 76_099, 81_085, 0.046, 6, None),
        spec("github", 56_519, 120_867, 0.064, 12, Some(3)),
        spec("dbpedia-recordlabel", 168_337, 18_421, 0.075, 6, None),
        spec("dbpedia-producer", 48_833, 138_844, 0.031, 6, None),
        spec("dbpedia-location", 172_091, 53_407, 0.032, 5, None),
        spec("dbpedia-occupation", 127_577, 101_730, 0.019, 6, None),
        spec("dbpedia-genre", 258_934, 7_783, 0.230, 7, None),
        spec("discogs-lgenre", 270_771, 15, 1021.2, 15, None),
        spec(
            "bookcrossing-full-rating",
            105_278,
            340_523,
            0.032,
            13,
            Some(4),
        ),
        spec(
            "flickr-groupmemberships",
            395_979,
            103_631,
            0.208,
            47,
            Some(5),
        ),
        spec("actor-movie", 127_823, 383_640, 0.030, 8, Some(6)),
        spec(
            "stackexchange-stackoverflow",
            545_196,
            96_680,
            0.025,
            9,
            Some(7),
        ),
        spec("bibsonomy-2ui", 5_794, 767_447, 0.575, 8, None),
        spec("dbpedia-team", 901_166, 34_461, 0.044, 6, None),
        spec("reuters", 781_265, 283_911, 0.273, 51, Some(8)),
        spec("discogs-style", 1_617_943, 383, 38.868, 42, Some(9)),
        spec("gottron-trec", 556_077, 1_173_225, 0.128, 101, Some(10)),
        spec("edit-frwiktionary", 5_017, 1_907_247, 0.773, 19, None),
        spec(
            "discogs-affiliation",
            1_754_823,
            270_771,
            0.030,
            26,
            Some(11),
        ),
        spec("wiki-en-cat", 1_853_493, 182_947, 0.011, 14, None),
        spec("edit-dewiki", 425_842, 3_195_148, 0.042, 49, Some(12)),
        spec("dblp-author", 1_425_813, 4_000, 0.002, 10, None),
    ];
    &CATALOG
}

/// The 12 tough datasets in Table 6 top-down order (D1–D12).
pub fn tough_datasets() -> Vec<&'static DatasetSpec> {
    let mut tough: Vec<&'static DatasetSpec> = catalog()
        .iter()
        .filter(|s| s.tough_rank.is_some())
        .collect();
    tough.sort_by_key(|s| s.tough_rank);
    tough
}

/// Looks a dataset up by name.
pub fn find(name: &str) -> Option<&'static DatasetSpec> {
    catalog().iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_thirty_entries() {
        assert_eq!(catalog().len(), 30);
    }

    #[test]
    fn twelve_tough_datasets_in_order() {
        let tough = tough_datasets();
        assert_eq!(tough.len(), 12);
        assert_eq!(tough[0].name, "jester");
        assert_eq!(tough[11].name, "edit-dewiki");
        for (i, spec) in tough.iter().enumerate() {
            assert_eq!(spec.tough_rank, Some(i as u8 + 1));
        }
    }

    #[test]
    fn edge_counts_are_plausible() {
        // jester: 173421 × 100 × 563.376e-4 ≈ 977k.
        let jester = find("jester").unwrap();
        let edges = jester.num_edges();
        assert!((900_000..1_050_000).contains(&edges), "{edges}");
        // dblp-author is the sparsest.
        let dblp = find("dblp-author").unwrap();
        assert!(dblp.num_edges() < 2_000);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = catalog().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn find_works() {
        assert!(find("github").is_some());
        assert!(find("no-such-dataset").is_none());
        assert_eq!(find("reuters").unwrap().optimum, 51);
    }

    #[test]
    fn tough_labels() {
        assert_eq!(find("jester").unwrap().tough_label(), Some("D1".into()));
        assert_eq!(find("unicodelang").unwrap().tough_label(), None);
    }

    #[test]
    fn specs_serialize() {
        let s = serde_json::to_string(find("github").unwrap()).unwrap();
        assert!(s.contains("github"));
    }
}
