//! The Table 4 dense workload: uniform random bipartite graphs across a
//! size × density grid, 100 instances per cell in the paper (configurable
//! here).

use mbb_bigraph::generators::dense_uniform;
use mbb_bigraph::graph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Side sizes used in Table 4.
pub const TABLE4_SIZES: [u32; 5] = [128, 256, 512, 1024, 2048];

/// Edge densities used in Table 4 (70 % … 95 %).
pub const TABLE4_DENSITIES: [f64; 6] = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95];

/// One cell of the dense grid.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct DenseCell {
    /// Vertices per side.
    pub side: u32,
    /// Edge density.
    pub density: f64,
}

impl DenseCell {
    /// Generates the `rep`-th instance of this cell, deterministically.
    pub fn instance(&self, rep: u64) -> BipartiteGraph {
        let seed = (self.side as u64) << 32
            ^ ((self.density * 100.0) as u64) << 16
            ^ rep.wrapping_mul(0x9e37_79b9);
        dense_uniform(self.side, self.side, self.density, seed)
    }
}

/// The full Table 4 grid, row-major (densities within sizes).
pub fn table4_grid() -> Vec<DenseCell> {
    let mut grid = Vec::new();
    for &side in &TABLE4_SIZES {
        for &density in &TABLE4_DENSITIES {
            grid.push(DenseCell { side, density });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_full_table() {
        let grid = table4_grid();
        assert_eq!(grid.len(), 30);
        assert_eq!(
            grid[0],
            DenseCell {
                side: 128,
                density: 0.70
            }
        );
        assert_eq!(
            *grid.last().unwrap(),
            DenseCell {
                side: 2048,
                density: 0.95
            }
        );
    }

    #[test]
    fn instances_match_cell_parameters() {
        let cell = DenseCell {
            side: 64,
            density: 0.8,
        };
        let g = cell.instance(0);
        assert_eq!(g.num_left(), 64);
        assert_eq!(g.num_right(), 64);
        assert!((g.density() - 0.8).abs() < 0.05);
    }

    #[test]
    fn different_reps_differ() {
        let cell = DenseCell {
            side: 32,
            density: 0.75,
        };
        let a = cell.instance(0);
        let b = cell.instance(1);
        assert_ne!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn same_rep_is_deterministic() {
        let cell = DenseCell {
            side: 32,
            density: 0.9,
        };
        assert_eq!(
            cell.instance(5).edges().collect::<Vec<_>>(),
            cell.instance(5).edges().collect::<Vec<_>>()
        );
    }
}
