//! Synthetic stand-ins for the KONECT catalog entries.
//!
//! Each stand-in is a seeded Chung–Lu bipartite graph scaled down from the
//! published shape so that the whole 30-dataset sweep runs on a laptop.
//! The scaling preserves:
//!
//! * the *density* column of Table 5 where possible (edges scale
//!   quadratically with the sides; capped for extreme aspect ratios);
//! * the heavy-tailed degree distribution (fixed rank exponent 0.75 ≈
//!   degree exponent 2.3, typical for KONECT collections);
//! * the small side of extreme-aspect datasets (floored at `2·opt + 16` so
//!   whole-side optima like jester's remain representable);
//! * the paper's **optimum** column, planted verbatim (an MBB is a local
//!   structure — shrinking the ambient graph does not shrink it).
//!
//! The structured plant (`plant_structured`) additionally reproduces what makes real datasets
//! hard: a decoy near-optimum on the hubs, a halo that keeps the Lemma 4
//! reduction from trivialising, and — for the Table 6 tough datasets — a
//! high-core random block ("core inflater") that forces stage-3
//! verification work.

use mbb_bigraph::generators::{chung_lu_bipartite, ChungLuParams};
use mbb_bigraph::graph::{BipartiteGraph, Builder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::catalog::DatasetSpec;

/// Scaling limits for stand-in generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScaleCaps {
    /// Maximum edges of a stand-in.
    pub max_edges: u64,
    /// Maximum total vertices of a stand-in.
    pub max_vertices: u64,
}

impl Default for ScaleCaps {
    fn default() -> Self {
        ScaleCaps {
            max_edges: 50_000,
            max_vertices: 40_000,
        }
    }
}

impl ScaleCaps {
    /// Smaller caps for quick tests/CI.
    pub fn small() -> Self {
        ScaleCaps {
            max_edges: 8_000,
            max_vertices: 6_000,
        }
    }
}

/// A generated stand-in with its provenance.
#[derive(Debug)]
pub struct StandIn {
    /// The synthetic graph.
    pub graph: BipartiteGraph,
    /// The catalog entry this graph imitates.
    pub spec: &'static DatasetSpec,
    /// Linear scale factor applied to both sides (≤ 1).
    pub scale: f64,
    /// Half-size of the planted balanced biclique (a lower bound on the
    /// stand-in's true optimum).
    pub planted_half: u32,
}

/// Rank exponent used for both sides (degree exponent ≈ 1 + 1/0.75 ≈ 2.3).
const RANK_EXPONENT: f64 = 0.75;

/// Builds the stand-in for a catalog entry.
pub fn stand_in(spec: &'static DatasetSpec, caps: ScaleCaps, seed: u64) -> StandIn {
    let density = spec.density_e4 * 1e-4;
    let real_edges = spec.num_edges().max(1);
    let real_vertices = spec.left + spec.right;

    // Linear scale factor: edges scale with f² at fixed density.
    let f_edges = (caps.max_edges as f64 / real_edges as f64).sqrt();
    let f_vertices = caps.max_vertices as f64 / real_vertices as f64;
    let scale = f_edges.min(f_vertices).min(1.0);

    // A side is never scaled below `2·optimum + 16` (or its real size):
    // datasets like jester (|R| = 100, optimum = 100) or discogs-style
    // (|R| = 383, optimum = 42) have optima spanning most of the small
    // side, which uniform scaling would destroy. The edge count is capped
    // instead when the floored sides would exceed the budget.
    let floor = (2 * spec.optimum as u64 + 16)
        .min(spec.left)
        .min(spec.right) as u32;
    let left = ((spec.left as f64 * scale).round() as u32)
        .max(floor.min(spec.left as u32))
        .max(2);
    let right = ((spec.right as f64 * scale).round() as u32)
        .max(floor.min(spec.right as u32))
        .max(2);
    let edges =
        ((left as f64 * right as f64 * density).round() as usize).min(caps.max_edges as usize);

    let planted_half = planted_half_for(spec, left, right);

    let base = chung_lu_bipartite(
        &ChungLuParams {
            num_left: left,
            num_right: right,
            num_edges: edges.max(planted_half as usize),
            left_exponent: RANK_EXPONENT,
            right_exponent: RANK_EXPONENT,
        },
        seed ^ fxhash(spec.name),
    );
    let graph = plant_structured(
        &base,
        planted_half,
        spec.tough_rank.is_some(),
        seed ^ fxhash(spec.name) ^ 0xbeef,
    );

    StandIn {
        graph,
        spec,
        scale,
        planted_half,
    }
}

/// Plants the instance structure that makes the stand-in behave like a real
/// KONECT "tough" dataset instead of a toy:
///
/// * the **true optimum** — a complete `k × k` block — sits on *mid-rank*
///   vertices (starting at a third of each side), where degree/core greedy
///   does not look first;
/// * a **decoy** block of half-size `max(2, k − 2)` sits on the hubs, so
///   heuristics latch onto a near-miss (the Figure 4 `heuGlobal` gap);
/// * a **halo** of random edges around the true block raises the local core
///   numbers so the Lemma 4 reduction cannot instantly collapse the graph —
///   forcing stage 2/3 work exactly like the paper's tough datasets.
fn plant_structured(base: &BipartiteGraph, half: u32, tough: bool, seed: u64) -> BipartiteGraph {
    let nl = base.num_left() as u32;
    let nr = base.num_right() as u32;
    let half = half.min(nl).min(nr);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut builder = Builder::new(nl, nr);
    builder.reserve(base.num_edges() + 3 * (half as usize).pow(2));
    for (u, v) in base.edges() {
        builder.add_edge(u, v).expect("in range");
    }

    // True optimum on mid-rank vertices.
    let l0 = (nl / 3).min(nl - half);
    let r0 = (nr / 3).min(nr - half);
    for u in l0..l0 + half {
        for v in r0..r0 + half {
            builder.add_edge(u, v).expect("in range");
        }
    }

    // Hub decoy, one smaller.
    let decoy = half.saturating_sub(2).max(2).min(nl).min(nr);
    for u in 0..decoy {
        for v in 0..decoy {
            builder.add_edge(u, v).expect("in range");
        }
    }

    // Halo: each true-block left vertex gains `half` random extra rights,
    // and vice versa, lifting the surrounding core numbers.
    for u in l0..l0 + half {
        for _ in 0..half {
            builder.add_edge(u, rng.gen_range(0..nr)).expect("in range");
        }
    }
    for v in r0..r0 + half {
        for _ in 0..half {
            builder.add_edge(rng.gen_range(0..nl), v).expect("in range");
        }
    }

    // Tough datasets additionally get a *core inflater*: a random dense
    // block whose core number exceeds half+1 (so the Lemma 4 reduction
    // cannot collapse it) but whose density is tuned low enough that it
    // almost surely contains no balanced biclique larger than `half`
    // (expected (half+1)² count ≪ 1). This is what real tough KONECT
    // graphs look like around their optimum, and what forces stage-3
    // verification work (Table 6 / Figures 4–6).
    if tough && half >= 6 {
        let m = (2 * half + 8).min(nl / 4).min(nr / 4).max(2);
        let k = half as f64;
        let p = (-(2.77 * k + 20.0) / ((k + 1.0) * (k + 1.0)))
            .exp()
            .clamp(0.45, 0.8);
        let lb = 2 * nl / 3;
        let rb = 2 * nr / 3;
        if lb + m <= nl && rb + m <= nr {
            for u in lb..lb + m {
                for v in rb..rb + m {
                    if rng.gen_bool(p) {
                        builder.add_edge(u, v).expect("in range");
                    }
                }
            }
        }
    }

    builder.build()
}

/// Planted optimum: the paper's reported optimum, unchanged — an MBB is a
/// *local* structure, so scaling the ambient graph down does not shrink it.
/// Clamped to the scaled min side (matters only for extreme aspect ratios
/// like jester, whose optimum spans its entire 100-vertex side).
fn planted_half_for(spec: &DatasetSpec, left: u32, right: u32) -> u32 {
    spec.optimum.clamp(2, left.min(right))
}

/// Tiny deterministic string hash to decorrelate per-dataset seeds.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{catalog, find};

    #[test]
    fn stand_ins_respect_caps() {
        let caps = ScaleCaps::small();
        for spec in catalog().iter().take(8) {
            let s = stand_in(spec, caps, 1);
            // The plant/halo/inflater and the small-side floor can push a
            // stand-in somewhat past the caps; they bound the *background*.
            let planted_edges = 3 * (s.planted_half as u64).pow(2);
            assert!(
                s.graph.num_edges() as u64 <= caps.max_edges * 2 + planted_edges,
                "{}: {} edges",
                spec.name,
                s.graph.num_edges()
            );
            let floor = 2 * (2 * spec.optimum as u64 + 16);
            assert!(
                (s.graph.num_vertices() as u64) <= caps.max_vertices + floor + 4,
                "{}: {} vertices",
                spec.name,
                s.graph.num_vertices()
            );
        }
    }

    #[test]
    fn small_datasets_are_not_scaled() {
        let spec = find("unicodelang").unwrap();
        let s = stand_in(spec, ScaleCaps::default(), 1);
        assert_eq!(s.scale, 1.0);
        assert_eq!(s.graph.num_left(), 254);
        assert_eq!(s.graph.num_right(), 614);
    }

    #[test]
    fn planted_biclique_exists() {
        for spec in catalog().iter().take(6) {
            let s = stand_in(spec, ScaleCaps::small(), 7);
            let k = s.planted_half;
            let nl = s.graph.num_left() as u32;
            let nr = s.graph.num_right() as u32;
            let l0 = (nl / 3).min(nl - k);
            let r0 = (nr / 3).min(nr - k);
            let a: Vec<u32> = (l0..l0 + k).collect();
            let b: Vec<u32> = (r0..r0 + k).collect();
            assert!(
                s.graph.is_biclique(&a, &b),
                "{}: planted {k} missing",
                spec.name
            );
        }
    }

    #[test]
    fn density_is_preserved_approximately() {
        let spec = find("opsahl-ucforum").unwrap(); // small, unscaled
        let s = stand_in(spec, ScaleCaps::default(), 3);
        let d = s.graph.density() * 1e4;
        // The plant adds a few edges on top of the target density.
        assert!(
            d >= spec.density_e4 * 0.8 && d <= spec.density_e4 * 1.6,
            "density×1e4 = {d} vs spec {}",
            spec.density_e4
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = find("escorts").unwrap();
        let a = stand_in(spec, ScaleCaps::small(), 5);
        let b = stand_in(spec, ScaleCaps::small(), 5);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn small_side_is_floored_not_crushed() {
        // jester is 173421 × 100 with optimum 100: the right side must
        // survive scaling so the whole-side optimum is representable.
        let spec = find("jester").unwrap();
        let s = stand_in(spec, ScaleCaps::small(), 2);
        assert_eq!(s.graph.num_right(), 100);
        assert_eq!(s.planted_half, 100);
    }

    #[test]
    fn planted_half_tracks_min_side() {
        let spec = find("discogs-style").unwrap(); // 1.6M × 383, optimum 42
        let s = stand_in(spec, ScaleCaps::small(), 2);
        assert!(s.planted_half == 42, "planted {}", s.planted_half);
        assert!(s.planted_half as usize <= s.graph.num_right());
    }
}
