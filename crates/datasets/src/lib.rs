//! Workloads for the MBB experiments: the Table 5/6 KONECT catalog with
//! synthetic stand-ins, and the Table 4 dense random grid.

#![warn(missing_docs)]

pub mod catalog;
pub mod dense;
pub mod synth;

pub use catalog::{catalog, find, tough_datasets, DatasetSpec};
pub use synth::{stand_in, ScaleCaps, StandIn};
