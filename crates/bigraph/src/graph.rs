//! Compressed-sparse-row bipartite graph.
//!
//! The global graph `G = (L, R, E)` of the paper (§2). Vertices on each side
//! are dense `u32` indices (`0..num_left()`, `0..num_right()`); adjacency is
//! stored twice (once per side) with sorted neighbour slices so that
//! membership tests are binary searches and set intersections are linear
//! merges.
//!
//! Algorithms that need a *total* order over `L ∪ R` (core decomposition,
//! the search orders of Lemmas 6–8) address vertices through [`Vertex`],
//! which packs a [`Side`] and a per-side index, or through the dense
//! *global id* mapping `L = 0..nl`, `R = nl..nl+nr`.

use std::fmt;

/// Which side of the bipartition a vertex belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Side {
    /// The `L` vertex set.
    Left,
    /// The `R` vertex set.
    Right,
}

impl Side {
    /// The other side.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A vertex of the bipartite graph: a side plus the index within that side.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Vertex {
    /// Side of the bipartition.
    pub side: Side,
    /// Index within the side (`0..num_left()` or `0..num_right()`).
    pub index: u32,
}

impl Vertex {
    /// A vertex on the left side.
    #[inline]
    pub fn left(index: u32) -> Vertex {
        Vertex {
            side: Side::Left,
            index,
        }
    }

    /// A vertex on the right side.
    #[inline]
    pub fn right(index: u32) -> Vertex {
        Vertex {
            side: Side::Right,
            index,
        }
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.side {
            Side::Left => write!(f, "L{}", self.index),
            Side::Right => write!(f, "R{}", self.index),
        }
    }
}

/// Errors raised while constructing a [`BipartiteGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was outside the declared side size.
    EndpointOutOfRange {
        /// Offending endpoint.
        vertex: Vertex,
        /// Declared size of that side.
        side_size: u32,
    },
    /// Pre-built CSR arrays handed to [`BipartiteGraph::from_csr`] violate
    /// a structural invariant (non-monotone offsets, unsorted or duplicate
    /// rows, out-of-range ids, or left/right sides that disagree).
    InvalidCsr {
        /// Which invariant failed.
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { vertex, side_size } => write!(
                f,
                "edge endpoint {vertex} out of range (side has {side_size} vertices)"
            ),
            GraphError::InvalidCsr { reason } => write!(f, "invalid CSR arrays: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable CSR bipartite graph.
#[derive(Clone)]
pub struct BipartiteGraph {
    left_offsets: Box<[usize]>,
    left_neighbors: Box<[u32]>,
    right_offsets: Box<[usize]>,
    right_neighbors: Box<[u32]>,
}

impl BipartiteGraph {
    /// Builds a graph from an edge list. Duplicate edges are collapsed.
    ///
    /// `edges` pairs are `(left_index, right_index)`.
    pub fn from_edges(
        num_left: u32,
        num_right: u32,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<BipartiteGraph, GraphError> {
        let mut builder = Builder::new(num_left, num_right);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Rebuilds a graph from pre-built CSR arrays, validating every
    /// structural invariant: monotone offset arrays ending at the adjacency
    /// length, strictly sorted (therefore deduplicated) rows, in-range ids,
    /// and a right side that is exactly the transpose of the left side.
    ///
    /// This is the deserialization entry point for the binary graph cache
    /// (`mbb-store`) and the streaming edge-list reader: both construct the
    /// same arrays [`Builder::build`] would, so a graph loaded through
    /// either path is byte-identical to its buffered-parse twin. Corrupt or
    /// hand-rolled arrays are rejected with [`GraphError::InvalidCsr`].
    pub fn from_csr(
        left_offsets: Vec<usize>,
        left_neighbors: Vec<u32>,
        right_offsets: Vec<usize>,
        right_neighbors: Vec<u32>,
    ) -> Result<BipartiteGraph, GraphError> {
        let invalid = |reason: &'static str| GraphError::InvalidCsr { reason };
        let check_side = |offsets: &[usize], neighbors: &[u32], opposite: usize| {
            if offsets.is_empty() || offsets[0] != 0 {
                return Err(invalid("offsets must start with 0"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(invalid("offsets must be non-decreasing"));
            }
            if *offsets.last().expect("non-empty") != neighbors.len() {
                return Err(invalid("last offset must equal the adjacency length"));
            }
            for w in offsets.windows(2) {
                let row = &neighbors[w[0]..w[1]];
                if row.windows(2).any(|p| p[0] >= p[1]) {
                    return Err(invalid("rows must be strictly increasing"));
                }
                if row.last().is_some_and(|&v| v as usize >= opposite) {
                    return Err(invalid("neighbor id out of range"));
                }
            }
            Ok(())
        };
        let nl = left_offsets.len() - usize::from(!left_offsets.is_empty());
        let nr = right_offsets.len() - usize::from(!right_offsets.is_empty());
        check_side(&left_offsets, &left_neighbors, nr)?;
        check_side(&right_offsets, &right_neighbors, nl)?;
        if left_neighbors.len() != right_neighbors.len() {
            return Err(invalid("left/right edge counts disagree"));
        }
        // The right side must be the exact transpose of the left side —
        // rebuild it the way `Builder::build` does and compare.
        let mut cursor: Vec<usize> = right_offsets[..nr].to_vec();
        for u in 0..nl {
            for &v in &left_neighbors[left_offsets[u]..left_offsets[u + 1]] {
                let slot = cursor[v as usize];
                if slot >= right_offsets[v as usize + 1] || right_neighbors[slot] != u as u32 {
                    return Err(invalid("right side is not the transpose of the left"));
                }
                cursor[v as usize] += 1;
            }
        }
        Ok(BipartiteGraph {
            left_offsets: left_offsets.into_boxed_slice(),
            left_neighbors: left_neighbors.into_boxed_slice(),
            right_offsets: right_offsets.into_boxed_slice(),
            right_neighbors: right_neighbors.into_boxed_slice(),
        })
    }

    /// Raw CSR offset array of the left side (`num_left() + 1` entries).
    ///
    /// Together with the other three raw accessors this is the complete
    /// serialization surface of the graph: feeding the four arrays back
    /// through [`from_csr`](Self::from_csr) reproduces it byte-identically.
    #[inline]
    pub fn left_offsets(&self) -> &[usize] {
        &self.left_offsets
    }

    /// Raw left→right CSR adjacency (see [`left_offsets`](Self::left_offsets)).
    #[inline]
    pub fn left_neighbors(&self) -> &[u32] {
        &self.left_neighbors
    }

    /// Raw CSR offset array of the right side (`num_right() + 1` entries).
    #[inline]
    pub fn right_offsets(&self) -> &[usize] {
        &self.right_offsets
    }

    /// Raw right→left CSR adjacency (see [`left_offsets`](Self::left_offsets)).
    #[inline]
    pub fn right_neighbors(&self) -> &[u32] {
        &self.right_neighbors
    }

    /// Number of vertices in `L`.
    #[inline]
    pub fn num_left(&self) -> usize {
        self.left_offsets.len() - 1
    }

    /// Number of vertices in `R`.
    #[inline]
    pub fn num_right(&self) -> usize {
        self.right_offsets.len() - 1
    }

    /// `|L| + |R|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_left() + self.num_right()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.left_neighbors.len()
    }

    /// Edge density `|E| / (|L| · |R|)`; 0 for degenerate shapes.
    pub fn density(&self) -> f64 {
        let denom = self.num_left() as f64 * self.num_right() as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.num_edges() as f64 / denom
        }
    }

    /// Sorted neighbours (right indices) of left vertex `u`.
    #[inline]
    pub fn neighbors_left(&self, u: u32) -> &[u32] {
        let u = u as usize;
        &self.left_neighbors[self.left_offsets[u]..self.left_offsets[u + 1]]
    }

    /// Sorted neighbours (left indices) of right vertex `v`.
    #[inline]
    pub fn neighbors_right(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.right_neighbors[self.right_offsets[v]..self.right_offsets[v + 1]]
    }

    /// Sorted neighbours of a [`Vertex`] (indices on the opposite side).
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[u32] {
        match v.side {
            Side::Left => self.neighbors_left(v.index),
            Side::Right => self.neighbors_right(v.index),
        }
    }

    /// Degree of left vertex `u`.
    #[inline]
    pub fn degree_left(&self, u: u32) -> usize {
        self.neighbors_left(u).len()
    }

    /// Degree of right vertex `v`.
    #[inline]
    pub fn degree_right(&self, v: u32) -> usize {
        self.neighbors_right(v).len()
    }

    /// Degree of a [`Vertex`].
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree over `L ∪ R` (`d_max` of the paper).
    pub fn max_degree(&self) -> usize {
        let l = (0..self.num_left() as u32)
            .map(|u| self.degree_left(u))
            .max()
            .unwrap_or(0);
        let r = (0..self.num_right() as u32)
            .map(|v| self.degree_right(v))
            .max()
            .unwrap_or(0);
        l.max(r)
    }

    /// Membership test via binary search on the smaller-degree endpoint.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let lu = self.neighbors_left(u);
        let rv = self.neighbors_right(v);
        if lu.len() <= rv.len() {
            lu.binary_search(&v).is_ok()
        } else {
            rv.binary_search(&u).is_ok()
        }
    }

    /// Iterates all edges as `(left, right)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_left() as u32)
            .flat_map(move |u| self.neighbors_left(u).iter().map(move |&v| (u, v)))
    }

    /// Iterates every vertex, left side first.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        let nl = self.num_left() as u32;
        let nr = self.num_right() as u32;
        (0..nl).map(Vertex::left).chain((0..nr).map(Vertex::right))
    }

    /// Dense global id of a vertex: `L = 0..nl`, `R = nl..nl+nr`.
    #[inline]
    pub fn global_id(&self, v: Vertex) -> usize {
        match v.side {
            Side::Left => v.index as usize,
            Side::Right => self.num_left() + v.index as usize,
        }
    }

    /// Inverse of [`global_id`](Self::global_id).
    #[inline]
    pub fn vertex_of_global(&self, g: usize) -> Vertex {
        if g < self.num_left() {
            Vertex::left(g as u32)
        } else {
            Vertex::right((g - self.num_left()) as u32)
        }
    }

    /// Checks whether `(A, B)` (as side-local index slices) is a biclique.
    pub fn is_biclique(&self, a: &[u32], b: &[u32]) -> bool {
        a.iter().all(|&u| b.iter().all(|&v| self.has_edge(u, v)))
    }
}

impl fmt::Debug for BipartiteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BipartiteGraph(|L|={}, |R|={}, |E|={})",
            self.num_left(),
            self.num_right(),
            self.num_edges()
        )
    }
}

/// Incremental edge-list builder for [`BipartiteGraph`].
pub struct Builder {
    num_left: u32,
    num_right: u32,
    edges: Vec<(u32, u32)>,
}

impl Builder {
    /// Starts a builder for sides of the given sizes.
    pub fn new(num_left: u32, num_right: u32) -> Builder {
        Builder {
            num_left,
            num_right,
            edges: Vec::new(),
        }
    }

    /// Reserves capacity for `n` additional edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Records the edge `(u ∈ L, v ∈ R)`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        if u >= self.num_left {
            return Err(GraphError::EndpointOutOfRange {
                vertex: Vertex::left(u),
                side_size: self.num_left,
            });
        }
        if v >= self.num_right {
            return Err(GraphError::EndpointOutOfRange {
                vertex: Vertex::right(v),
                side_size: self.num_right,
            });
        }
        self.edges.push((u, v));
        Ok(())
    }

    /// Number of edges recorded so far (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edge has been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalises the CSR arrays, sorting and deduplicating edges.
    pub fn build(mut self) -> BipartiteGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let nl = self.num_left as usize;
        let nr = self.num_right as usize;
        let m = self.edges.len();

        let mut left_offsets = vec![0usize; nl + 1];
        for &(u, _) in &self.edges {
            left_offsets[u as usize + 1] += 1;
        }
        for i in 0..nl {
            left_offsets[i + 1] += left_offsets[i];
        }
        let left_neighbors: Vec<u32> = self.edges.iter().map(|&(_, v)| v).collect();

        let mut right_degrees = vec![0usize; nr];
        for &(_, v) in &self.edges {
            right_degrees[v as usize] += 1;
        }
        let mut right_offsets = vec![0usize; nr + 1];
        for v in 0..nr {
            right_offsets[v + 1] = right_offsets[v] + right_degrees[v];
        }
        let mut cursor = right_offsets.clone();
        let mut right_neighbors = vec![0u32; m];
        for &(u, v) in &self.edges {
            // Left-sorted insertion keeps each right adjacency sorted too.
            right_neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }

        BipartiteGraph {
            left_offsets: left_offsets.into_boxed_slice(),
            left_neighbors: left_neighbors.into_boxed_slice(),
            right_offsets: right_offsets.into_boxed_slice(),
            right_neighbors: right_neighbors.into_boxed_slice(),
        }
    }
}

/// Intersection size of two sorted `u32` slices (linear merge).
pub fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Intersection of two sorted `u32` slices.
pub fn sorted_intersection(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Intersection of two sorted `u32` slices whose size is already known
/// (e.g. from a prior [`sorted_intersection_len`] scoring pass). The fused
/// follow-up: allocates exactly `len` and stops merging once every match is
/// collected, instead of re-walking both slices to their ends.
pub fn sorted_intersection_exact(a: &[u32], b: &[u32], len: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(len);
    let mut i = 0;
    let mut j = 0;
    while out.len() < len && i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    debug_assert_eq!(out.len(), len, "len hint must match the true overlap");
    out
}

/// How a sorted `needles` slice overlaps a sorted `haystack` slice.
///
/// Produced by [`sorted_overlap_with`] in a single early-exiting merge —
/// the fused replacement for comparing `sorted_intersection_len` against
/// `needles.len()` and `0` in two separate full passes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortedOverlap {
    /// No needle occurs in the haystack.
    Disjoint,
    /// Some but not all needles occur in the haystack.
    Partial,
    /// Every needle occurs in the haystack (vacuously true when empty).
    All,
}

/// Classifies `needles ∩ haystack` as [`SortedOverlap::Disjoint`],
/// [`SortedOverlap::Partial`] or [`SortedOverlap::All`] in one merge pass,
/// returning `Partial` as soon as both a hit and a miss have been seen.
pub fn sorted_overlap_with(haystack: &[u32], needles: &[u32]) -> SortedOverlap {
    let mut hit = false;
    let mut miss = false;
    let mut i = 0;
    for &n in needles {
        while i < haystack.len() && haystack[i] < n {
            i += 1;
        }
        if i < haystack.len() && haystack[i] == n {
            hit = true;
            i += 1;
        } else {
            miss = true;
        }
        if hit && miss {
            return SortedOverlap::Partial;
        }
    }
    if miss {
        SortedOverlap::Disjoint
    } else {
        SortedOverlap::All
    }
}

/// True when every element of sorted `needles` occurs in sorted `haystack`
/// (prefix-pruned: exits at the first missing needle).
pub fn sorted_contains_all(haystack: &[u32], needles: &[u32]) -> bool {
    if needles.len() > haystack.len() {
        return false;
    }
    let mut i = 0;
    for &n in needles {
        while i < haystack.len() && haystack[i] < n {
            i += 1;
        }
        if i >= haystack.len() || haystack[i] != n {
            return false;
        }
        i += 1;
    }
    true
}

/// True when two sorted slices share at least one element (exits at the
/// first hit — the fused replacement for `sorted_intersection_len(..) > 0`).
pub fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sparse example of Figure 1(b): L = {1..6}, R = {7..12}, 0-indexed
    /// here as L = {0..5}, R = {0..5} (vertex 7 → R0, … 12 → R5).
    pub(crate) fn figure_1b() -> BipartiteGraph {
        // Edges from the paper's figure: 1-7, 2-7, 2-8, 3-8, 3-9, 3-10,
        // 4-9, 4-10, 5-9, 5-10, 6-11, 6-12, 5-11? — we use the edge set
        // consistent with the stated bicliques ({1,2},{7}), ({3,4,5},{9,10})
        // and MBB ({3,4},{9,10}) of size 4, core numbers of Table 2.
        BipartiteGraph::from_edges(
            6,
            6,
            [
                (0, 0), // 1-7
                (1, 0), // 2-7
                (1, 1), // 2-8
                (2, 1), // 3-8
                (2, 2), // 3-9
                (2, 3), // 3-10
                (3, 2), // 4-9
                (3, 3), // 4-10
                (4, 2), // 5-9
                (4, 3), // 5-10
                (5, 4), // 6-11
                (5, 5), // 6-12
                (4, 4), // 5-11
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn vertices_without_edges() {
        let g = BipartiteGraph::from_edges(3, 4, []).unwrap();
        assert_eq!(g.num_left(), 3);
        assert_eq!(g.num_right(), 4);
        assert_eq!(g.degree_left(2), 0);
        assert_eq!(g.degree_right(3), 0);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (0, 0), (1, 1), (0, 0)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 1));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn adjacency_is_sorted_both_sides() {
        let g = BipartiteGraph::from_edges(3, 3, [(2, 1), (0, 2), (0, 0), (2, 0), (1, 1)]).unwrap();
        for u in 0..3 {
            let n = g.neighbors_left(u);
            assert!(
                n.windows(2).all(|w| w[0] < w[1]),
                "left {u} unsorted: {n:?}"
            );
        }
        for v in 0..3 {
            let n = g.neighbors_right(v);
            assert!(
                n.windows(2).all(|w| w[0] < w[1]),
                "right {v} unsorted: {n:?}"
            );
        }
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = BipartiteGraph::from_edges(2, 2, [(2, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::EndpointOutOfRange { .. }));
        let err = BipartiteGraph::from_edges(2, 2, [(0, 5)]).unwrap_err();
        assert_eq!(
            err.to_string(),
            "edge endpoint R5 out of range (side has 2 vertices)"
        );
    }

    #[test]
    fn figure_1b_basic_properties() {
        let g = figure_1b();
        assert_eq!(g.num_left(), 6);
        assert_eq!(g.num_right(), 6);
        assert_eq!(g.num_edges(), 13);
        // ({3,4},{9,10}) → L{2,3} × R{2,3} is a biclique.
        assert!(g.is_biclique(&[2, 3], &[2, 3]));
        assert!(g.is_biclique(&[2, 3, 4], &[2, 3]));
        assert!(!g.is_biclique(&[0, 2], &[0]));
    }

    #[test]
    fn global_id_roundtrip() {
        let g = figure_1b();
        for v in g.vertices() {
            assert_eq!(g.vertex_of_global(g.global_id(v)), v);
        }
        assert_eq!(g.global_id(Vertex::left(0)), 0);
        assert_eq!(g.global_id(Vertex::right(0)), 6);
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = figure_1b();
        assert_eq!(g.degree_left(2), 3); // vertex 3 → 8,9,10
        assert_eq!(g.degree_right(2), 3); // vertex 9 → 3,4,5
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let mut b = Builder::new(4, 5);
        for u in 0..4 {
            for v in 0..5 {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        assert_eq!(g.density(), 1.0);
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn edges_iterator_matches_num_edges() {
        let g = figure_1b();
        assert_eq!(g.edges().count(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn sorted_intersection_helpers() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 4, 5, 8];
        assert_eq!(sorted_intersection_len(&a, &b), 2);
        assert_eq!(sorted_intersection(&a, &b), vec![3, 5]);
        assert_eq!(sorted_intersection_len(&a, &[]), 0);
        assert_eq!(sorted_intersection(&[], &b), Vec::<u32>::new());
    }

    #[test]
    fn fused_sorted_kernels_match_full_merges() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 3, 4, 5, 8];
        assert_eq!(sorted_intersection_exact(&a, &b, 2), vec![3, 5]);
        assert_eq!(sorted_intersection_exact(&a, &[], 0), Vec::<u32>::new());
        assert!(sorted_intersects(&a, &b));
        assert!(!sorted_intersects(&a, &[2, 4, 8]));
        assert!(!sorted_intersects(&a, &[]));
        assert!(sorted_contains_all(&b, &[3, 5]));
        assert!(sorted_contains_all(&b, &[]));
        assert!(!sorted_contains_all(&b, &[3, 6]));
        assert!(!sorted_contains_all(&[3], &[3, 6]));
        assert_eq!(sorted_overlap_with(&b, &[3, 5]), SortedOverlap::All);
        assert_eq!(sorted_overlap_with(&b, &[3, 6]), SortedOverlap::Partial);
        assert_eq!(sorted_overlap_with(&b, &[1, 6]), SortedOverlap::Disjoint);
        assert_eq!(sorted_overlap_with(&b, &[]), SortedOverlap::All);
        // Exhaustive differential check against the unfused merges on
        // every small subset pair of a fixed universe.
        let universe: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6];
        let subsets: Vec<Vec<u32>> = (0u32..128)
            .map(|mask| {
                universe
                    .iter()
                    .copied()
                    .filter(|&x| mask >> x & 1 == 1)
                    .collect()
            })
            .collect();
        for x in &subsets {
            for y in &subsets {
                let len = sorted_intersection_len(x, y);
                assert_eq!(
                    sorted_intersection_exact(x, y, len),
                    sorted_intersection(x, y)
                );
                assert_eq!(sorted_intersects(x, y), len > 0);
                assert_eq!(sorted_contains_all(x, y), len == y.len());
                let expect = if len == y.len() {
                    SortedOverlap::All
                } else if len == 0 {
                    SortedOverlap::Disjoint
                } else {
                    SortedOverlap::Partial
                };
                assert_eq!(sorted_overlap_with(x, y), expect, "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn from_csr_roundtrips_raw_arrays() {
        let g = figure_1b();
        let back = BipartiteGraph::from_csr(
            g.left_offsets().to_vec(),
            g.left_neighbors().to_vec(),
            g.right_offsets().to_vec(),
            g.right_neighbors().to_vec(),
        )
        .unwrap();
        assert_eq!(back.left_offsets(), g.left_offsets());
        assert_eq!(back.left_neighbors(), g.left_neighbors());
        assert_eq!(back.right_offsets(), g.right_offsets());
        assert_eq!(back.right_neighbors(), g.right_neighbors());
    }

    #[test]
    fn from_csr_accepts_empty_graph() {
        let g = BipartiteGraph::from_csr(vec![0], vec![], vec![0], vec![]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn from_csr_rejects_broken_invariants() {
        let g = figure_1b();
        let parts = || {
            (
                g.left_offsets().to_vec(),
                g.left_neighbors().to_vec(),
                g.right_offsets().to_vec(),
                g.right_neighbors().to_vec(),
            )
        };
        // Non-monotone offsets.
        let (mut lo, ln, ro, rn) = parts();
        lo[1] = lo[2] + 1;
        assert!(BipartiteGraph::from_csr(lo, ln, ro, rn).is_err());
        // Unsorted row.
        let (lo, mut ln, ro, rn) = parts();
        ln.swap(4, 5); // vertex 3's row {1,2,3} becomes {1,3,2}
        assert!(BipartiteGraph::from_csr(lo, ln, ro, rn).is_err());
        // Out-of-range neighbor.
        let (lo, mut ln, ro, rn) = parts();
        let last = ln.len() - 1;
        ln[last] = 99;
        assert!(BipartiteGraph::from_csr(lo, ln, ro, rn).is_err());
        // Right side not the transpose of the left.
        let (lo, ln, ro, mut rn) = parts();
        rn.swap(0, 1);
        let err = BipartiteGraph::from_csr(lo, ln, ro, rn).unwrap_err();
        assert!(matches!(err, GraphError::InvalidCsr { .. }), "{err}");
        // Truncated offsets.
        assert!(BipartiteGraph::from_csr(vec![], vec![], vec![0], vec![]).is_err());
        assert!(BipartiteGraph::from_csr(vec![1], vec![0], vec![0, 1], vec![0]).is_err());
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }

    #[test]
    fn vertex_display() {
        assert_eq!(Vertex::left(3).to_string(), "L3");
        assert_eq!(Vertex::right(0).to_string(), "R0");
    }
}
