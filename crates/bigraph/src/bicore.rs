//! Bicore decomposition — Definitions 3–5 and Algorithm 7 of the paper.
//!
//! The *bicore number* `bc(u)` is the largest `k` such that some subgraph
//! `H ∋ u` has `min_v |N≤2(v, H)| ≥ k`; the *bidegeneracy* `δ̈(G)` is the
//! maximum bicore number, and the peel order is a *bidegeneracy order*
//! (Definition 5). Because `|N≤2(·, H)|` is monotone non-increasing under
//! vertex deletion, greedy min-value peeling computes bicore numbers exactly
//! (the same argument as for ordinary cores).
//!
//! The paper's Lemma 10 peeling tie-break (min `|N≤2|`, then min degree) is
//! used to pick the next vertex; unlike the paper we do not *rely* on the
//! lemma's "loses at most 1" claim for correctness — exact `|N≤2|` values
//! are maintained through a common-neighbour multiplicity map, so removing a
//! vertex that disconnects 2-hop paths decrements every affected count. The
//! cost is `O(Σ deg² · log n)`, matching Lemma 9 up to the heap factor and
//! common-neighbour multiplicity.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::graph::BipartiteGraph;

/// Result of a bicore decomposition.
#[derive(Debug, Clone)]
pub struct BicoreDecomposition {
    /// Bicore number per global vertex id.
    pub bicore: Vec<u32>,
    /// Global ids in peel order — a bidegeneracy order (Definition 5).
    pub order: Vec<u32>,
    /// `δ̈(G)`: the bidegeneracy (0 for empty graphs).
    pub bidegeneracy: u32,
}

#[inline]
fn pair_key(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((hi as u64) << 32) | lo as u64
}

/// Runs the bicore decomposition (Algorithm 7).
///
/// ```
/// use mbb_bigraph::{graph::BipartiteGraph, bicore::bicore_decomposition};
/// // A 4-cycle: every vertex has one neighbour and one 2-hop neighbour.
/// let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0)])?;
/// let d = bicore_decomposition(&g);
/// assert_eq!(d.bidegeneracy, 2);
/// # Ok::<(), mbb_bigraph::graph::GraphError>(())
/// ```
#[allow(clippy::needless_range_loop)] // index loops mirror the array-based peeling
pub fn bicore_decomposition(graph: &BipartiteGraph) -> BicoreDecomposition {
    let nl = graph.num_left();
    let n = graph.num_vertices();
    if n == 0 {
        return BicoreDecomposition {
            bicore: Vec::new(),
            order: Vec::new(),
            bidegeneracy: 0,
        };
    }

    // Global-id adjacency accessor.
    let neighbors_global = |g: usize| -> (&[u32], usize) {
        // Returns (opposite-side local indices, offset to globalise them).
        if g < nl {
            (graph.neighbors_left(g as u32), nl)
        } else {
            (graph.neighbors_right((g - nl) as u32), 0)
        }
    };

    // Common-neighbour multiplicities for same-side pairs at distance 2,
    // plus the distinct 2-hop adjacency lists.
    let mut cn: HashMap<u64, u32> = HashMap::new();
    for mid in 0..n {
        let (adj, offset) = neighbors_global(mid);
        for i in 0..adj.len() {
            for j in (i + 1)..adj.len() {
                let a = adj[i] + offset as u32;
                let b = adj[j] + offset as u32;
                *cn.entry(pair_key(a, b)).or_insert(0) += 1;
            }
        }
    }
    let mut two_hop_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &key in cn.keys() {
        let a = (key & 0xffff_ffff) as u32;
        let b = (key >> 32) as u32;
        two_hop_adj[a as usize].push(b);
        two_hop_adj[b as usize].push(a);
    }

    let mut alive = vec![true; n];
    let mut deg: Vec<usize> = (0..n).map(|g| neighbors_global(g).0.len()).collect();
    let mut n2count: Vec<usize> = two_hop_adj.iter().map(|v| v.len()).collect();
    let mut nle2: Vec<usize> = (0..n).map(|g| deg[g] + n2count[g]).collect();

    // Lazy min-heap keyed by (|N≤2|, degree) per Lemma 10's tie-break.
    let mut heap: BinaryHeap<Reverse<(usize, usize, u32)>> = (0..n)
        .map(|g| Reverse((nle2[g], deg[g], g as u32)))
        .collect();

    let mut bicore = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut running_max = 0u32;
    let mut scratch_alive_neighbors: Vec<u32> = Vec::new();

    while let Some(Reverse((val, d, v))) = heap.pop() {
        let v = v as usize;
        if !alive[v] || val != nle2[v] || d != deg[v] {
            continue; // stale entry
        }
        alive[v] = false;
        running_max = running_max.max(nle2[v] as u32);
        bicore[v] = running_max;
        order.push(v as u32);

        // 1. Direct neighbours lose v from N(·).
        let (adj, offset) = neighbors_global(v);
        scratch_alive_neighbors.clear();
        for &w_local in adj {
            let w = w_local as usize + offset;
            if alive[w] {
                scratch_alive_neighbors.push(w as u32);
            }
        }
        for &w in &scratch_alive_neighbors {
            let w = w as usize;
            deg[w] -= 1;
            nle2[w] -= 1;
            heap.push(Reverse((nle2[w], deg[w], w as u32)));
        }

        // 2. Same-side 2-hop neighbours lose v from N2(·).
        for &w in &two_hop_adj[v] {
            let w = w as usize;
            if !alive[w] {
                continue;
            }
            let key = pair_key(v as u32, w as u32);
            if cn.get(&key).copied().unwrap_or(0) > 0 {
                cn.remove(&key);
                n2count[w] -= 1;
                nle2[w] -= 1;
                heap.push(Reverse((nle2[w], deg[w], w as u32)));
            }
        }

        // 3. Pairs of v's surviving neighbours lose a common neighbour; a
        // pair whose count hits zero falls out of each other's N2.
        for i in 0..scratch_alive_neighbors.len() {
            for j in (i + 1)..scratch_alive_neighbors.len() {
                let a = scratch_alive_neighbors[i];
                let b = scratch_alive_neighbors[j];
                let key = pair_key(a, b);
                if let Some(count) = cn.get_mut(&key) {
                    *count -= 1;
                    if *count == 0 {
                        cn.remove(&key);
                        let (a, b) = (a as usize, b as usize);
                        n2count[a] -= 1;
                        nle2[a] -= 1;
                        n2count[b] -= 1;
                        nle2[b] -= 1;
                        heap.push(Reverse((nle2[a], deg[a], a as u32)));
                        heap.push(Reverse((nle2[b], deg[b], b as u32)));
                    }
                }
            }
        }
    }

    BicoreDecomposition {
        bidegeneracy: running_max,
        bicore,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::{BipartiteGraph, Vertex};
    use crate::two_hop;

    /// Brute-force bicore numbers straight from Definition 3: for each `k`,
    /// iteratively delete vertices whose `|N≤2|` (recomputed in the
    /// remaining induced subgraph) is below `k`; survivors have `bc ≥ k`.
    fn brute_bicore(graph: &BipartiteGraph) -> Vec<u32> {
        let n = graph.num_vertices();
        let nl = graph.num_left();
        let mut bicore = vec![0u32; n];
        for k in 1..=n {
            let mut alive = vec![true; n];
            loop {
                let mut removed = false;
                for g in 0..n {
                    if !alive[g] {
                        continue;
                    }
                    let v = graph.vertex_of_global(g);
                    // |N≤2(v)| within the alive-induced subgraph.
                    let opposite_offset = if g < nl { nl } else { 0 };
                    let alive_neighbors: Vec<u32> = graph
                        .neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&w| alive[w as usize + opposite_offset])
                        .collect();
                    let mut two_hop = std::collections::HashSet::new();
                    for &mid in &alive_neighbors {
                        let mid_v = Vertex {
                            side: v.side.opposite(),
                            index: mid,
                        };
                        let same_offset = if g < nl { 0 } else { nl };
                        for &w in graph.neighbors(mid_v) {
                            if alive[w as usize + same_offset] && w != v.index {
                                two_hop.insert(w);
                            }
                        }
                    }
                    if alive_neighbors.len() + two_hop.len() < k {
                        alive[g] = false;
                        removed = true;
                    }
                }
                if !removed {
                    break;
                }
            }
            let mut any = false;
            for g in 0..n {
                if alive[g] {
                    bicore[g] = k as u32;
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        bicore
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let d = bicore_decomposition(&g);
        assert_eq!(d.bidegeneracy, 0);
        assert!(d.order.is_empty());
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::from_edges(1, 1, [(0, 0)]).unwrap();
        let d = bicore_decomposition(&g);
        // Each endpoint has |N≤2| = 1.
        assert_eq!(d.bicore, vec![1, 1]);
        assert_eq!(d.bidegeneracy, 1);
    }

    #[test]
    fn complete_bipartite() {
        let g = generators::complete(3, 4);
        let d = bicore_decomposition(&g);
        // Left vertex: 4 + 2 = 6; right: 3 + 3 = 6; all equal.
        assert_eq!(d.bidegeneracy, 6);
        assert!(d.bicore.iter().all(|&c| c == 6));
    }

    #[test]
    fn star_bicore() {
        // Star centre L0 with 4 leaves: leaves see 1 + 3 = 4, centre 4 + 0.
        let g = BipartiteGraph::from_edges(1, 4, (0..4).map(|v| (0, v))).unwrap();
        let d = bicore_decomposition(&g);
        assert_eq!(d.bidegeneracy, 4);
        assert!(d.bicore.iter().all(|&c| c == 4));
    }

    #[test]
    fn matches_brute_force_on_small_random_graphs() {
        for seed in 0..12 {
            let g = generators::uniform_edges(8, 8, 20, seed);
            let fast = bicore_decomposition(&g);
            let brute = brute_bicore(&g);
            assert_eq!(fast.bicore, brute, "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_power_law_graphs() {
        for seed in 0..6 {
            let g = generators::chung_lu_bipartite(
                &generators::ChungLuParams {
                    num_left: 15,
                    num_right: 12,
                    num_edges: 35,
                    left_exponent: 0.8,
                    right_exponent: 0.8,
                },
                seed,
            );
            let fast = bicore_decomposition(&g);
            let brute = brute_bicore(&g);
            assert_eq!(fast.bicore, brute, "seed {seed}");
        }
    }

    #[test]
    fn bidegeneracy_upper_bounds_initial_min_nle2() {
        // δ̈ ≥ min over all vertices of |N≤2| in the full graph.
        let g = generators::uniform_edges(20, 20, 120, 5);
        let d = bicore_decomposition(&g);
        let sizes = two_hop::all_n_le2_sizes(&g);
        let min = sizes.iter().copied().min().unwrap();
        assert!(d.bidegeneracy as usize >= min);
    }

    #[test]
    fn order_is_permutation() {
        let g = generators::uniform_edges(25, 20, 100, 8);
        let d = bicore_decomposition(&g);
        let mut seen = vec![false; g.num_vertices()];
        for &v in &d.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bicore_at_least_core() {
        // |N≤2| ≥ degree pointwise in every subgraph, so bc(u) ≥ core(u).
        let g = generators::uniform_edges(20, 20, 110, 9);
        let bi = bicore_decomposition(&g);
        let co = crate::core_decomp::core_decomposition(&g);
        for g_id in 0..g.num_vertices() {
            assert!(
                bi.bicore[g_id] >= co.core[g_id],
                "vertex {g_id}: bc {} < core {}",
                bi.bicore[g_id],
                co.core[g_id]
            );
        }
    }

    #[test]
    fn isolated_vertices_peel_first_with_zero() {
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0)]).unwrap();
        let d = bicore_decomposition(&g);
        assert_eq!(d.bicore[1], 0);
        assert_eq!(d.bicore[2], 0);
        assert_eq!(d.bicore[0], 1);
    }
}
