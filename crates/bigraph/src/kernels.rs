//! Block-oriented bitset kernels: the word-level hot loops behind every
//! [`BitSet`](crate::bitset::BitSet) operation the solvers spend their time
//! in.
//!
//! Table 4/5 workloads are kernel-bound: `denseMBB` and Algorithm 8
//! verification reduce to streams of AND + popcount over `u64` rows. This
//! module concentrates those streams into a small set of *fused* kernels so
//! a single pass does the work the call sites used to split across an
//! `intersect` pass plus a `len` pass:
//!
//! | Kernel | Fuses | Used by |
//! |--------|-------|---------|
//! | [`and_popcount`] | intersect + count | degree-in-candidates scans |
//! | [`andnot_popcount`] | subtract + count | Lemma 1/2 missing counts |
//! | [`and_assign_count`] | in-place intersect + count | candidate inclusion |
//! | [`or_assign_count`] / [`andnot_assign_count`] | in-place union/subtract + count | incumbent assembly |
//! | [`first_and`] / [`last_and`] / [`first_andnot`] | intersect + scan, prefix-pruned | survivor row scans |
//! | [`multi_and_popcount`] | batched multi-row AND + count | consensus / Lemma 3 reduction |
//!
//! # Backends
//!
//! Every dispatched kernel has up to four implementations:
//!
//! * **`Reference`** — the plain iterator loops the pre-kernel `BitSet` used
//!   (one `count_ones` per word, no unrolling, no fusion of scan passes).
//!   Kept as the differential-testing oracle and the committed benchmark
//!   baseline in `BENCH_kernels.json`.
//! * **`Blocked`** — explicit unrolled u64-block paths: four independent
//!   popcount accumulator chains, instantiated a second time on x86_64
//!   under `#[target_feature(enable = "popcnt")]` so `count_ones()` lowers
//!   to the hardware `popcnt` instruction (runtime-detected, scalar — no
//!   `simd` feature required).
//! * **`Sse2`** / **`Avx2`** — `std::arch` wide paths (128/256-bit SWAR
//!   popcount reduced with `psadbw`/`vpsadbw`), compiled only under the
//!   `simd` cargo feature on x86_64 and selected by *runtime* CPU feature
//!   detection, so one binary serves every microarchitecture.
//!
//! Dispatch is a single relaxed atomic load per call (a cached backend id);
//! [`force_backend`] pins the choice for differential tests and benchmarks.
//!
//! # Invariants
//!
//! Kernels operate on raw word slices and assume the caller's tail-bit
//! invariant: bits at positions `>= capacity` in the last word are zero.
//! `BitSet` maintains that invariant; the differential proptest suite in
//! `tests/tests/bitset_kernels.rs` checks every backend against `Reference`
//! on non-word-aligned capacities.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation executes a dispatched call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Pre-kernel iterator loops (differential oracle / benchmark baseline).
    Reference,
    /// Unrolled u64-block paths with runtime hardware-POPCNT dispatch.
    Blocked,
    /// 128-bit SSE2 SWAR path (requires the `simd` feature on x86_64).
    Sse2,
    /// 256-bit AVX2 SWAR path (requires the `simd` feature + runtime AVX2).
    Avx2,
}

impl Backend {
    /// Stable lowercase name (used by `BENCH_kernels.json` entries).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Blocked => "blocked",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    fn to_id(self) -> u8 {
        match self {
            Backend::Reference => 1,
            Backend::Blocked => 2,
            Backend::Sse2 => 3,
            Backend::Avx2 => 4,
        }
    }

    fn from_id(id: u8) -> Option<Backend> {
        match id {
            1 => Some(Backend::Reference),
            2 => Some(Backend::Blocked),
            3 => Some(Backend::Sse2),
            4 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

/// `0` = no forced backend; otherwise `Backend::to_id`.
static FORCED: AtomicU8 = AtomicU8::new(0);
/// `0` = not yet detected; otherwise the best available `Backend::to_id`.
static RESOLVED: AtomicU8 = AtomicU8::new(0);

/// Backends usable on this build + machine, best last.
pub fn available_backends() -> Vec<Backend> {
    #[allow(unused_mut)] // mut is only exercised by the simd-on-x86_64 cfg.
    let mut out = vec![Backend::Reference, Backend::Blocked];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        out.push(Backend::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(Backend::Avx2);
        }
    }
    out
}

/// Pins every dispatched kernel to `backend` (or returns to automatic
/// selection with `None`). Returns `false` — leaving the previous choice in
/// place — when the backend is not available on this build + machine.
///
/// Intended for differential tests and the `bench-kernels` runner; all
/// backends compute identical results, so racing a change against running
/// solvers affects speed only.
pub fn force_backend(backend: Option<Backend>) -> bool {
    match backend {
        None => {
            // relaxed: the flag is an independent perf hint, no other memory
            // is published through it and every backend returns equal values.
            FORCED.store(0, Ordering::Relaxed);
            true
        }
        Some(b) => {
            if !available_backends().contains(&b) {
                return false;
            }
            // relaxed: see above — backend choice never guards other data.
            FORCED.store(b.to_id(), Ordering::Relaxed);
            true
        }
    }
}

/// The backend a dispatched kernel call would use right now.
#[inline]
pub fn active_backend() -> Backend {
    // relaxed: a stale read only changes which (equivalent) kernel runs.
    if let Some(b) = Backend::from_id(FORCED.load(Ordering::Relaxed)) {
        return b;
    }
    // relaxed: RESOLVED is write-once idempotent (every thread detects the
    // same CPU), so racing initialisation is benign.
    if let Some(b) = Backend::from_id(RESOLVED.load(Ordering::Relaxed)) {
        return b;
    }
    let best = *available_backends().last().expect("at least Blocked");
    // relaxed: idempotent cache fill, see above.
    RESOLVED.store(best.to_id(), Ordering::Relaxed);
    best
}

// ---------------------------------------------------------------------------
// Reference backend: the pre-kernel loops, verbatim.
// ---------------------------------------------------------------------------

/// The plain iterator loops `BitSet` used before the kernel module existed.
///
/// These are the bit-for-bit oracle for the differential proptest suite and
/// the committed `baseline` column of `BENCH_kernels.json`. They must stay
/// boring: one pass per logical operation, no unrolling, no early exits.
pub mod reference {
    /// `popcount(a)`.
    pub fn popcount(a: &[u64]) -> usize {
        a.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `popcount(a & b)`.
    pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// `popcount(a & !b)`.
    pub fn andnot_popcount(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x & !y).count_ones() as usize)
            .sum()
    }

    /// `a &= b` then a separate `popcount(a)` pass (the unfused idiom).
    pub fn and_assign_count(a: &mut [u64], b: &[u64]) -> usize {
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x &= *y;
        }
        popcount(a)
    }

    /// `a |= b` then a separate `popcount(a)` pass.
    pub fn or_assign_count(a: &mut [u64], b: &[u64]) -> usize {
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x |= *y;
        }
        popcount(a)
    }

    /// `a &= !b` then a separate `popcount(a)` pass.
    pub fn andnot_assign_count(a: &mut [u64], b: &[u64]) -> usize {
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x &= !*y;
        }
        popcount(a)
    }

    /// First set bit of `a & b`, scanning every word (no prefix pruning).
    pub fn first_and(a: &[u64], b: &[u64]) -> Option<usize> {
        let mut found = None;
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let w = x & y;
            if w != 0 && found.is_none() {
                found = Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        found
    }

    /// Last set bit of `a & b`, scanning forward and remembering the last.
    pub fn last_and(a: &[u64], b: &[u64]) -> Option<usize> {
        let mut found = None;
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let w = x & y;
            if w != 0 {
                found = Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        found
    }

    /// First set bit of `a & !b`, scanning every word.
    pub fn first_andnot(a: &[u64], b: &[u64]) -> Option<usize> {
        let mut found = None;
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let w = x & !y;
            if w != 0 && found.is_none() {
                found = Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        found
    }

    /// One full AND pass per row into `acc`, then a separate popcount pass.
    pub fn multi_and_popcount(acc: &mut [u64], rows: &[&[u64]]) -> usize {
        for row in rows {
            for (x, y) in acc.iter_mut().zip(row.iter()) {
                *x &= *y;
            }
        }
        popcount(acc)
    }
}

// ---------------------------------------------------------------------------
// Blocked backend: unrolled u64 blocks + runtime hardware-POPCNT paths.
// ---------------------------------------------------------------------------

mod blocked {
    //! Explicit unrolled u64-block kernels.
    //!
    //! Every count kernel is written once as an `#[inline(always)]` body
    //! using four independent accumulator chains over `chunks_exact(4)` —
    //! enough instruction-level parallelism to keep the popcount unit busy.
    //! On x86_64 the [`popcnt_kernel!`] macro instantiates each body twice:
    //! portably (LLVM autovectorises the chains into SWAR popcounts, like
    //! the reference loops) and under `#[target_feature(enable = "popcnt")]`,
    //! where every `count_ones()` lowers to the single-cycle hardware
    //! `popcnt` instruction. Which instantiation runs is decided once per
    //! process by `is_x86_feature_detected!("popcnt")` — scalar dispatch, so
    //! it needs no `simd` cargo feature.

    /// True when the CPU offers hardware POPCNT (cached after first query).
    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn has_popcnt() -> bool {
        use std::sync::OnceLock;
        static HAS: OnceLock<bool> = OnceLock::new();
        *HAS.get_or_init(|| std::arch::is_x86_feature_detected!("popcnt"))
    }

    /// Four-chain unrolled popcount over `words` — the shared count tail
    /// every blocked kernel reduces through.
    #[inline(always)]
    fn popcount_chains(words: &[u64]) -> usize {
        let mut c = [0usize; 4];
        let chunks = words.chunks_exact(4);
        let rest = chunks.remainder();
        for w in chunks {
            c[0] += w[0].count_ones() as usize;
            c[1] += w[1].count_ones() as usize;
            c[2] += w[2].count_ones() as usize;
            c[3] += w[3].count_ones() as usize;
        }
        for &w in rest {
            c[0] += w.count_ones() as usize;
        }
        c[0] + c[1] + c[2] + c[3]
    }

    /// Defines a count kernel from one body, instantiated portably and — on
    /// x86_64 — under `#[target_feature(enable = "popcnt")]`, picked at
    /// runtime via [`has_popcnt`]. `#[inline(always)]` helpers called from
    /// the body (e.g. [`popcount_chains`]) inline into both instantiations
    /// and inherit the target feature.
    macro_rules! popcnt_kernel {
        (
            $(#[$meta:meta])*
            pub fn $name:ident($($arg:ident: $ty:ty),* $(,)?) -> usize
            $body:block
        ) => {
            $(#[$meta])*
            pub fn $name($($arg: $ty),*) -> usize {
                #[inline(always)]
                fn portable($($arg: $ty),*) -> usize $body

                #[cfg(target_arch = "x86_64")]
                {
                    /// # Safety
                    /// The CPU must support POPCNT.
                    #[target_feature(enable = "popcnt")]
                    unsafe fn hardware($($arg: $ty),*) -> usize $body

                    if has_popcnt() {
                        // SAFETY: `has_popcnt` verified the CPU feature.
                        return unsafe { hardware($($arg),*) };
                    }
                }
                portable($($arg),*)
            }
        };
    }

    popcnt_kernel! {
        /// Popcount of `a` (four-chain unrolled).
        pub fn popcount(a: &[u64]) -> usize {
            popcount_chains(a)
        }
    }

    popcnt_kernel! {
        /// Fused `|a & b|`: one pass, no materialised intersection.
        pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
            debug_assert_eq!(a.len(), b.len());
            let mut c = [0usize; 4];
            let ca = a.chunks_exact(4);
            let cb = b.chunks_exact(4);
            let (ra, rb) = (ca.remainder(), cb.remainder());
            for (x, y) in ca.zip(cb) {
                c[0] += (x[0] & y[0]).count_ones() as usize;
                c[1] += (x[1] & y[1]).count_ones() as usize;
                c[2] += (x[2] & y[2]).count_ones() as usize;
                c[3] += (x[3] & y[3]).count_ones() as usize;
            }
            for (x, y) in ra.iter().zip(rb) {
                c[0] += (x & y).count_ones() as usize;
            }
            c[0] + c[1] + c[2] + c[3]
        }
    }

    popcnt_kernel! {
        /// Fused `|a \ b|`: one pass, no materialised difference.
        pub fn andnot_popcount(a: &[u64], b: &[u64]) -> usize {
            debug_assert_eq!(a.len(), b.len());
            let mut c = [0usize; 4];
            let ca = a.chunks_exact(4);
            let cb = b.chunks_exact(4);
            let (ra, rb) = (ca.remainder(), cb.remainder());
            for (x, y) in ca.zip(cb) {
                c[0] += (x[0] & !y[0]).count_ones() as usize;
                c[1] += (x[1] & !y[1]).count_ones() as usize;
                c[2] += (x[2] & !y[2]).count_ones() as usize;
                c[3] += (x[3] & !y[3]).count_ones() as usize;
            }
            for (x, y) in ra.iter().zip(rb) {
                c[0] += (x & !y).count_ones() as usize;
            }
            c[0] + c[1] + c[2] + c[3]
        }
    }

    popcnt_kernel! {
        /// Fused `a &= b` + count: one pass, four accumulator chains.
        pub fn and_assign_count(a: &mut [u64], b: &[u64]) -> usize {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let (mut s0, mut s1, mut s2, mut s3) = (0usize, 0usize, 0usize, 0usize);
            let mut i = 0usize;
            while i + 4 <= n {
                let w0 = a[i] & b[i];
                let w1 = a[i + 1] & b[i + 1];
                let w2 = a[i + 2] & b[i + 2];
                let w3 = a[i + 3] & b[i + 3];
                a[i] = w0;
                a[i + 1] = w1;
                a[i + 2] = w2;
                a[i + 3] = w3;
                s0 += w0.count_ones() as usize;
                s1 += w1.count_ones() as usize;
                s2 += w2.count_ones() as usize;
                s3 += w3.count_ones() as usize;
                i += 4;
            }
            while i < n {
                let w = a[i] & b[i];
                a[i] = w;
                s0 += w.count_ones() as usize;
                i += 1;
            }
            s0 + s1 + s2 + s3
        }
    }

    popcnt_kernel! {
        /// Fused `a |= b` + count in one pass.
        pub fn or_assign_count(a: &mut [u64], b: &[u64]) -> usize {
            debug_assert_eq!(a.len(), b.len());
            let mut count = 0usize;
            for (x, y) in a.iter_mut().zip(b.iter()) {
                let w = *x | *y;
                *x = w;
                count += w.count_ones() as usize;
            }
            count
        }
    }

    popcnt_kernel! {
        /// Fused `a &= !b` + count in one pass.
        pub fn andnot_assign_count(a: &mut [u64], b: &[u64]) -> usize {
            debug_assert_eq!(a.len(), b.len());
            let mut count = 0usize;
            for (x, y) in a.iter_mut().zip(b.iter()) {
                let w = *x & !*y;
                *x = w;
                count += w.count_ones() as usize;
            }
            count
        }
    }

    /// First survivor of `a & b`, prefix-pruned (stops at the first hit).
    pub fn first_and(a: &[u64], b: &[u64]) -> Option<usize> {
        debug_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let w = x & y;
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Last survivor of `a & b`, suffix-pruned (scans backwards).
    pub fn last_and(a: &[u64], b: &[u64]) -> Option<usize> {
        debug_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate().rev() {
            let w = x & y;
            if w != 0 {
                return Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }

    /// First survivor of `a & !b`, prefix-pruned.
    pub fn first_andnot(a: &[u64], b: &[u64]) -> Option<usize> {
        debug_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let w = x & !y;
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Cache-block size for the batched multi-row AND: 128 words = 1 KiB, so
    /// the accumulator chunk stays L1-resident while every row streams by.
    pub(super) const MULTI_AND_CHUNK: usize = 128;

    popcnt_kernel! {
        /// Batched multi-row AND + count: `acc &= rows[0] & rows[1] & ...`.
        ///
        /// Processed chunk-by-chunk across all rows (cache-blocked) with the
        /// final popcount fused into the last touch of each chunk.
        pub fn multi_and_popcount(acc: &mut [u64], rows: &[&[u64]]) -> usize {
            let n = acc.len();
            let mut total = 0usize;
            let mut start = 0usize;
            while start < n {
                let end = (start + MULTI_AND_CHUNK).min(n);
                for row in rows {
                    debug_assert_eq!(row.len(), n);
                    let chunk = &mut acc[start..end];
                    for (x, y) in chunk.iter_mut().zip(row[start..end].iter()) {
                        *x &= *y;
                    }
                }
                total += popcount_chains(&acc[start..end]);
                start = end;
            }
            total
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD backends (simd feature, x86_64): SSE2 / AVX2 SWAR popcount.
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    //! `std::arch` wide kernels. Popcount uses the SWAR ladder
    //! (`x - ((x>>1) & 0x55…)`, nibble merge, byte merge) followed by
    //! `psadbw` against zero, which horizontally sums the byte counts into
    //! one value per 64-bit lane — the classic vector popcount that needs
    //! nothing newer than SSE2 / AVX2.

    use std::arch::x86_64::*;

    /// Per-64-bit-lane popcount of a 128-bit vector.
    ///
    /// # Safety
    /// Requires SSE2 (baseline on x86_64).
    #[inline]
    unsafe fn popcnt_epi64_sse2(v: __m128i) -> __m128i {
        let m1 = _mm_set1_epi64x(0x5555_5555_5555_5555);
        let m2 = _mm_set1_epi64x(0x3333_3333_3333_3333);
        let m4 = _mm_set1_epi64x(0x0f0f_0f0f_0f0f_0f0f);
        let v = _mm_sub_epi64(v, _mm_and_si128(_mm_srli_epi64(v, 1), m1));
        let v = _mm_add_epi64(
            _mm_and_si128(v, m2),
            _mm_and_si128(_mm_srli_epi64(v, 2), m2),
        );
        let v = _mm_and_si128(_mm_add_epi64(v, _mm_srli_epi64(v, 4)), m4);
        _mm_sad_epu8(v, _mm_setzero_si128())
    }

    /// Per-64-bit-lane popcount of a 256-bit vector.
    ///
    /// # Safety
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_epi64_avx2(v: __m256i) -> __m256i {
        let m1 = _mm256_set1_epi64x(0x5555_5555_5555_5555);
        let m2 = _mm256_set1_epi64x(0x3333_3333_3333_3333);
        let m4 = _mm256_set1_epi64x(0x0f0f_0f0f_0f0f_0f0f);
        let v = _mm256_sub_epi64(v, _mm256_and_si256(_mm256_srli_epi64(v, 1), m1));
        let v = _mm256_add_epi64(
            _mm256_and_si256(v, m2),
            _mm256_and_si256(_mm256_srli_epi64(v, 2), m2),
        );
        let v = _mm256_and_si256(_mm256_add_epi64(v, _mm256_srli_epi64(v, 4)), m4);
        _mm256_sad_epu8(v, _mm256_setzero_si256())
    }

    /// Horizontal sum of the four u64 lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64_avx2(v: __m256i) -> u64 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi64(lo, hi);
        (_mm_cvtsi128_si64(s) as u64)
            .wrapping_add(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)) as u64)
    }

    /// `popcount(a & b)` over 128-bit lanes.
    ///
    /// # Safety
    /// Requires SSE2 (baseline on x86_64); slices must be equal length.
    pub unsafe fn and_popcount_sse2(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 2 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
            acc = _mm_add_epi64(acc, popcnt_epi64_sse2(_mm_and_si128(va, vb)));
            i += 2;
        }
        let mut total = hsum_epi64_sse2(acc);
        if i < n {
            total += (a[i] & b[i]).count_ones() as usize;
        }
        total
    }

    /// Horizontal sum of the two u64 lanes.
    ///
    /// # Safety
    /// Requires SSE2.
    #[inline]
    unsafe fn hsum_epi64_sse2(v: __m128i) -> usize {
        ((_mm_cvtsi128_si64(v) as u64)
            .wrapping_add(_mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)) as u64)) as usize
    }

    /// `popcount(a & !b)` over 128-bit lanes.
    ///
    /// # Safety
    /// Requires SSE2; slices must be equal length.
    pub unsafe fn andnot_popcount_sse2(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 2 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
            // andnot(b, a) = !b & a.
            acc = _mm_add_epi64(acc, popcnt_epi64_sse2(_mm_andnot_si128(vb, va)));
            i += 2;
        }
        let mut total = hsum_epi64_sse2(acc);
        if i < n {
            total += (a[i] & !b[i]).count_ones() as usize;
        }
        total
    }

    /// `popcount(a)` over 128-bit lanes.
    ///
    /// # Safety
    /// Requires SSE2.
    pub unsafe fn popcount_sse2(a: &[u64]) -> usize {
        let n = a.len();
        let mut acc = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 2 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            acc = _mm_add_epi64(acc, popcnt_epi64_sse2(va));
            i += 2;
        }
        let mut total = hsum_epi64_sse2(acc);
        if i < n {
            total += a[i].count_ones() as usize;
        }
        total
    }

    /// Fused `a &= b` + count over 128-bit lanes.
    ///
    /// # Safety
    /// Requires SSE2; slices must be equal length.
    pub unsafe fn and_assign_count_sse2(a: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 2 <= n {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
            let w = _mm_and_si128(va, vb);
            _mm_storeu_si128(a.as_mut_ptr().add(i).cast(), w);
            acc = _mm_add_epi64(acc, popcnt_epi64_sse2(w));
            i += 2;
        }
        let mut total = hsum_epi64_sse2(acc);
        if i < n {
            let w = a[i] & b[i];
            a[i] = w;
            total += w.count_ones() as usize;
        }
        total
    }

    /// `popcount(a & b)` over 256-bit lanes.
    ///
    /// # Safety
    /// Requires AVX2; slices must be equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_popcount_avx2(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            acc = _mm256_add_epi64(acc, popcnt_epi64_avx2(_mm256_and_si256(va, vb)));
            i += 4;
        }
        let mut total = hsum_epi64_avx2(acc) as usize;
        while i < n {
            total += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    /// `popcount(a & !b)` over 256-bit lanes.
    ///
    /// # Safety
    /// Requires AVX2; slices must be equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn andnot_popcount_avx2(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            acc = _mm256_add_epi64(acc, popcnt_epi64_avx2(_mm256_andnot_si256(vb, va)));
            i += 4;
        }
        let mut total = hsum_epi64_avx2(acc) as usize;
        while i < n {
            total += (a[i] & !b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    /// `popcount(a)` over 256-bit lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn popcount_avx2(a: &[u64]) -> usize {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            acc = _mm256_add_epi64(acc, popcnt_epi64_avx2(va));
            i += 4;
        }
        let mut total = hsum_epi64_avx2(acc) as usize;
        while i < n {
            total += a[i].count_ones() as usize;
            i += 1;
        }
        total
    }

    /// Fused `a &= b` + count over 256-bit lanes.
    ///
    /// # Safety
    /// Requires AVX2; slices must be equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_assign_count_avx2(a: &mut [u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let w = _mm256_and_si256(va, vb);
            _mm256_storeu_si256(a.as_mut_ptr().add(i).cast(), w);
            acc = _mm256_add_epi64(acc, popcnt_epi64_avx2(w));
            i += 4;
        }
        let mut total = hsum_epi64_avx2(acc) as usize;
        while i < n {
            let w = a[i] & b[i];
            a[i] = w;
            total += w.count_ones() as usize;
            i += 1;
        }
        total
    }

    /// First survivor of `a & b`: 4-word `vptest` blocks, then a scalar
    /// refine inside the first non-empty block.
    ///
    /// # Safety
    /// Requires AVX2; slices must be equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn first_and_avx2(a: &[u64], b: &[u64]) -> Option<usize> {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            if _mm256_testz_si256(va, vb) == 0 {
                for j in i..i + 4 {
                    let w = a[j] & b[j];
                    if w != 0 {
                        return Some(j * 64 + w.trailing_zeros() as usize);
                    }
                }
            }
            i += 4;
        }
        while i < n {
            let w = a[i] & b[i];
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
            i += 1;
        }
        None
    }

    /// Last survivor of `a & b`: backwards 4-word `vptest` blocks.
    ///
    /// # Safety
    /// Requires AVX2; slices must be equal length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn last_and_avx2(a: &[u64], b: &[u64]) -> Option<usize> {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut i = n;
        while !i.is_multiple_of(4) {
            i -= 1;
            let w = a[i] & b[i];
            if w != 0 {
                return Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        while i >= 4 {
            i -= 4;
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            if _mm256_testz_si256(va, vb) == 0 {
                for j in (i..i + 4).rev() {
                    let w = a[j] & b[j];
                    if w != 0 {
                        return Some(j * 64 + 63 - w.leading_zeros() as usize);
                    }
                }
            }
        }
        None
    }

    /// Cache-blocked batched multi-row AND + fused count, 256-bit inner loop.
    ///
    /// # Safety
    /// Requires AVX2; all rows must match `acc` in length.
    #[target_feature(enable = "avx2")]
    pub unsafe fn multi_and_popcount_avx2(acc: &mut [u64], rows: &[&[u64]]) -> usize {
        let n = acc.len();
        let mut total = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + super::blocked::MULTI_AND_CHUNK).min(n);
            for row in rows {
                debug_assert_eq!(row.len(), n);
                let mut i = start;
                while i + 4 <= end {
                    let va = _mm256_loadu_si256(acc.as_ptr().add(i).cast());
                    let vb = _mm256_loadu_si256(row.as_ptr().add(i).cast());
                    _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), _mm256_and_si256(va, vb));
                    i += 4;
                }
                while i < end {
                    acc[i] &= row[i];
                    i += 1;
                }
            }
            total += popcount_avx2(&acc[start..end]);
            start = end;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------------

/// Dispatches one kernel call to the active backend.
///
/// With the `simd` feature off this collapses to `Reference`-vs-`Blocked`
/// (the atomic load stays so tests and benchmarks can pin the baseline).
macro_rules! dispatch {
    ($ref_expr:expr, $blk_expr:expr, $sse2_expr:expr, $avx2_expr:expr $(,)?) => {{
        match active_backend() {
            Backend::Reference => $ref_expr,
            Backend::Blocked => $blk_expr,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Sse2 => $sse2_expr,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => $avx2_expr,
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            Backend::Sse2 | Backend::Avx2 => $blk_expr,
        }
    }};
}

/// `popcount(a)`: number of set bits.
#[inline]
pub fn popcount(a: &[u64]) -> usize {
    dispatch!(
        reference::popcount(a),
        blocked::popcount(a),
        // SAFETY: Sse2 is only selectable on x86_64 (SSE2 is baseline).
        unsafe { x86::popcount_sse2(a) },
        // SAFETY: Avx2 is only selectable after is_x86_feature_detected!.
        unsafe { x86::popcount_avx2(a) },
    )
}

/// Fused `popcount(a & b)` — `intersection_len` without materialising.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
    dispatch!(
        reference::and_popcount(a, b),
        blocked::and_popcount(a, b),
        // SAFETY: Sse2 is only selectable on x86_64 (SSE2 is baseline).
        unsafe { x86::and_popcount_sse2(a, b) },
        // SAFETY: Avx2 is only selectable after is_x86_feature_detected!.
        unsafe { x86::and_popcount_avx2(a, b) },
    )
}

/// Fused `popcount(a & !b)` — `difference_len` without materialising.
#[inline]
pub fn andnot_popcount(a: &[u64], b: &[u64]) -> usize {
    dispatch!(
        reference::andnot_popcount(a, b),
        blocked::andnot_popcount(a, b),
        // SAFETY: Sse2 is only selectable on x86_64 (SSE2 is baseline).
        unsafe { x86::andnot_popcount_sse2(a, b) },
        // SAFETY: Avx2 is only selectable after is_x86_feature_detected!.
        unsafe { x86::andnot_popcount_avx2(a, b) },
    )
}

/// Fused in-place `a &= b` returning the new popcount in the same pass.
#[inline]
pub fn and_assign_count(a: &mut [u64], b: &[u64]) -> usize {
    dispatch!(
        reference::and_assign_count(a, b),
        blocked::and_assign_count(a, b),
        // SAFETY: Sse2 is only selectable on x86_64 (SSE2 is baseline).
        unsafe { x86::and_assign_count_sse2(a, b) },
        // SAFETY: Avx2 is only selectable after is_x86_feature_detected!.
        unsafe { x86::and_assign_count_avx2(a, b) },
    )
}

/// Fused in-place `a |= b` returning the new popcount in the same pass.
#[inline]
pub fn or_assign_count(a: &mut [u64], b: &[u64]) -> usize {
    match active_backend() {
        Backend::Reference => reference::or_assign_count(a, b),
        _ => blocked::or_assign_count(a, b),
    }
}

/// Fused in-place `a &= !b` returning the new popcount in the same pass.
#[inline]
pub fn andnot_assign_count(a: &mut [u64], b: &[u64]) -> usize {
    match active_backend() {
        Backend::Reference => reference::andnot_assign_count(a, b),
        _ => blocked::andnot_assign_count(a, b),
    }
}

/// First survivor of `a & b` (prefix-pruned: stops at the first hit).
#[inline]
pub fn first_and(a: &[u64], b: &[u64]) -> Option<usize> {
    dispatch!(
        reference::first_and(a, b),
        blocked::first_and(a, b),
        blocked::first_and(a, b),
        // SAFETY: Avx2 is only selectable after is_x86_feature_detected!.
        unsafe { x86::first_and_avx2(a, b) },
    )
}

/// Last survivor of `a & b` (suffix-pruned: scans backwards).
#[inline]
pub fn last_and(a: &[u64], b: &[u64]) -> Option<usize> {
    dispatch!(
        reference::last_and(a, b),
        blocked::last_and(a, b),
        blocked::last_and(a, b),
        // SAFETY: Avx2 is only selectable after is_x86_feature_detected!.
        unsafe { x86::last_and_avx2(a, b) },
    )
}

/// First survivor of `a & !b` (prefix-pruned).
#[inline]
pub fn first_andnot(a: &[u64], b: &[u64]) -> Option<usize> {
    match active_backend() {
        Backend::Reference => reference::first_andnot(a, b),
        _ => blocked::first_andnot(a, b),
    }
}

/// Batched multi-row AND + fused count: `acc &= r` for every row `r`,
/// returning the final popcount. Cache-blocked so the accumulator chunk
/// stays L1-resident while every row streams through it.
#[inline]
pub fn multi_and_popcount(acc: &mut [u64], rows: &[&[u64]]) -> usize {
    dispatch!(
        reference::multi_and_popcount(acc, rows),
        blocked::multi_and_popcount(acc, rows),
        blocked::multi_and_popcount(acc, rows),
        // SAFETY: Avx2 is only selectable after is_x86_feature_detected!.
        unsafe { x86::multi_and_popcount_avx2(acc, rows) },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // Deterministic xorshift fill; no tail masking — kernels are pure
        // word-level and must agree on arbitrary word patterns.
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    fn all_backends_agree_on_counts() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 129] {
            let a = words(n as u64 + 1, n);
            let b = words(n as u64 + 1000, n);
            let expect_and = reference::and_popcount(&a, &b);
            let expect_andnot = reference::andnot_popcount(&a, &b);
            let expect_pop = reference::popcount(&a);
            for backend in available_backends() {
                assert!(force_backend(Some(backend)));
                assert_eq!(and_popcount(&a, &b), expect_and, "{backend:?} n={n}");
                assert_eq!(andnot_popcount(&a, &b), expect_andnot, "{backend:?} n={n}");
                assert_eq!(popcount(&a), expect_pop, "{backend:?} n={n}");
                let mut aa = a.clone();
                assert_eq!(and_assign_count(&mut aa, &b), expect_and, "{backend:?}");
                assert_eq!(reference::popcount(&aa), expect_and);
            }
            force_backend(None);
        }
    }

    #[test]
    fn all_backends_agree_on_scans() {
        for n in [0usize, 1, 3, 4, 5, 16, 63, 130] {
            let a = words(n as u64 + 7, n);
            let mut b = words(n as u64 + 77, n);
            // Sparsify b so scans have interesting gaps.
            for (i, w) in b.iter_mut().enumerate() {
                if i % 3 != 0 {
                    *w = 0;
                }
            }
            let expect_first = reference::first_and(&a, &b);
            let expect_last = reference::last_and(&a, &b);
            for backend in available_backends() {
                assert!(force_backend(Some(backend)));
                assert_eq!(first_and(&a, &b), expect_first, "{backend:?} n={n}");
                assert_eq!(last_and(&a, &b), expect_last, "{backend:?} n={n}");
            }
            force_backend(None);
        }
    }

    #[test]
    fn multi_and_matches_sequential() {
        let n = 200usize;
        let rows: Vec<Vec<u64>> = (0..5).map(|r| words(r + 3, n)).collect();
        let row_refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
        let base = words(999, n);
        let mut expect_acc = base.clone();
        let expect = reference::multi_and_popcount(&mut expect_acc, &row_refs);
        for backend in available_backends() {
            assert!(force_backend(Some(backend)));
            let mut acc = base.clone();
            assert_eq!(
                multi_and_popcount(&mut acc, &row_refs),
                expect,
                "{backend:?}"
            );
            assert_eq!(acc, expect_acc, "{backend:?}");
        }
        force_backend(None);
    }

    #[test]
    fn force_backend_rejects_unavailable() {
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            assert!(!force_backend(Some(Backend::Avx2)));
            assert!(!force_backend(Some(Backend::Sse2)));
        }
        assert!(force_backend(Some(Backend::Blocked)));
        assert_eq!(active_backend(), Backend::Blocked);
        assert!(force_backend(None));
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Reference.name(), "reference");
        assert_eq!(Backend::Blocked.name(), "blocked");
        assert_eq!(Backend::Sse2.name(), "sse2");
        assert_eq!(Backend::Avx2.name(), "avx2");
    }

    #[test]
    fn blocked_counts_handle_saturated_and_empty_words() {
        for n in [0usize, 15, 16, 17, 48, 100] {
            let full = vec![u64::MAX; n];
            let empty = vec![0u64; n];
            assert_eq!(blocked::popcount(&full), n * 64);
            assert_eq!(blocked::popcount(&empty), 0);
            assert_eq!(blocked::and_popcount(&full, &empty), 0);
            assert_eq!(blocked::andnot_popcount(&full, &empty), n * 64);
        }
    }
}
