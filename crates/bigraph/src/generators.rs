//! Seeded workload generators.
//!
//! Two families mirror the paper's evaluation:
//!
//! * [`dense_uniform`] — the §6.1 dense workload: every pair `(u, v)`
//!   becomes an edge independently with probability `density`, as in the
//!   defect-tolerance literature the paper cites (reference 25, Tahoori).
//! * [`chung_lu_bipartite`] — the §6.2 sparse workload substitute: a
//!   Chung–Lu bipartite graph with per-side power-law weight sequences,
//!   reproducing the skewed degree distributions of the KONECT datasets.
//!   [`plant_balanced_biclique`] embeds a known optimum so that synthetic
//!   stand-ins have the same `Optimum` column as Table 5.
//!
//! All generators are deterministic in their `seed`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{BipartiteGraph, Builder};

/// Uniform `G(n_L, n_R, p)`: each of the `n_L · n_R` pairs is an edge with
/// probability `density`.
///
/// For densities ≥ 0.5 the complement is sampled instead, so generation is
/// always proportional to the smaller of edge/non-edge counts... in fact we
/// simply scan all pairs: the dense workload tops out at 2048×2048 = 4.2 M
/// pairs, which is cheap and keeps the code obviously correct.
pub fn dense_uniform(num_left: u32, num_right: u32, density: f64, seed: u64) -> BipartiteGraph {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = Builder::new(num_left, num_right);
    builder.reserve((num_left as usize * num_right as usize) * density as usize);
    for u in 0..num_left {
        for v in 0..num_right {
            if rng.gen_bool(density) {
                builder
                    .add_edge(u, v)
                    .expect("generator endpoints are in range");
            }
        }
    }
    builder.build()
}

/// Uniform random bipartite graph with exactly `num_edges` distinct edges
/// (capped at `n_L · n_R`).
pub fn uniform_edges(num_left: u32, num_right: u32, num_edges: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let capacity = num_left as u64 * num_right as u64;
    let target = (num_edges as u64).min(capacity) as usize;
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let mut builder = Builder::new(num_left, num_right);
    builder.reserve(target);
    if num_left == 0 || num_right == 0 {
        return builder.build();
    }
    while seen.len() < target {
        let u = rng.gen_range(0..num_left);
        let v = rng.gen_range(0..num_right);
        if seen.insert((u, v)) {
            builder.add_edge(u, v).expect("in range");
        }
    }
    builder.build()
}

/// Parameters for the Chung–Lu bipartite generator.
#[derive(Debug, Clone)]
pub struct ChungLuParams {
    /// Number of left vertices.
    pub num_left: u32,
    /// Number of right vertices.
    pub num_right: u32,
    /// Target number of distinct edges.
    pub num_edges: usize,
    /// Rank exponent `α` of the left weight sequence `w_i ∝ (i+1)^(−α)`.
    /// A rank exponent `α` yields a degree distribution with power-law
    /// exponent `1 + 1/α`; realistic KONECT-like graphs use `α ≈ 0.5–0.9`
    /// (degree exponents 2.1–3).
    pub left_exponent: f64,
    /// Rank exponent of the right weight sequence.
    pub right_exponent: f64,
}

/// Chung–Lu style bipartite graph: endpoints of each edge are drawn from
/// per-side power-law weight distributions `w_i ∝ (i + 1)^(−γ)`, duplicates
/// rejected until `num_edges` distinct edges exist (or the attempt budget is
/// exhausted, which only happens for near-complete targets).
///
/// The resulting degree distributions are heavy-tailed like the KONECT
/// datasets of Table 5: a few hub vertices with large degree and a long tail
/// of low-degree vertices, which is exactly the regime where bidegeneracy
/// `δ̈(G)` ≪ `d_max` (§5.3.1).
pub fn chung_lu_bipartite(params: &ChungLuParams, seed: u64) -> BipartiteGraph {
    let ChungLuParams {
        num_left,
        num_right,
        num_edges,
        left_exponent,
        right_exponent,
    } = *params;
    let mut rng = StdRng::seed_from_u64(seed);
    let capacity = num_left as u64 * num_right as u64;
    let target = (num_edges as u64).min(capacity) as usize;
    let mut builder = Builder::new(num_left, num_right);
    if num_left == 0 || num_right == 0 || target == 0 {
        return builder.build();
    }

    let left_cdf = power_law_cdf(num_left as usize, left_exponent);
    let right_cdf = power_law_cdf(num_right as usize, right_exponent);

    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    builder.reserve(target);
    // 50× oversampling budget: duplicate hits concentrate on hub–hub pairs
    // and die off quickly for sparse targets.
    let max_attempts = target.saturating_mul(50).max(1024);
    let mut attempts = 0usize;
    while seen.len() < target && attempts < max_attempts {
        attempts += 1;
        let u = sample_cdf(&left_cdf, &mut rng) as u32;
        let v = sample_cdf(&right_cdf, &mut rng) as u32;
        if seen.insert((u, v)) {
            builder.add_edge(u, v).expect("in range");
        }
    }
    builder.build()
}

/// Adds a complete `half × half` biclique on the `half` highest-weight
/// vertices of each side (indices `0..half`, which the power-law weighting
/// already makes hubs), returning the new graph and the planted sets.
///
/// Planting on hubs keeps the stand-in realistic: real KONECT optima also
/// sit inside the dense hub region. The planted biclique is a lower bound
/// on the true optimum; tests assert solvers find at least this size.
pub fn plant_balanced_biclique(
    graph: &BipartiteGraph,
    half: u32,
) -> (BipartiteGraph, Vec<u32>, Vec<u32>) {
    let half = half
        .min(graph.num_left() as u32)
        .min(graph.num_right() as u32);
    let left: Vec<u32> = (0..half).collect();
    let right: Vec<u32> = (0..half).collect();
    let mut builder = Builder::new(graph.num_left() as u32, graph.num_right() as u32);
    builder.reserve(graph.num_edges() + (half as usize).pow(2));
    for (u, v) in graph.edges() {
        builder.add_edge(u, v).expect("in range");
    }
    for &u in &left {
        for &v in &right {
            builder.add_edge(u, v).expect("in range");
        }
    }
    (builder.build(), left, right)
}

/// Complete bipartite graph `K(n_L, n_R)`.
pub fn complete(num_left: u32, num_right: u32) -> BipartiteGraph {
    let mut builder = Builder::new(num_left, num_right);
    builder.reserve(num_left as usize * num_right as usize);
    for u in 0..num_left {
        for v in 0..num_right {
            builder.add_edge(u, v).expect("in range");
        }
    }
    builder.build()
}

/// Cumulative distribution of `w_i ∝ (i + 1)^(−exponent)`, normalised.
fn power_law_cdf(n: usize, exponent: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i + 1) as f64).powf(-exponent);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Inverse-CDF sampling via binary search.
fn sample_cdf(cdf: &[f64], rng: &mut impl Rng) -> usize {
    let x: f64 = rng.gen();
    cdf.partition_point(|&c| c < x).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_uniform_density_is_close() {
        let g = dense_uniform(128, 128, 0.8, 7);
        let d = g.density();
        assert!((d - 0.8).abs() < 0.03, "density {d} far from 0.8");
    }

    #[test]
    fn dense_uniform_extremes() {
        let g = dense_uniform(16, 16, 1.0, 1);
        assert_eq!(g.num_edges(), 256);
        let g = dense_uniform(16, 16, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn dense_uniform_is_deterministic_in_seed() {
        let a = dense_uniform(32, 32, 0.5, 42);
        let b = dense_uniform(32, 32, 0.5, 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = dense_uniform(32, 32, 0.5, 43);
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn uniform_edges_hits_target() {
        let g = uniform_edges(50, 40, 300, 3);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn uniform_edges_caps_at_complete() {
        let g = uniform_edges(5, 5, 1000, 3);
        assert_eq!(g.num_edges(), 25);
    }

    #[test]
    fn uniform_edges_degenerate_sides() {
        let g = uniform_edges(0, 10, 5, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn chung_lu_degree_skew() {
        let g = chung_lu_bipartite(
            &ChungLuParams {
                num_left: 2000,
                num_right: 1000,
                num_edges: 8000,
                left_exponent: 0.8,
                right_exponent: 0.8,
            },
            11,
        );
        assert!(g.num_edges() >= 7000, "got {} edges", g.num_edges());
        // Hubs (low indices) should out-degree the tail on average.
        let head: usize = (0..20).map(|u| g.degree_left(u)).sum();
        let tail: usize = (1000..1020).map(|u| g.degree_left(u)).sum();
        assert!(head > tail * 3, "head {head} vs tail {tail}");
    }

    #[test]
    fn planting_makes_biclique() {
        let g = chung_lu_bipartite(
            &ChungLuParams {
                num_left: 200,
                num_right: 150,
                num_edges: 500,
                left_exponent: 0.8,
                right_exponent: 0.8,
            },
            5,
        );
        let (planted, left, right) = plant_balanced_biclique(&g, 6);
        assert_eq!(left.len(), 6);
        assert_eq!(right.len(), 6);
        assert!(planted.is_biclique(&left, &right));
        // All original edges survive.
        for (u, v) in g.edges() {
            assert!(planted.has_edge(u, v));
        }
    }

    #[test]
    fn planting_caps_at_side_sizes() {
        let g = BipartiteGraph::from_edges(3, 8, []).unwrap();
        let (planted, left, right) = plant_balanced_biclique(&g, 10);
        assert_eq!(left.len(), 3);
        assert_eq!(right.len(), 3);
        assert!(planted.is_biclique(&left, &right));
    }

    #[test]
    fn complete_graph() {
        let g = complete(4, 7);
        assert_eq!(g.num_edges(), 28);
        assert_eq!(g.density(), 1.0);
    }

    #[test]
    fn power_law_cdf_is_monotone_and_normalised() {
        let cdf = power_law_cdf(100, 2.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }
}
