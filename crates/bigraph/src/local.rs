//! Dense bitset subgraphs for the exhaustive-search kernels.
//!
//! Every graph that reaches `basicBB` / `denseMBB` (Algorithms 1 and 3) is
//! either a dense synthetic input or a vertex-centred subgraph of size
//! ≲ δ̈(G), so a dense adjacency-bitset representation is the right trade:
//! candidate intersection (`CB ∩ N(u)`), reduction degree counts and the
//! Lemma 3 density test all become a handful of word operations per row.
//!
//! # Cache-blocked layout
//!
//! Adjacency rows are stored in one contiguous arena per side
//! (`RowArena`-style `rows × words_per_row` words) instead of one heap
//! allocation per row. A vertex-centred subgraph of size ~ bidegeneracy + 1
//! is then a single dense block — e.g. 128 vertices × 2 words = 2 KiB per
//! side — that stays resident in L1/L2 for the whole branch-and-bound run,
//! and row scans walk sequential memory instead of chasing per-row boxes.
//! Rows are handed out as borrowed [`RowRef`] views; every
//! [`crate::bitset::BitSet`] operation accepts them directly through the
//! [`Bits`] trait, so no row is ever copied just to intersect against it.

use crate::bitset::{iter_words, BitSet, Bits, Iter};
use crate::graph::BipartiteGraph;
use crate::kernels;

/// A vertex of a [`LocalGraph`]: side flag plus local index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LocalVertex {
    /// True for the left side.
    pub left: bool,
    /// Index within the side.
    pub index: u32,
}

impl LocalVertex {
    /// Left-side local vertex.
    pub fn left(index: u32) -> Self {
        LocalVertex { left: true, index }
    }

    /// Right-side local vertex.
    pub fn right(index: u32) -> Self {
        LocalVertex { left: false, index }
    }
}

/// One side's adjacency rows in a single contiguous arena.
#[derive(Clone, Debug)]
struct RowArena {
    /// `rows * words_per_row` words, row-major.
    words: Vec<u64>,
    words_per_row: usize,
    /// Bit capacity of each row (the size of the *other* side).
    row_capacity: usize,
    rows: usize,
}

impl RowArena {
    fn new(rows: usize, row_capacity: usize) -> RowArena {
        let words_per_row = row_capacity.div_ceil(64);
        RowArena {
            words: vec![0u64; rows * words_per_row],
            words_per_row,
            row_capacity,
            rows,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.rows);
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    #[inline]
    fn insert(&mut self, i: usize, bit: usize) {
        debug_assert!(i < self.rows && bit < self.row_capacity);
        self.words[i * self.words_per_row + bit / 64] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn contains(&self, i: usize, bit: usize) -> bool {
        debug_assert!(i < self.rows && bit < self.row_capacity);
        (self.words[i * self.words_per_row + bit / 64] >> (bit % 64)) & 1 == 1
    }
}

/// A borrowed adjacency row of a [`LocalGraph`]: a read-only bitset view
/// into the side arena. Copy-cheap; interoperates with every [`BitSet`]
/// operation through the [`Bits`] trait.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    words: &'a [u64],
    capacity: usize,
}

impl Bits for RowRef<'_> {
    #[inline]
    fn words(&self) -> &[u64] {
        self.words
    }

    #[inline]
    fn bit_capacity(&self) -> usize {
        self.capacity
    }
}

impl<'a> RowRef<'a> {
    /// Exclusive upper bound on stored values.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tests membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of stored values (one fused popcount pass).
    #[inline]
    pub fn len(&self) -> usize {
        kernels::popcount(self.words)
    }

    /// True when no value is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the stored values in increasing order.
    pub fn iter(&self) -> Iter<'a> {
        iter_words(self.words)
    }

    /// Copies the row into an owned [`BitSet`].
    pub fn to_bitset(&self) -> BitSet {
        BitSet::from_words(self.words, self.capacity)
    }
}

impl std::fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A small bipartite graph with arena-backed bitset adjacency on both sides.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    /// Row `u` = bitset over right-local indices adjacent to left `u`.
    left_adj: RowArena,
    /// Row `v` = bitset over left-local indices adjacent to right `v`.
    right_adj: RowArena,
}

impl LocalGraph {
    /// An empty graph with the given side sizes.
    pub fn new(num_left: usize, num_right: usize) -> LocalGraph {
        LocalGraph {
            left_adj: RowArena::new(num_left, num_right),
            right_adj: RowArena::new(num_right, num_left),
        }
    }

    /// Builds from an explicit edge list of `(left, right)` local indices.
    pub fn from_edges(
        num_left: usize,
        num_right: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> LocalGraph {
        let mut g = LocalGraph::new(num_left, num_right);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Extracts the subgraph of `graph` induced by the given original-side
    /// index lists. Local index `i` on each side corresponds to
    /// `left_ids[i]` / `right_ids[i]`.
    pub fn induced(graph: &BipartiteGraph, left_ids: &[u32], right_ids: &[u32]) -> LocalGraph {
        let mut right_map = vec![u32::MAX; graph.num_right()];
        for (i, &r) in right_ids.iter().enumerate() {
            right_map[r as usize] = i as u32;
        }
        let mut local = LocalGraph::new(left_ids.len(), right_ids.len());
        for (i, &l) in left_ids.iter().enumerate() {
            for &r in graph.neighbors_left(l) {
                let j = right_map[r as usize];
                if j != u32::MAX {
                    local.add_edge(i as u32, j);
                }
            }
        }
        local
    }

    /// Adds an edge between left `u` and right `v`.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.left_adj.insert(u as usize, v as usize);
        self.right_adj.insert(v as usize, u as usize);
    }

    /// Number of left vertices.
    #[inline]
    pub fn num_left(&self) -> usize {
        self.left_adj.rows
    }

    /// Number of right vertices.
    #[inline]
    pub fn num_right(&self) -> usize {
        self.right_adj.rows
    }

    /// Total vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_left() + self.num_right()
    }

    /// Number of edges (counted from the left arena in one pass).
    pub fn num_edges(&self) -> usize {
        kernels::popcount(&self.left_adj.words)
    }

    /// Edge density relative to the complete bipartite graph.
    pub fn density(&self) -> f64 {
        let denom = self.num_left() as f64 * self.num_right() as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.num_edges() as f64 / denom
        }
    }

    /// Adjacency row of left vertex `u` (bitset view over right indices).
    #[inline]
    pub fn left_row(&self, u: u32) -> RowRef<'_> {
        RowRef {
            words: self.left_adj.row(u as usize),
            capacity: self.left_adj.row_capacity,
        }
    }

    /// Adjacency row of right vertex `v` (bitset view over left indices).
    #[inline]
    pub fn right_row(&self, v: u32) -> RowRef<'_> {
        RowRef {
            words: self.right_adj.row(v as usize),
            capacity: self.right_adj.row_capacity,
        }
    }

    /// Edge test.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.left_adj.contains(u as usize, v as usize)
    }

    /// Degree of left vertex `u` restricted to a right-side candidate set
    /// (one fused AND + popcount pass over the arena row).
    #[inline]
    pub fn left_degree_in<B: Bits + ?Sized>(&self, u: u32, candidates: &B) -> usize {
        debug_assert_eq!(candidates.bit_capacity(), self.left_adj.row_capacity);
        kernels::and_popcount(self.left_adj.row(u as usize), candidates.words())
    }

    /// Degree of right vertex `v` restricted to a left-side candidate set.
    #[inline]
    pub fn right_degree_in<B: Bits + ?Sized>(&self, v: u32, candidates: &B) -> usize {
        debug_assert_eq!(candidates.bit_capacity(), self.right_adj.row_capacity);
        kernels::and_popcount(self.right_adj.row(v as usize), candidates.words())
    }

    /// Number of *missing* neighbours of left `u` within `candidates ⊆ R`.
    #[inline]
    pub fn left_missing_in<B: Bits + ?Sized>(&self, u: u32, candidates: &B) -> usize {
        debug_assert_eq!(candidates.bit_capacity(), self.left_adj.row_capacity);
        kernels::andnot_popcount(candidates.words(), self.left_adj.row(u as usize))
    }

    /// Number of missing neighbours of right `v` within `candidates ⊆ L`.
    #[inline]
    pub fn right_missing_in<B: Bits + ?Sized>(&self, v: u32, candidates: &B) -> usize {
        debug_assert_eq!(candidates.bit_capacity(), self.right_adj.row_capacity);
        kernels::andnot_popcount(candidates.words(), self.right_adj.row(v as usize))
    }

    /// Right-side vertices adjacent to *every* left vertex in `us`, computed
    /// with one cache-blocked batched multi-row AND (`us` empty → all of R).
    pub fn common_neighbors_of_left(&self, us: &[u32]) -> BitSet {
        let mut acc = BitSet::full(self.num_right());
        let rows: Vec<&[u64]> = us.iter().map(|&u| self.left_adj.row(u as usize)).collect();
        acc.intersect_rows_count(&rows);
        acc
    }

    /// Left-side vertices adjacent to every right vertex in `vs`.
    pub fn common_neighbors_of_right(&self, vs: &[u32]) -> BitSet {
        let mut acc = BitSet::full(self.num_left());
        let rows: Vec<&[u64]> = vs.iter().map(|&v| self.right_adj.row(v as usize)).collect();
        acc.intersect_rows_count(&rows);
        acc
    }

    /// Validates that `(a, b)` is a biclique (all local indices).
    pub fn is_biclique(&self, a: &[u32], b: &[u32]) -> bool {
        a.iter().all(|&u| b.iter().all(|&v| self.has_edge(u, v)))
    }

    /// The bipartite complement (edges flipped).
    pub fn complement(&self) -> LocalGraph {
        let nl = self.num_left();
        let nr = self.num_right();
        let mut out = LocalGraph::new(nl, nr);
        for u in 0..nl {
            let mut row = BitSet::full(nr);
            row.subtract(&self.left_row(u as u32));
            for v in row.iter() {
                out.add_edge(u as u32, v as u32);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_local_graph() {
        let g = LocalGraph::new(0, 0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn add_edge_updates_both_sides() {
        let mut g = LocalGraph::new(3, 3);
        g.add_edge(1, 2);
        assert!(g.has_edge(1, 2));
        assert!(g.left_row(1).contains(2));
        assert!(g.right_row(2).contains(1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn row_refs_are_live_bitset_views() {
        let g = LocalGraph::from_edges(2, 70, [(0, 0), (0, 64), (0, 69), (1, 3)]);
        let row = g.left_row(0);
        assert_eq!(row.len(), 3);
        assert_eq!(row.iter().collect::<Vec<_>>(), vec![0, 64, 69]);
        assert_eq!(row.to_bitset().to_vec(), vec![0, 64, 69]);
        assert!(!row.is_empty());
        let mut cand = BitSet::new(70);
        cand.insert(64);
        cand.insert(5);
        assert_eq!(cand.intersection_len(&row), 1);
        let mut copy = BitSet::full(70);
        assert_eq!(copy.and_assign_count(&row), 3);
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let big = generators::uniform_edges(20, 20, 120, 3);
        let left_ids = [2u32, 5, 7, 11];
        let right_ids = [0u32, 3, 19];
        let local = LocalGraph::induced(&big, &left_ids, &right_ids);
        assert_eq!(local.num_left(), 4);
        assert_eq!(local.num_right(), 3);
        for (i, &l) in left_ids.iter().enumerate() {
            for (j, &r) in right_ids.iter().enumerate() {
                assert_eq!(
                    local.has_edge(i as u32, j as u32),
                    big.has_edge(l, r),
                    "L{l}-R{r}"
                );
            }
        }
    }

    #[test]
    fn degree_in_candidate_sets() {
        let g = LocalGraph::from_edges(2, 4, [(0, 0), (0, 1), (0, 2), (1, 3)]);
        let mut cb = BitSet::new(4);
        cb.insert(1);
        cb.insert(3);
        assert_eq!(g.left_degree_in(0, &cb), 1);
        assert_eq!(g.left_degree_in(1, &cb), 1);
        assert_eq!(g.left_missing_in(0, &cb), 1); // misses 3
        let mut ca = BitSet::new(2);
        ca.insert(0);
        ca.insert(1);
        assert_eq!(g.right_degree_in(0, &ca), 1);
        assert_eq!(g.right_missing_in(0, &ca), 1);
    }

    #[test]
    fn common_neighbors_use_batched_multi_row_and() {
        let g = LocalGraph::from_edges(
            3,
            5,
            [(0, 0), (0, 1), (0, 4), (1, 1), (1, 4), (2, 1), (2, 2)],
        );
        assert_eq!(g.common_neighbors_of_left(&[0, 1]).to_vec(), vec![1, 4]);
        assert_eq!(g.common_neighbors_of_left(&[0, 1, 2]).to_vec(), vec![1]);
        assert_eq!(g.common_neighbors_of_left(&[]).len(), 5);
        assert_eq!(g.common_neighbors_of_right(&[1, 4]).to_vec(), vec![0, 1]);
    }

    #[test]
    fn complement_involution() {
        let g = LocalGraph::from_edges(3, 3, [(0, 0), (1, 1), (2, 2), (0, 2)]);
        let cc = g.complement().complement();
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(g.has_edge(u, v), cc.has_edge(u, v));
            }
        }
    }

    #[test]
    fn complement_edge_count() {
        let g = LocalGraph::from_edges(3, 4, [(0, 0), (1, 2)]);
        let c = g.complement();
        assert_eq!(c.num_edges(), 12 - 2);
        assert!(!c.has_edge(0, 0));
        assert!(c.has_edge(0, 1));
    }

    #[test]
    fn is_biclique_checks_all_pairs() {
        let g = LocalGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0)]);
        assert!(g.is_biclique(&[0], &[0, 1]));
        assert!(!g.is_biclique(&[0, 1], &[0, 1]));
        assert!(g.is_biclique(&[], &[0, 1]));
    }

    #[test]
    fn density_matches_definition() {
        let g = LocalGraph::from_edges(2, 5, [(0, 0), (1, 1), (1, 2)]);
        assert!((g.density() - 0.3).abs() < 1e-12);
    }
}
