//! Dense bitset subgraphs for the exhaustive-search kernels.
//!
//! Every graph that reaches `basicBB` / `denseMBB` (Algorithms 1 and 3) is
//! either a dense synthetic input or a vertex-centred subgraph of size
//! ≲ δ̈(G), so a dense adjacency-bitset representation is the right trade:
//! candidate intersection (`CB ∩ N(u)`), reduction degree counts and the
//! Lemma 3 density test all become a handful of word operations per row.

use crate::bitset::BitSet;
use crate::graph::BipartiteGraph;

/// A vertex of a [`LocalGraph`]: side flag plus local index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LocalVertex {
    /// True for the left side.
    pub left: bool,
    /// Index within the side.
    pub index: u32,
}

impl LocalVertex {
    /// Left-side local vertex.
    pub fn left(index: u32) -> Self {
        LocalVertex { left: true, index }
    }

    /// Right-side local vertex.
    pub fn right(index: u32) -> Self {
        LocalVertex { left: false, index }
    }
}

/// A small bipartite graph with bitset adjacency on both sides.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    /// `left_adj[u]` = bitset over right-local indices adjacent to `u`.
    left_adj: Vec<BitSet>,
    /// `right_adj[v]` = bitset over left-local indices adjacent to `v`.
    right_adj: Vec<BitSet>,
}

impl LocalGraph {
    /// An empty graph with the given side sizes.
    pub fn new(num_left: usize, num_right: usize) -> LocalGraph {
        LocalGraph {
            left_adj: (0..num_left).map(|_| BitSet::new(num_right)).collect(),
            right_adj: (0..num_right).map(|_| BitSet::new(num_left)).collect(),
        }
    }

    /// Builds from an explicit edge list of `(left, right)` local indices.
    pub fn from_edges(
        num_left: usize,
        num_right: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> LocalGraph {
        let mut g = LocalGraph::new(num_left, num_right);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Extracts the subgraph of `graph` induced by the given original-side
    /// index lists. Local index `i` on each side corresponds to
    /// `left_ids[i]` / `right_ids[i]`.
    pub fn induced(graph: &BipartiteGraph, left_ids: &[u32], right_ids: &[u32]) -> LocalGraph {
        let mut right_map = vec![u32::MAX; graph.num_right()];
        for (i, &r) in right_ids.iter().enumerate() {
            right_map[r as usize] = i as u32;
        }
        let mut local = LocalGraph::new(left_ids.len(), right_ids.len());
        for (i, &l) in left_ids.iter().enumerate() {
            for &r in graph.neighbors_left(l) {
                let j = right_map[r as usize];
                if j != u32::MAX {
                    local.add_edge(i as u32, j);
                }
            }
        }
        local
    }

    /// Adds an edge between left `u` and right `v`.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.left_adj[u as usize].insert(v as usize);
        self.right_adj[v as usize].insert(u as usize);
    }

    /// Number of left vertices.
    #[inline]
    pub fn num_left(&self) -> usize {
        self.left_adj.len()
    }

    /// Number of right vertices.
    #[inline]
    pub fn num_right(&self) -> usize {
        self.right_adj.len()
    }

    /// Total vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_left() + self.num_right()
    }

    /// Number of edges (counted from the left rows).
    pub fn num_edges(&self) -> usize {
        self.left_adj.iter().map(|row| row.len()).sum()
    }

    /// Edge density relative to the complete bipartite graph.
    pub fn density(&self) -> f64 {
        let denom = self.num_left() as f64 * self.num_right() as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.num_edges() as f64 / denom
        }
    }

    /// Adjacency row of left vertex `u` (bitset over right indices).
    #[inline]
    pub fn left_row(&self, u: u32) -> &BitSet {
        &self.left_adj[u as usize]
    }

    /// Adjacency row of right vertex `v` (bitset over left indices).
    #[inline]
    pub fn right_row(&self, v: u32) -> &BitSet {
        &self.right_adj[v as usize]
    }

    /// Edge test.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.left_adj[u as usize].contains(v as usize)
    }

    /// Degree of left vertex `u` restricted to a right-side candidate set.
    #[inline]
    pub fn left_degree_in(&self, u: u32, candidates: &BitSet) -> usize {
        self.left_adj[u as usize].intersection_len(candidates)
    }

    /// Degree of right vertex `v` restricted to a left-side candidate set.
    #[inline]
    pub fn right_degree_in(&self, v: u32, candidates: &BitSet) -> usize {
        self.right_adj[v as usize].intersection_len(candidates)
    }

    /// Number of *missing* neighbours of left `u` within `candidates ⊆ R`.
    #[inline]
    pub fn left_missing_in(&self, u: u32, candidates: &BitSet) -> usize {
        candidates.difference_len(&self.left_adj[u as usize])
    }

    /// Number of missing neighbours of right `v` within `candidates ⊆ L`.
    #[inline]
    pub fn right_missing_in(&self, v: u32, candidates: &BitSet) -> usize {
        candidates.difference_len(&self.right_adj[v as usize])
    }

    /// Validates that `(a, b)` is a biclique (all local indices).
    pub fn is_biclique(&self, a: &[u32], b: &[u32]) -> bool {
        a.iter().all(|&u| b.iter().all(|&v| self.has_edge(u, v)))
    }

    /// The bipartite complement (edges flipped).
    pub fn complement(&self) -> LocalGraph {
        let nl = self.num_left();
        let nr = self.num_right();
        let mut out = LocalGraph::new(nl, nr);
        for u in 0..nl {
            let mut row = BitSet::full(nr);
            row.subtract(&self.left_adj[u]);
            for v in row.iter() {
                out.add_edge(u as u32, v as u32);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_local_graph() {
        let g = LocalGraph::new(0, 0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn add_edge_updates_both_sides() {
        let mut g = LocalGraph::new(3, 3);
        g.add_edge(1, 2);
        assert!(g.has_edge(1, 2));
        assert!(g.left_row(1).contains(2));
        assert!(g.right_row(2).contains(1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let big = generators::uniform_edges(20, 20, 120, 3);
        let left_ids = [2u32, 5, 7, 11];
        let right_ids = [0u32, 3, 19];
        let local = LocalGraph::induced(&big, &left_ids, &right_ids);
        assert_eq!(local.num_left(), 4);
        assert_eq!(local.num_right(), 3);
        for (i, &l) in left_ids.iter().enumerate() {
            for (j, &r) in right_ids.iter().enumerate() {
                assert_eq!(
                    local.has_edge(i as u32, j as u32),
                    big.has_edge(l, r),
                    "L{l}-R{r}"
                );
            }
        }
    }

    #[test]
    fn degree_in_candidate_sets() {
        let g = LocalGraph::from_edges(2, 4, [(0, 0), (0, 1), (0, 2), (1, 3)]);
        let mut cb = BitSet::new(4);
        cb.insert(1);
        cb.insert(3);
        assert_eq!(g.left_degree_in(0, &cb), 1);
        assert_eq!(g.left_degree_in(1, &cb), 1);
        assert_eq!(g.left_missing_in(0, &cb), 1); // misses 3
        let mut ca = BitSet::new(2);
        ca.insert(0);
        ca.insert(1);
        assert_eq!(g.right_degree_in(0, &ca), 1);
        assert_eq!(g.right_missing_in(0, &ca), 1);
    }

    #[test]
    fn complement_involution() {
        let g = LocalGraph::from_edges(3, 3, [(0, 0), (1, 1), (2, 2), (0, 2)]);
        let cc = g.complement().complement();
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(g.has_edge(u, v), cc.has_edge(u, v));
            }
        }
    }

    #[test]
    fn complement_edge_count() {
        let g = LocalGraph::from_edges(3, 4, [(0, 0), (1, 2)]);
        let c = g.complement();
        assert_eq!(c.num_edges(), 12 - 2);
        assert!(!c.has_edge(0, 0));
        assert!(c.has_edge(0, 1));
    }

    #[test]
    fn is_biclique_checks_all_pairs() {
        let g = LocalGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0)]);
        assert!(g.is_biclique(&[0], &[0, 1]));
        assert!(!g.is_biclique(&[0, 1], &[0, 1]));
        assert!(g.is_biclique(&[], &[0, 1]));
    }

    #[test]
    fn density_matches_definition() {
        let g = LocalGraph::from_edges(2, 5, [(0, 0), (1, 1), (1, 2)]);
        assert!((g.density() - 0.3).abs() < 1e-12);
    }
}
