//! Total search orders (Lemmas 6–8 of the paper).
//!
//! Vertex-centred decomposition (Definition 6) is correct for *any* total
//! order over `L ∪ R`; the order only controls how small and how dense the
//! per-vertex subgraphs are. The paper compares three:
//!
//! * **degree order** (Lemma 6) — total subgraph size `O(n · d_max²)`;
//! * **degeneracy order** (Lemma 7) — `O(n · δ(G) · d_max)`;
//! * **bidegeneracy order** (Lemma 8) — `O(n · δ̈(G))`, the winner.
//!
//! Peeling orders process the sparsest vertices first, so the "degree"
//! order here is min-degree-first — the degree-based analogue of the two
//! peel orders (the paper's `bd4` ablation).

use crate::bicore::bicore_decomposition;
use crate::core_decomp::core_decomposition;
use crate::graph::BipartiteGraph;

/// Which total search order to use for vertex-centred decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchOrder {
    /// Static min-degree-first order (Lemma 6; ablation `bd4`).
    Degree,
    /// Degeneracy (core peel) order (Lemma 7; ablation `bd5`).
    Degeneracy,
    /// Bidegeneracy (bicore peel) order (Lemma 8; the paper's choice).
    #[default]
    Bidegeneracy,
}

impl std::fmt::Display for SearchOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchOrder::Degree => write!(f, "maxDeg"),
            SearchOrder::Degeneracy => write!(f, "degeneracy"),
            SearchOrder::Bidegeneracy => write!(f, "bidegeneracy"),
        }
    }
}

/// Computes the chosen total order as a permutation of global ids.
pub fn compute_order(graph: &BipartiteGraph, order: SearchOrder) -> Vec<u32> {
    match order {
        SearchOrder::Degree => {
            let nl = graph.num_left();
            let mut ids: Vec<u32> = (0..graph.num_vertices() as u32).collect();
            let degree = |g: u32| -> usize {
                let g = g as usize;
                if g < nl {
                    graph.degree_left(g as u32)
                } else {
                    graph.degree_right((g - nl) as u32)
                }
            };
            ids.sort_by_key(|&g| (degree(g), g));
            ids
        }
        SearchOrder::Degeneracy => core_decomposition(graph).order,
        SearchOrder::Bidegeneracy => bicore_decomposition(graph).order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn every_order_is_a_permutation() {
        let g = generators::uniform_edges(20, 15, 90, 2);
        for order in [
            SearchOrder::Degree,
            SearchOrder::Degeneracy,
            SearchOrder::Bidegeneracy,
        ] {
            let o = compute_order(&g, order);
            assert_eq!(o.len(), g.num_vertices());
            let mut seen = vec![false; g.num_vertices()];
            for &v in &o {
                assert!(!seen[v as usize], "{order}: duplicate {v}");
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn degree_order_is_non_decreasing() {
        let g = generators::uniform_edges(25, 25, 150, 7);
        let nl = g.num_left();
        let o = compute_order(&g, SearchOrder::Degree);
        let degree = |g_id: u32| -> usize {
            let g_id = g_id as usize;
            if g_id < nl {
                g.degree_left(g_id as u32)
            } else {
                g.degree_right((g_id - nl) as u32)
            }
        };
        for w in o.windows(2) {
            assert!(degree(w[0]) <= degree(w[1]));
        }
    }

    #[test]
    fn display_names_match_paper_labels() {
        assert_eq!(SearchOrder::Degree.to_string(), "maxDeg");
        assert_eq!(SearchOrder::Degeneracy.to_string(), "degeneracy");
        assert_eq!(SearchOrder::Bidegeneracy.to_string(), "bidegeneracy");
    }

    #[test]
    fn default_is_bidegeneracy() {
        assert_eq!(SearchOrder::default(), SearchOrder::Bidegeneracy);
    }
}
