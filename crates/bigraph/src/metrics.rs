//! Workload characterisation metrics for bipartite graphs.
//!
//! The paper's evaluation reasons about datasets through a handful of
//! structural quantities — density, maximum degree, degeneracy `δ`,
//! bidegeneracy `δ̈`, and how the three relate (`δ̈ ≪ d_max` is what makes
//! the sparse algorithm fast). This module bundles those quantities, plus
//! degree-distribution summaries and butterfly counts, into one report so
//! the dataset explorer and the bench harness can print a consistent
//! profile per workload.

use crate::bicore::bicore_decomposition;
use crate::butterfly::count_butterflies;
use crate::core_decomp::core_decomposition;
use crate::graph::BipartiteGraph;

/// Five-number summary (plus mean) of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegreeSummary {
    /// Smallest degree.
    pub min: usize,
    /// First quartile (lower median of the lower half).
    pub q1: usize,
    /// Median degree.
    pub median: usize,
    /// Third quartile.
    pub q3: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

impl DegreeSummary {
    /// Summarises a degree sequence; all-zero for an empty side.
    pub fn of(mut degrees: Vec<usize>) -> DegreeSummary {
        if degrees.is_empty() {
            return DegreeSummary {
                min: 0,
                q1: 0,
                median: 0,
                q3: 0,
                max: 0,
                mean: 0.0,
            };
        }
        degrees.sort_unstable();
        let n = degrees.len();
        let at = |q: f64| degrees[((n - 1) as f64 * q).round() as usize];
        DegreeSummary {
            min: degrees[0],
            q1: at(0.25),
            median: at(0.5),
            q3: at(0.75),
            max: degrees[n - 1],
            mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        }
    }
}

/// A structural profile of a bipartite graph.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphProfile {
    /// `|L|`.
    pub num_left: usize,
    /// `|R|`.
    pub num_right: usize,
    /// `|E|`.
    pub num_edges: usize,
    /// `|E| / (|L|·|R|)`.
    pub density: f64,
    /// Degree summary of the left side.
    pub left_degrees: DegreeSummary,
    /// Degree summary of the right side.
    pub right_degrees: DegreeSummary,
    /// Degeneracy `δ(G)`.
    pub degeneracy: u32,
    /// Bidegeneracy `δ̈(G)` (the paper's §5.3.1 sparsity measure).
    pub bidegeneracy: u32,
    /// Number of butterflies (2×2 bicliques).
    pub butterflies: u64,
}

impl GraphProfile {
    /// Computes the full profile. Cost is dominated by the bicore
    /// decomposition and butterfly count, both `O(Σ deg²)`-ish; for
    /// million-edge graphs prefer [`GraphProfile::cheap`].
    pub fn of(graph: &BipartiteGraph) -> GraphProfile {
        let mut profile = GraphProfile::cheap(graph);
        profile.bidegeneracy = bicore_decomposition(graph).bidegeneracy;
        profile.butterflies = count_butterflies(graph);
        profile
    }

    /// The near-linear-time subset of the profile: sizes, degrees and
    /// degeneracy. `bidegeneracy` and `butterflies` are left at 0.
    pub fn cheap(graph: &BipartiteGraph) -> GraphProfile {
        let left_degrees: Vec<usize> = (0..graph.num_left() as u32)
            .map(|u| graph.degree_left(u))
            .collect();
        let right_degrees: Vec<usize> = (0..graph.num_right() as u32)
            .map(|v| graph.degree_right(v))
            .collect();
        GraphProfile {
            num_left: graph.num_left(),
            num_right: graph.num_right(),
            num_edges: graph.num_edges(),
            density: graph.density(),
            left_degrees: DegreeSummary::of(left_degrees),
            right_degrees: DegreeSummary::of(right_degrees),
            degeneracy: core_decomposition(graph).degeneracy,
            bidegeneracy: 0,
            butterflies: 0,
        }
    }

    /// Trivial upper bound on the MBB half-size: `min(δ, min-side size)`.
    /// A balanced biclique of half-size `k` is a `k`-core, so `k ≤ δ`.
    pub fn mbb_half_upper_bound(&self) -> usize {
        (self.degeneracy as usize).min(self.num_left.min(self.num_right))
    }

    /// Butterfly-based upper bound on the MBB half-size: a `k×k` biclique
    /// contains `C(k,2)²` butterflies, so `k` is bounded by the largest
    /// value with `C(k,2)² ≤ butterflies` (only meaningful after
    /// [`GraphProfile::of`]).
    pub fn butterfly_half_upper_bound(&self) -> usize {
        let mut k = 1usize;
        loop {
            let next = k + 1;
            let pairs = (next * (next - 1) / 2) as u64;
            if pairs * pairs > self.butterflies {
                return k;
            }
            k = next;
        }
    }
}

impl std::fmt::Display for GraphProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "|L| = {}, |R| = {}, |E| = {} (density {:.6})",
            self.num_left, self.num_right, self.num_edges, self.density
        )?;
        writeln!(
            f,
            "degrees: left max {} mean {:.2}, right max {} mean {:.2}",
            self.left_degrees.max,
            self.left_degrees.mean,
            self.right_degrees.max,
            self.right_degrees.mean
        )?;
        write!(
            f,
            "δ = {}, δ̈ = {}, butterflies = {}",
            self.degeneracy, self.bidegeneracy, self.butterflies
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn complete_graph_profile() {
        let g = generators::complete(4, 6);
        let p = GraphProfile::of(&g);
        assert_eq!(p.num_left, 4);
        assert_eq!(p.num_right, 6);
        assert_eq!(p.num_edges, 24);
        assert!((p.density - 1.0).abs() < 1e-12);
        assert_eq!(p.left_degrees.max, 6);
        assert_eq!(p.right_degrees.mean, 4.0);
        assert_eq!(p.degeneracy, 4);
        assert_eq!(p.butterflies, 6 * 15);
    }

    #[test]
    fn cheap_skips_expensive_fields() {
        let g = generators::complete(3, 3);
        let p = GraphProfile::cheap(&g);
        assert_eq!(p.bidegeneracy, 0);
        assert_eq!(p.butterflies, 0);
        assert_eq!(p.degeneracy, 3);
    }

    #[test]
    fn empty_graph_profile() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let p = GraphProfile::of(&g);
        assert_eq!(p.num_edges, 0);
        assert_eq!(p.left_degrees.max, 0);
        assert_eq!(p.mbb_half_upper_bound(), 0);
    }

    #[test]
    fn degree_summary_quartiles() {
        let s = DegreeSummary::of(vec![5, 1, 3, 2, 4]);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 3);
        assert_eq!(s.max, 5);
        assert_eq!(s.q1, 2);
        assert_eq!(s.q3, 4);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degree_summary_single_value() {
        let s = DegreeSummary::of(vec![7]);
        assert_eq!(s.min, 7);
        assert_eq!(s.q1, 7);
        assert_eq!(s.median, 7);
        assert_eq!(s.q3, 7);
        assert_eq!(s.max, 7);
    }

    #[test]
    fn mbb_bound_is_valid_on_random_graphs() {
        use crate::matching::maximum_vertex_biclique;
        for seed in 0..10u64 {
            let g = generators::uniform_edges(8, 8, 30, seed);
            let p = GraphProfile::of(&g);
            // The MVB total is an upper bound on 2×half; combined with the
            // degeneracy bound both must hold simultaneously.
            let mvb = maximum_vertex_biclique(&g);
            let mvb_half_bound = (mvb.0.len() + mvb.1.len()) / 2;
            let _ = mvb_half_bound; // not directly comparable; smoke only
            assert!(p.mbb_half_upper_bound() <= 8);
        }
    }

    #[test]
    fn butterfly_bound_closed_forms() {
        // k×k complete: bound is exactly k.
        for k in 2..6usize {
            let g = generators::complete(k as u32, k as u32);
            let p = GraphProfile::of(&g);
            assert_eq!(p.butterfly_half_upper_bound(), k, "k = {k}");
        }
        // Butterfly-free graph: bound is 1.
        let star = BipartiteGraph::from_edges(1, 5, (0..5).map(|v| (0, v))).unwrap();
        assert_eq!(GraphProfile::of(&star).butterfly_half_upper_bound(), 1);
    }

    #[test]
    fn display_is_renderable() {
        let g = generators::complete(2, 2);
        let text = GraphProfile::of(&g).to_string();
        assert!(text.contains("density"));
        assert!(text.contains("butterflies = 1"));
    }
}
