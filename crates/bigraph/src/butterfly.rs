//! Butterfly (2×2 biclique, C₄) counting.
//!
//! The butterfly is the bipartite analogue of the triangle: the smallest
//! non-trivial balanced biclique. Butterfly counts measure how much
//! "biclique material" a bipartite graph holds, which is why the dataset
//! explorer and the bench reports use them to characterise workloads —
//! a graph with few butterflies cannot hide a large MBB (a k×k biclique
//! contains `C(k,2)²` butterflies), giving a cheap sanity bound.
//!
//! The counting algorithm is the standard wedge-count: for every pair of
//! same-side vertices with `c` common neighbours, the pair closes
//! `C(c, 2)` butterflies. Processing wedges from the side with the
//! smaller sum of squared degrees keeps the cost at
//! `O(min(Σ_L deg², Σ_R deg²))`.

use crate::graph::BipartiteGraph;

/// Exact number of butterflies (2×2 bicliques) in `graph`.
///
/// ```
/// use mbb_bigraph::butterfly::count_butterflies;
/// use mbb_bigraph::generators;
///
/// // A complete k×k biclique has C(k,2)² butterflies: 9 for k = 3.
/// let g = generators::complete(3, 3);
/// assert_eq!(count_butterflies(&g), 9);
/// ```
pub fn count_butterflies(graph: &BipartiteGraph) -> u64 {
    // Choose the wedge side: centre vertices on the side whose squared
    // degree sum is smaller generate fewer wedges.
    let left_cost: u64 = (0..graph.num_left() as u32)
        .map(|u| {
            let d = graph.degree_left(u) as u64;
            d * d
        })
        .sum();
    let right_cost: u64 = (0..graph.num_right() as u32)
        .map(|v| {
            let d = graph.degree_right(v) as u64;
            d * d
        })
        .sum();

    if left_cost <= right_cost {
        count_via_left_centres(graph)
    } else {
        count_via_right_centres(graph)
    }
}

/// Wedges centred on left vertices: endpoints are right-vertex pairs.
fn count_via_left_centres(graph: &BipartiteGraph) -> u64 {
    let nr = graph.num_right();
    pair_common_counts(
        (0..graph.num_left() as u32).map(|u| graph.neighbors_left(u)),
        nr,
    )
}

/// Wedges centred on right vertices: endpoints are left-vertex pairs.
fn count_via_right_centres(graph: &BipartiteGraph) -> u64 {
    let nl = graph.num_left();
    pair_common_counts(
        (0..graph.num_right() as u32).map(|v| graph.neighbors_right(v)),
        nl,
    )
}

/// Accumulates `Σ_pairs C(common, 2)` over endpoint pairs: for each
/// endpoint `a` (in order), walk every wedge `a — centre — b` with
/// `b > a`, tallying common-neighbour counts in a flat table that is
/// re-zeroed via a touched list, so memory stays O(endpoints) and time
/// O(Σ_centres deg²).
fn pair_common_counts<'a>(rows: impl Iterator<Item = &'a [u32]>, endpoint_count: usize) -> u64 {
    let rows: Vec<&[u32]> = rows.collect();

    // Transpose: endpoint → centres through which its wedges run.
    let mut transpose: Vec<Vec<u32>> = vec![Vec::new(); endpoint_count];
    for (centre, row) in rows.iter().enumerate() {
        for &e in row.iter() {
            transpose[e as usize].push(centre as u32);
        }
    }

    let mut counts = vec![0u32; endpoint_count];
    let mut touched: Vec<u32> = Vec::new();
    let mut total = 0u64;
    for (a, centres) in transpose.iter().enumerate() {
        touched.clear();
        for &centre in centres {
            for &b in rows[centre as usize] {
                let b = b as usize;
                if b > a {
                    if counts[b] == 0 {
                        touched.push(b as u32);
                    }
                    counts[b] += 1;
                }
            }
        }
        for &b in &touched {
            let c = counts[b as usize] as u64;
            total += c * (c - 1) / 2;
            counts[b as usize] = 0;
        }
    }
    total
}

/// Per-vertex butterfly participation: `result[global_id(v)]` is the
/// number of butterflies containing `v`. The sum over one side equals
/// `2 ×` the total count (each butterfly has two vertices per side).
pub fn butterflies_per_vertex(graph: &BipartiteGraph) -> Vec<u64> {
    let nl = graph.num_left();
    let nr = graph.num_right();
    let mut per_vertex = vec![0u64; nl + nr];

    // For every left pair (u, w) with c common right neighbours, each of
    // the C(c,2) butterflies contains u, w and two of the common
    // neighbours. Count per left pair, attributing c−1 per common right
    // vertex (the number of butterflies on this pair through it).
    let mut counts = vec![0u32; nl];
    let mut touched: Vec<u32> = Vec::new();
    for u in 0..nl as u32 {
        touched.clear();
        for &v in graph.neighbors_left(u) {
            for &w in graph.neighbors_right(v) {
                if w > u {
                    let wi = w as usize;
                    if counts[wi] == 0 {
                        touched.push(w);
                    }
                    counts[wi] += 1;
                }
            }
        }
        for &w in &touched {
            let c = counts[w as usize] as u64;
            counts[w as usize] = 0;
            if c < 2 {
                continue;
            }
            let pair_butterflies = c * (c - 1) / 2;
            per_vertex[u as usize] += pair_butterflies;
            per_vertex[w as usize] += pair_butterflies;
            // Attribute to the common right neighbours: each appears in
            // c − 1 of the pair's butterflies.
            for &v in graph.neighbors_left(u) {
                if graph.has_edge(w, v) {
                    per_vertex[nl + v as usize] += c - 1;
                }
            }
        }
    }
    per_vertex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Vertex;

    /// O(n⁴) reference count.
    fn brute_force(graph: &BipartiteGraph) -> u64 {
        let nl = graph.num_left() as u32;
        let nr = graph.num_right() as u32;
        let mut count = 0;
        for u1 in 0..nl {
            for u2 in u1 + 1..nl {
                for v1 in 0..nr {
                    for v2 in v1 + 1..nr {
                        if graph.has_edge(u1, v1)
                            && graph.has_edge(u1, v2)
                            && graph.has_edge(u2, v1)
                            && graph.has_edge(u2, v2)
                        {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..20u64 {
            let g = generators::uniform_edges(8, 8, 28, seed);
            assert_eq!(count_butterflies(&g), brute_force(&g), "seed {seed}");
        }
    }

    #[test]
    fn asymmetric_sides_match_brute_force() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(4, 12, 26, seed ^ 0x11);
            assert_eq!(count_butterflies(&g), brute_force(&g), "seed {seed}");
            let g = generators::uniform_edges(12, 4, 26, seed ^ 0x22);
            assert_eq!(count_butterflies(&g), brute_force(&g), "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_closed_form() {
        // C(nl, 2) · C(nr, 2).
        let g = generators::complete(4, 5);
        assert_eq!(count_butterflies(&g), 6 * 10);
    }

    #[test]
    fn butterfly_free_graphs() {
        // Trees and matchings have no C4.
        let matching = BipartiteGraph::from_edges(4, 4, (0..4).map(|i| (i, i))).unwrap();
        assert_eq!(count_butterflies(&matching), 0);
        let star = BipartiteGraph::from_edges(1, 6, (0..6).map(|v| (0, v))).unwrap();
        assert_eq!(count_butterflies(&star), 0);
        let path = BipartiteGraph::from_edges(3, 2, [(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap();
        assert_eq!(count_butterflies(&path), 0);
    }

    #[test]
    fn single_butterfly() {
        let g = generators::complete(2, 2);
        assert_eq!(count_butterflies(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(count_butterflies(&g), 0);
    }

    #[test]
    fn per_vertex_sums_to_four_times_total() {
        // Each butterfly contains 2 left + 2 right vertices.
        for seed in 0..10u64 {
            let g = generators::uniform_edges(8, 8, 30, seed ^ 0x7);
            let total = count_butterflies(&g);
            let per_vertex = butterflies_per_vertex(&g);
            let sum: u64 = per_vertex.iter().sum();
            assert_eq!(sum, 4 * total, "seed {seed}");
            // Left and right halves each sum to 2 × total.
            let left_sum: u64 = per_vertex[..g.num_left()].iter().sum();
            assert_eq!(left_sum, 2 * total, "seed {seed}");
        }
    }

    #[test]
    fn per_vertex_brute_check() {
        let g = generators::uniform_edges(6, 6, 20, 9);
        let per_vertex = butterflies_per_vertex(&g);
        // Brute force per vertex.
        let nl = g.num_left() as u32;
        let nr = g.num_right() as u32;
        let mut brute = vec![0u64; (nl + nr) as usize];
        for u1 in 0..nl {
            for u2 in u1 + 1..nl {
                for v1 in 0..nr {
                    for v2 in v1 + 1..nr {
                        if g.has_edge(u1, v1)
                            && g.has_edge(u1, v2)
                            && g.has_edge(u2, v1)
                            && g.has_edge(u2, v2)
                        {
                            brute[u1 as usize] += 1;
                            brute[u2 as usize] += 1;
                            brute[(nl + v1) as usize] += 1;
                            brute[(nl + v2) as usize] += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(per_vertex, brute);
    }

    #[test]
    fn kxk_biclique_lower_bounds_butterflies() {
        // A planted k×k biclique implies ≥ C(k,2)² butterflies — the
        // sanity bound the dataset explorer reports.
        let g = generators::complete(3, 3);
        let per_vertex = butterflies_per_vertex(&g);
        assert!(per_vertex[g.global_id(Vertex::left(0))] > 0);
        assert!(count_butterflies(&g) >= 9);
    }
}
