//! Core decomposition (Batagelj–Zaversnik bucket peeling).
//!
//! Treats the bipartite graph as a general graph over global ids
//! (`L = 0..nl`, `R = nl..nl+nr`). Produces per-vertex core numbers, the
//! degeneracy `δ(G)` and the degeneracy (peel) order used by Lemma 7 and the
//! `bd5` ablation. The `k`-core extraction backs the Lemma 4 reduction: a
//! balanced biclique with half-size `k+1` is a `(k+1)`-core, so vertices
//! outside the `(|A*|+1)`-core can never improve the incumbent.

use crate::graph::BipartiteGraph;

/// Result of a core decomposition.
#[derive(Debug, Clone)]
pub struct CoreDecomposition {
    /// Core number per global vertex id.
    pub core: Vec<u32>,
    /// Global ids in peel order (non-decreasing core number); this is a
    /// degeneracy order of the graph.
    pub order: Vec<u32>,
    /// `δ(G)`: the maximum core number (0 for empty graphs).
    pub degeneracy: u32,
}

/// Runs the `O(n + m)` bucket-based core decomposition.
pub fn core_decomposition(graph: &BipartiteGraph) -> CoreDecomposition {
    let n = graph.num_vertices();
    let nl = graph.num_left();
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            order: Vec::new(),
            degeneracy: 0,
        };
    }

    let degree_of = |g: usize| -> usize {
        if g < nl {
            graph.degree_left(g as u32)
        } else {
            graph.degree_right((g - nl) as u32)
        }
    };

    let mut degree: Vec<usize> = (0..n).map(degree_of).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n]; // position of vertex in `vert`
    let mut vert = vec![0u32; n]; // vertices sorted by current degree
    for v in 0..n {
        pos[v] = bin[degree[v]];
        vert[pos[v]] = v as u32;
        bin[degree[v]] += 1;
    }
    // Restore bin starts.
    for d in (1..bin.len()).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = vert[i] as usize;
        let dv = degree[v];
        core[v] = dv as u32;
        degeneracy = degeneracy.max(core[v]);
        let neighbors: &[u32] = if v < nl {
            graph.neighbors_left(v as u32)
        } else {
            graph.neighbors_right((v - nl) as u32)
        };
        for &w_local in neighbors {
            let w = if v < nl {
                nl + w_local as usize
            } else {
                w_local as usize
            };
            if degree[w] > dv {
                // Swap w with the first vertex of its degree bucket, then
                // shrink its degree by one.
                let dw = degree[w];
                let pw = pos[w];
                let pfirst = bin[dw];
                let wfirst = vert[pfirst] as usize;
                if w != wfirst {
                    vert.swap(pw, pfirst);
                    pos[w] = pfirst;
                    pos[wfirst] = pw;
                }
                bin[dw] += 1;
                degree[w] -= 1;
            }
        }
    }

    CoreDecomposition {
        core,
        order: vert,
        degeneracy,
    }
}

/// Global-id membership mask of the `k`-core: `mask[g]` is true iff vertex
/// `g` has core number ≥ `k`.
pub fn k_core_mask(decomposition: &CoreDecomposition, k: u32) -> Vec<bool> {
    decomposition.core.iter().map(|&c| c >= k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::BipartiteGraph;

    /// Brute-force core numbers by repeated min-degree peeling per k.
    fn brute_core(graph: &BipartiteGraph) -> Vec<u32> {
        let n = graph.num_vertices();
        let nl = graph.num_left();
        let mut core = vec![0u32; n];
        for k in 1..=n as u32 {
            // Iteratively remove vertices with degree < k; survivors have
            // core >= k.
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for g in 0..n {
                    if !alive[g] {
                        continue;
                    }
                    let deg = if g < nl {
                        graph
                            .neighbors_left(g as u32)
                            .iter()
                            .filter(|&&w| alive[nl + w as usize])
                            .count()
                    } else {
                        graph
                            .neighbors_right((g - nl) as u32)
                            .iter()
                            .filter(|&&w| alive[w as usize])
                            .count()
                    };
                    if deg < k as usize {
                        alive[g] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for g in 0..n {
                if alive[g] {
                    core[g] = k;
                }
            }
            if alive.iter().all(|&a| !a) {
                break;
            }
        }
        core
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0)]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.core[1], 0);
        assert_eq!(d.core[0], 1);
        assert_eq!(d.core[3], 1); // R0 global id = 3
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn complete_bipartite_core() {
        let g = generators::complete(4, 6);
        let d = core_decomposition(&g);
        // K(4,6): every left vertex has degree 6, right degree 4; the
        // whole graph is a 4-core.
        assert_eq!(d.degeneracy, 4);
        for u in 0..4 {
            assert_eq!(d.core[u], 4);
        }
        for v in 4..10 {
            assert_eq!(d.core[v], 4);
        }
    }

    #[test]
    fn star_has_core_one() {
        let g = BipartiteGraph::from_edges(1, 5, (0..5).map(|v| (0, v))).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn path_has_core_one() {
        // L0-R0, R0-L1, L1-R1: a path of length 3.
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn cycle_has_core_two() {
        // 4-cycle: L0-R0, R0-L1, L1-R1, R1-L0.
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 0), (1, 1), (0, 1)]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 2);
        assert!(d.core.iter().all(|&c| c == 2));
    }

    #[test]
    fn peel_order_contains_every_vertex_once() {
        let g = generators::uniform_edges(30, 30, 200, 9);
        let d = core_decomposition(&g);
        let mut seen = vec![false; g.num_vertices()];
        for &v in &d.order {
            assert!(!seen[v as usize], "duplicate {v}");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::uniform_edges(12, 10, 40, seed);
            let fast = core_decomposition(&g);
            let brute = brute_core(&g);
            assert_eq!(fast.core, brute, "seed {seed}");
        }
    }

    #[test]
    fn degeneracy_is_max_core() {
        let g = generators::uniform_edges(40, 40, 300, 4);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, d.core.iter().copied().max().unwrap());
    }

    #[test]
    fn k_core_mask_matches_core_numbers() {
        let g = generators::uniform_edges(20, 20, 100, 2);
        let d = core_decomposition(&g);
        let mask = k_core_mask(&d, 2);
        for (g_id, &m) in mask.iter().enumerate() {
            assert_eq!(m, d.core[g_id] >= 2);
        }
    }

    #[test]
    fn order_is_valid_degeneracy_order() {
        // In a degeneracy order, each vertex's later-neighbour count is at
        // most the degeneracy.
        let g = generators::uniform_edges(25, 25, 180, 13);
        let d = core_decomposition(&g);
        let nl = g.num_left();
        let mut rank = vec![0usize; g.num_vertices()];
        for (i, &v) in d.order.iter().enumerate() {
            rank[v as usize] = i;
        }
        for (i, &v) in d.order.iter().enumerate() {
            let v = v as usize;
            let later = if v < nl {
                g.neighbors_left(v as u32)
                    .iter()
                    .filter(|&&w| rank[nl + w as usize] > i)
                    .count()
            } else {
                g.neighbors_right((v - nl) as u32)
                    .iter()
                    .filter(|&&w| rank[w as usize] > i)
                    .count()
            };
            assert!(
                later <= d.degeneracy as usize,
                "vertex {v} has {later} later neighbours > degeneracy {}",
                d.degeneracy
            );
        }
    }
}
