//! 2-hop neighbourhoods (`N2`, `N≤2` — Definitions 1 and 2).
//!
//! For a vertex `u` of a bipartite graph, `N2(u)` is the set of vertices at
//! distance exactly 2 — necessarily on the *same* side as `u` — and
//! `N≤2(u) = N(u) ∪ N2(u)`. Observation 4 of the paper: every biclique
//! containing `u` lives inside `{u} ∪ N≤2(u)`, which is what makes
//! vertex-centred subgraphs (Definition 6) a complete search decomposition.

use crate::graph::{BipartiteGraph, Side, Vertex};

/// Computes `N2(v)`: same-side vertices at distance exactly 2, sorted,
/// excluding `v` itself.
pub fn n2_neighbors(graph: &BipartiteGraph, v: Vertex) -> Vec<u32> {
    let same_side_count = match v.side {
        Side::Left => graph.num_left(),
        Side::Right => graph.num_right(),
    };
    let mut mark = vec![false; same_side_count];
    for &mid in graph.neighbors(v) {
        let mid_vertex = Vertex {
            side: v.side.opposite(),
            index: mid,
        };
        for &w in graph.neighbors(mid_vertex) {
            mark[w as usize] = true;
        }
    }
    mark[v.index as usize] = false;
    mark.iter()
        .enumerate()
        .filter_map(|(i, &m)| m.then_some(i as u32))
        .collect()
}

/// `|N≤2(v)| = |N(v)| + |N2(v)|` (the two parts are disjoint: one is on the
/// opposite side, the other on the same side).
pub fn n_le2_size(graph: &BipartiteGraph, v: Vertex) -> usize {
    graph.degree(v) + n2_neighbors(graph, v).len()
}

/// `|N≤2|` for every vertex, indexed by global id, sharing scratch space.
///
/// Cost is `O(Σ_v deg(v)²)`, the same bound as Lemma 9's
/// `O(Σ |N≤2(v)|)` up to the multiplicity of common neighbours.
pub fn all_n_le2_sizes(graph: &BipartiteGraph) -> Vec<usize> {
    let nl = graph.num_left();
    let nr = graph.num_right();
    let mut sizes = vec![0usize; nl + nr];

    let mut mark = vec![false; nl.max(nr)];
    let mut touched: Vec<u32> = Vec::new();
    for v in graph.vertices() {
        touched.clear();
        for &mid in graph.neighbors(v) {
            let mid_vertex = Vertex {
                side: v.side.opposite(),
                index: mid,
            };
            for &w in graph.neighbors(mid_vertex) {
                if !mark[w as usize] {
                    mark[w as usize] = true;
                    touched.push(w);
                }
            }
        }
        let mut n2 = touched.len();
        if mark[v.index as usize] {
            n2 -= 1; // exclude v itself
        }
        sizes[graph.global_id(v)] = graph.degree(v) + n2;
        for &w in &touched {
            mark[w as usize] = false;
        }
    }
    sizes
}

/// The full `N≤2(v)` as a pair `(opposite-side neighbours, same-side 2-hop
/// neighbours)`, both sorted.
pub fn n_le2(graph: &BipartiteGraph, v: Vertex) -> (Vec<u32>, Vec<u32>) {
    (graph.neighbors(v).to_vec(), n2_neighbors(graph, v))
}

/// A materialised two-hop index: every vertex's `N2` list in one CSR-shaped
/// structure, indexed by global id.
///
/// Anchored queries and repeated vertex-centred decompositions recompute
/// `N2(v)` from scratch per vertex; a session answering many such queries
/// against one graph amortises that into a single `O(Σ deg(v)²)` build.
/// Memory is `O(Σ |N2(v)|)`, which approaches `n²` on dense graphs — build
/// it lazily and only for workloads that query many anchors.
#[derive(Debug, Clone)]
pub struct TwoHopIndex {
    /// `offsets[g] .. offsets[g + 1]` delimits global id `g`'s `N2` list.
    offsets: Vec<usize>,
    /// Concatenated sorted same-side `N2` lists.
    data: Vec<u32>,
}

impl TwoHopIndex {
    /// Builds the index for every vertex of `graph`.
    pub fn build(graph: &BipartiteGraph) -> TwoHopIndex {
        let n = graph.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::new();
        offsets.push(0);
        for v in graph.vertices() {
            data.extend(n2_neighbors(graph, v));
            offsets.push(data.len());
        }
        TwoHopIndex { offsets, data }
    }

    /// The cached `N2(v)` (same-side indices, sorted, excluding `v`).
    pub fn two_hop(&self, graph: &BipartiteGraph, v: Vertex) -> &[u32] {
        let g = graph.global_id(v);
        &self.data[self.offsets[g]..self.offsets[g + 1]]
    }

    /// The cached `N≤2(v)` as `(opposite-side neighbours, same-side 2-hop
    /// neighbours)` — the zero-allocation analogue of [`n_le2`].
    pub fn n_le2<'a>(&'a self, graph: &'a BipartiteGraph, v: Vertex) -> (&'a [u32], &'a [u32]) {
        (graph.neighbors(v), self.two_hop(graph, v))
    }

    /// Total stored `N2` entries (an index size gauge).
    pub fn entries(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::BipartiteGraph;

    fn path_graph() -> BipartiteGraph {
        // L0-R0, L1-R0, L1-R1, L2-R1 : a path L0 R0 L1 R1 L2.
        BipartiteGraph::from_edges(3, 2, [(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap()
    }

    #[test]
    fn n2_on_a_path() {
        let g = path_graph();
        assert_eq!(n2_neighbors(&g, Vertex::left(0)), vec![1]);
        assert_eq!(n2_neighbors(&g, Vertex::left(1)), vec![0, 2]);
        assert_eq!(n2_neighbors(&g, Vertex::right(0)), vec![1]);
    }

    #[test]
    fn n2_excludes_self() {
        let g = generators::complete(4, 4);
        let n2 = n2_neighbors(&g, Vertex::left(2));
        assert_eq!(n2, vec![0, 1, 3]);
    }

    #[test]
    fn n_le2_size_on_complete_graph() {
        let g = generators::complete(3, 5);
        // Left vertex: 5 neighbours + 2 same-side = 7.
        assert_eq!(n_le2_size(&g, Vertex::left(0)), 7);
        // Right vertex: 3 neighbours + 4 same-side = 7.
        assert_eq!(n_le2_size(&g, Vertex::right(4)), 7);
    }

    #[test]
    fn isolated_vertex_has_empty_n_le2() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0)]).unwrap();
        assert_eq!(n_le2_size(&g, Vertex::left(1)), 0);
        assert_eq!(n2_neighbors(&g, Vertex::left(1)), Vec::<u32>::new());
    }

    #[test]
    fn all_sizes_agree_with_single_vertex_queries() {
        let g = generators::uniform_edges(20, 15, 80, 3);
        let all = all_n_le2_sizes(&g);
        for v in g.vertices() {
            assert_eq!(all[g.global_id(v)], n_le2_size(&g, v), "vertex {v}");
        }
    }

    #[test]
    fn n2_is_symmetric() {
        let g = generators::uniform_edges(15, 15, 60, 7);
        for u in 0..15u32 {
            for w in n2_neighbors(&g, Vertex::left(u)) {
                let back = n2_neighbors(&g, Vertex::left(w));
                assert!(back.contains(&u), "L{u} ∈ N2(L{w}) missing");
            }
        }
    }

    #[test]
    fn index_matches_per_vertex_queries() {
        let g = generators::uniform_edges(12, 14, 60, 9);
        let index = TwoHopIndex::build(&g);
        for v in g.vertices() {
            assert_eq!(index.two_hop(&g, v), n2_neighbors(&g, v), "vertex {v}");
            let (n1, n2) = index.n_le2(&g, v);
            let (e1, e2) = n_le2(&g, v);
            assert_eq!(n1, e1);
            assert_eq!(n2, e2);
        }
        assert_eq!(
            index.entries(),
            g.vertices()
                .map(|v| n2_neighbors(&g, v).len())
                .sum::<usize>()
        );
    }

    #[test]
    fn n_le2_parts_are_disjoint_sides() {
        let g = generators::uniform_edges(10, 12, 50, 1);
        let (n1, n2) = n_le2(&g, Vertex::left(0));
        assert_eq!(n1, g.neighbors_left(0));
        // n2 indices are left-side; no overlap by construction.
        for w in n2 {
            assert!(w < 10);
            assert_ne!(w, 0);
        }
    }
}
