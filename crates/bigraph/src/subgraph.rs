//! Induced subgraphs with original-id maps.
//!
//! Reductions (Lemma 4) and vertex-centred decomposition both shrink the
//! working graph while results must be reported in original vertex ids, so
//! every extraction carries `left_ids` / `right_ids` translation tables.

use crate::graph::{BipartiteGraph, Builder};

/// An induced subgraph plus the maps from its local indices back to the
/// indices of the parent graph.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The induced graph.
    pub graph: BipartiteGraph,
    /// `left_ids[i]` = parent left index of local left vertex `i` (sorted).
    pub left_ids: Vec<u32>,
    /// `right_ids[j]` = parent right index of local right vertex `j`.
    pub right_ids: Vec<u32>,
}

impl InducedSubgraph {
    /// Translates a local-left index to the parent index.
    #[inline]
    pub fn parent_left(&self, local: u32) -> u32 {
        self.left_ids[local as usize]
    }

    /// Translates a local-right index to the parent index.
    #[inline]
    pub fn parent_right(&self, local: u32) -> u32 {
        self.right_ids[local as usize]
    }

    /// The identity embedding of a graph into itself.
    pub fn identity(graph: &BipartiteGraph) -> InducedSubgraph {
        InducedSubgraph {
            left_ids: (0..graph.num_left() as u32).collect(),
            right_ids: (0..graph.num_right() as u32).collect(),
            graph: graph.clone(),
        }
    }
}

/// Extracts the subgraph induced by boolean keep-masks over each side.
pub fn induce_by_mask(
    graph: &BipartiteGraph,
    keep_left: &[bool],
    keep_right: &[bool],
) -> InducedSubgraph {
    debug_assert_eq!(keep_left.len(), graph.num_left());
    debug_assert_eq!(keep_right.len(), graph.num_right());
    let left_ids: Vec<u32> = (0..graph.num_left() as u32)
        .filter(|&u| keep_left[u as usize])
        .collect();
    let right_ids: Vec<u32> = (0..graph.num_right() as u32)
        .filter(|&v| keep_right[v as usize])
        .collect();
    induce_by_ids(graph, left_ids, right_ids)
}

/// Extracts the subgraph induced by explicit (sorted or unsorted) id lists.
pub fn induce_by_ids(
    graph: &BipartiteGraph,
    mut left_ids: Vec<u32>,
    mut right_ids: Vec<u32>,
) -> InducedSubgraph {
    left_ids.sort_unstable();
    left_ids.dedup();
    right_ids.sort_unstable();
    right_ids.dedup();

    let mut right_map = vec![u32::MAX; graph.num_right()];
    for (j, &r) in right_ids.iter().enumerate() {
        right_map[r as usize] = j as u32;
    }
    let mut builder = Builder::new(left_ids.len() as u32, right_ids.len() as u32);
    for (i, &l) in left_ids.iter().enumerate() {
        for &r in graph.neighbors_left(l) {
            let j = right_map[r as usize];
            if j != u32::MAX {
                builder.add_edge(i as u32, j).expect("mapped ids in range");
            }
        }
    }
    InducedSubgraph {
        graph: builder.build(),
        left_ids,
        right_ids,
    }
}

/// Projects a total search order of a parent graph onto an induced
/// subgraph: the subgraph's global ids, sorted by their parent's rank.
///
/// Vertex-centred decomposition is correct under *any* total order, so a
/// session that cached an order for the full graph can restrict it to a
/// reduced residual instead of recomputing a peel order from scratch —
/// the index-reuse hook behind `MbbEngine`.
///
/// `parent_rank[g]` is the position of parent global id `g` in the parent
/// order; `parent_num_left` is the parent's left-side size (global ids are
/// left-then-right).
pub fn project_order(
    parent_rank: &[u32],
    parent_num_left: usize,
    sub: &InducedSubgraph,
) -> Vec<u32> {
    let nl = sub.graph.num_left();
    let mut ids: Vec<u32> = (0..sub.graph.num_vertices() as u32).collect();
    ids.sort_by_key(|&g| {
        let g = g as usize;
        let parent_global = if g < nl {
            sub.left_ids[g] as usize
        } else {
            parent_num_left + sub.right_ids[g - nl] as usize
        };
        parent_rank[parent_global]
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn identity_preserves_everything() {
        let g = generators::uniform_edges(10, 10, 40, 1);
        let s = InducedSubgraph::identity(&g);
        assert_eq!(s.graph.num_edges(), g.num_edges());
        assert_eq!(s.parent_left(3), 3);
        assert_eq!(s.parent_right(7), 7);
    }

    #[test]
    fn mask_induction_keeps_internal_edges_only() {
        let g = generators::uniform_edges(12, 12, 70, 2);
        let keep_left: Vec<bool> = (0..12).map(|u| u % 2 == 0).collect();
        let keep_right: Vec<bool> = (0..12).map(|v| v < 6).collect();
        let s = induce_by_mask(&g, &keep_left, &keep_right);
        assert_eq!(s.left_ids, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(s.right_ids, vec![0, 1, 2, 3, 4, 5]);
        for (i, &l) in s.left_ids.iter().enumerate() {
            for (j, &r) in s.right_ids.iter().enumerate() {
                assert_eq!(s.graph.has_edge(i as u32, j as u32), g.has_edge(l, r));
            }
        }
    }

    #[test]
    fn id_induction_sorts_and_dedups() {
        let g = generators::uniform_edges(8, 8, 30, 3);
        let s = induce_by_ids(&g, vec![5, 1, 5, 3], vec![7, 0]);
        assert_eq!(s.left_ids, vec![1, 3, 5]);
        assert_eq!(s.right_ids, vec![0, 7]);
    }

    #[test]
    fn empty_induction() {
        let g = generators::uniform_edges(5, 5, 10, 4);
        let s = induce_by_ids(&g, vec![], vec![]);
        assert_eq!(s.graph.num_vertices(), 0);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn projected_order_is_a_rank_sorted_permutation() {
        let g = generators::uniform_edges(10, 10, 45, 6);
        // Parent order: reversed global ids.
        let n = g.num_vertices();
        let parent_order: Vec<u32> = (0..n as u32).rev().collect();
        let mut parent_rank = vec![0u32; n];
        for (i, &gid) in parent_order.iter().enumerate() {
            parent_rank[gid as usize] = i as u32;
        }
        let s = induce_by_ids(&g, vec![1, 4, 7], vec![0, 2, 9]);
        let projected = project_order(&parent_rank, g.num_left(), &s);
        assert_eq!(projected.len(), s.graph.num_vertices());
        // Permutation of the subgraph's global ids.
        let mut sorted = projected.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..s.graph.num_vertices() as u32).collect::<Vec<_>>()
        );
        // Ranks strictly decrease in the parent order's reversal.
        let parent_global = |g: u32| {
            let g = g as usize;
            if g < s.graph.num_left() {
                s.left_ids[g] as usize
            } else {
                10 + s.right_ids[g - s.graph.num_left()] as usize
            }
        };
        for w in projected.windows(2) {
            assert!(parent_rank[parent_global(w[0])] < parent_rank[parent_global(w[1])]);
        }
    }
}
