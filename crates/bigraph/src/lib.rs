//! Bipartite-graph substrate for maximum balanced biclique (MBB) search.
//!
//! This crate provides every graph-side building block the MBB paper
//! ("Efficient Exact Algorithms for Maximum Balanced Biclique Search in
//! Bipartite Graphs", Chen et al.) relies on:
//!
//! * [`graph::BipartiteGraph`] — immutable CSR bipartite graphs;
//! * [`bitset::BitSet`] / [`local::LocalGraph`] — dense bitset subgraphs for
//!   the exhaustive-search kernels;
//! * [`core_decomp`] — core numbers, degeneracy `δ(G)`, degeneracy order;
//! * [`two_hop`] / [`bicore`] — `N≤2` neighbourhoods, bicore numbers and the
//!   bidegeneracy `δ̈(G)` (the paper's novel sparsity measure, §5.3.1);
//! * [`order`] — the three total search orders of Lemmas 6–8;
//! * [`complement`] — path/cycle decomposition of near-complete subgraphs
//!   (Observation 1, feeding the polynomial solver);
//! * [`generators`] / [`io`] — seeded workloads and KONECT edge-list I/O;
//! * [`matching`] — Hopcroft–Karp / König / maximum vertex biclique, used as
//!   a polynomial oracle in tests.
//!
//! # Example
//!
//! ```
//! use mbb_bigraph::graph::BipartiteGraph;
//! use mbb_bigraph::bicore::bicore_decomposition;
//!
//! let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])?;
//! let d = bicore_decomposition(&g);
//! assert_eq!(d.bidegeneracy, 3); // each vertex sees 2 + 1 others
//! # Ok::<(), mbb_bigraph::graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod bicore;
pub mod bitset;
pub mod butterfly;
pub mod complement;
pub mod components;
pub mod core_decomp;
pub mod generators;
pub mod graph;
pub mod io;
pub mod kernels;
pub mod local;
pub mod matching;
pub mod metrics;
pub mod order;
pub mod projection;
pub mod subgraph;
pub mod two_hop;

pub use bitset::{BitSet, Bits};
pub use graph::{BipartiteGraph, Side, Vertex};
pub use local::{LocalGraph, LocalVertex, RowRef};
