//! Maximum matching, minimum vertex cover and the maximum *vertex* biclique.
//!
//! Related-work substrate (§7 of the paper): the MVB problem — maximise
//! `|A| + |B|` over bicliques without the balance constraint — is polynomial
//! via König's theorem on the bipartite *complement*: a biclique of `G` is
//! an independent set of `Ḡ`, and a maximum independent set is the
//! complement of a minimum vertex cover, which equals a maximum matching.
//!
//! The repo uses MVB as a correctness oracle: for any balanced biclique of
//! half-size `k`, `2k ≤ MVB_total`.

use std::collections::VecDeque;

use crate::graph::BipartiteGraph;

/// A maximum matching of a bipartite graph.
#[derive(Debug, Clone)]
pub struct Matching {
    /// `pair_left[u]` = matched right vertex of `u`, or `u32::MAX`.
    pub pair_left: Vec<u32>,
    /// `pair_right[v]` = matched left vertex of `v`, or `u32::MAX`.
    pub pair_right: Vec<u32>,
    /// Number of matched pairs.
    pub size: usize,
}

const UNMATCHED: u32 = u32::MAX;

/// Hopcroft–Karp maximum matching in `O(E √V)`.
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    let nl = graph.num_left();
    let mut pair_left = vec![UNMATCHED; nl];
    let mut pair_right = vec![UNMATCHED; graph.num_right()];
    let mut dist = vec![u32::MAX; nl];
    let mut size = 0usize;

    loop {
        // BFS layering from free left vertices.
        let mut queue = VecDeque::new();
        for u in 0..nl {
            if pair_left[u] == UNMATCHED {
                dist[u] = 0;
                queue.push_back(u as u32);
            } else {
                dist[u] = u32::MAX;
            }
        }
        let mut found_augmenting_layer = false;
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors_left(u) {
                let w = pair_right[v as usize];
                if w == UNMATCHED {
                    found_augmenting_layer = true;
                } else if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }

        // Layered DFS augmentation.
        fn try_augment(
            u: u32,
            graph: &BipartiteGraph,
            pair_left: &mut [u32],
            pair_right: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            for &v in graph.neighbors_left(u) {
                let w = pair_right[v as usize];
                let extendable = w == UNMATCHED
                    || (dist[w as usize] == dist[u as usize] + 1
                        && try_augment(w, graph, pair_left, pair_right, dist));
                if extendable {
                    pair_left[u as usize] = v;
                    pair_right[v as usize] = u;
                    return true;
                }
            }
            dist[u as usize] = u32::MAX;
            false
        }

        for u in 0..nl as u32 {
            if pair_left[u as usize] == UNMATCHED
                && try_augment(u, graph, &mut pair_left, &mut pair_right, &mut dist)
            {
                size += 1;
            }
        }
    }

    Matching {
        pair_left,
        pair_right,
        size,
    }
}

/// König minimum vertex cover from a maximum matching.
///
/// Returns `(left_in_cover, right_in_cover)` boolean masks; the cover size
/// equals the matching size.
pub fn minimum_vertex_cover(graph: &BipartiteGraph, matching: &Matching) -> (Vec<bool>, Vec<bool>) {
    let nl = graph.num_left();
    let nr = graph.num_right();
    // Z = free left vertices plus everything reachable by alternating paths
    // (unmatched edge left→right, matched edge right→left).
    let mut z_left = vec![false; nl];
    let mut z_right = vec![false; nr];
    let mut queue: VecDeque<u32> = VecDeque::new();
    #[allow(clippy::needless_range_loop)] // `u` indexes matching and mask arrays
    for u in 0..nl {
        if matching.pair_left[u] == UNMATCHED {
            z_left[u] = true;
            queue.push_back(u as u32);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors_left(u) {
            if matching.pair_left[u as usize] == v {
                continue; // must leave L via a non-matching edge
            }
            if !z_right[v as usize] {
                z_right[v as usize] = true;
                let w = matching.pair_right[v as usize];
                if w != UNMATCHED && !z_left[w as usize] {
                    z_left[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    // Cover = (L \ Z) ∪ (R ∩ Z).
    let left_cover: Vec<bool> = z_left.iter().map(|&z| !z).collect();
    let right_cover = z_right;
    (left_cover, right_cover)
}

/// Maximum **vertex** biclique of `graph`: a biclique `(A, B)` maximising
/// `|A| + |B|` with no balance constraint.
///
/// Computed as the maximum independent set of the bipartite complement
/// (König). Builds the complement explicitly — `O(|L|·|R|)` — so intended
/// for small/medium graphs (oracle use).
///
/// ```
/// use mbb_bigraph::{generators::complete, matching::maximum_vertex_biclique};
/// let (a, b) = maximum_vertex_biclique(&complete(2, 6));
/// assert_eq!(a.len() + b.len(), 8);
/// ```
pub fn maximum_vertex_biclique(graph: &BipartiteGraph) -> (Vec<u32>, Vec<u32>) {
    let nl = graph.num_left() as u32;
    let nr = graph.num_right() as u32;
    let mut complement_edges = Vec::new();
    for u in 0..nl {
        let adj = graph.neighbors_left(u);
        let mut k = 0usize;
        for v in 0..nr {
            if k < adj.len() && adj[k] == v {
                k += 1;
            } else {
                complement_edges.push((u, v));
            }
        }
    }
    let complement = BipartiteGraph::from_edges(nl, nr, complement_edges)
        .expect("complement endpoints in range");
    let matching = hopcroft_karp(&complement);
    let (left_cover, right_cover) = minimum_vertex_cover(&complement, &matching);
    let a: Vec<u32> = (0..nl).filter(|&u| !left_cover[u as usize]).collect();
    let b: Vec<u32> = (0..nr).filter(|&v| !right_cover[v as usize]).collect();
    debug_assert!(graph.is_biclique(&a, &b));
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::BipartiteGraph;

    /// Brute-force maximum matching by augmenting-path (Kuhn) for cross-check.
    fn kuhn_matching_size(graph: &BipartiteGraph) -> usize {
        let nl = graph.num_left();
        let nr = graph.num_right();
        let mut pair_right = vec![UNMATCHED; nr];
        fn dfs(u: u32, graph: &BipartiteGraph, seen: &mut [bool], pair_right: &mut [u32]) -> bool {
            for &v in graph.neighbors_left(u) {
                if seen[v as usize] {
                    continue;
                }
                seen[v as usize] = true;
                if pair_right[v as usize] == UNMATCHED
                    || dfs(pair_right[v as usize], graph, seen, pair_right)
                {
                    pair_right[v as usize] = u;
                    return true;
                }
            }
            false
        }
        let mut size = 0;
        for u in 0..nl as u32 {
            let mut seen = vec![false; nr];
            if dfs(u, graph, &mut seen, &mut pair_right) {
                size += 1;
            }
        }
        size
    }

    #[test]
    fn empty_graph_matching() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(hopcroft_karp(&g).size, 0);
    }

    #[test]
    fn perfect_matching_on_complete_graph() {
        let g = generators::complete(5, 5);
        assert_eq!(hopcroft_karp(&g).size, 5);
    }

    #[test]
    fn unbalanced_complete_graph() {
        let g = generators::complete(3, 7);
        assert_eq!(hopcroft_karp(&g).size, 3);
    }

    #[test]
    fn matching_is_consistent() {
        let g = generators::uniform_edges(20, 20, 100, 5);
        let m = hopcroft_karp(&g);
        let mut count = 0;
        for u in 0..20u32 {
            let v = m.pair_left[u as usize];
            if v != UNMATCHED {
                assert_eq!(m.pair_right[v as usize], u);
                assert!(g.has_edge(u, v));
                count += 1;
            }
        }
        assert_eq!(count, m.size);
    }

    #[test]
    fn agrees_with_kuhn_on_random_graphs() {
        for seed in 0..10 {
            let g = generators::uniform_edges(15, 12, 50, seed);
            assert_eq!(
                hopcroft_karp(&g).size,
                kuhn_matching_size(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn vertex_cover_covers_every_edge() {
        for seed in 0..8 {
            let g = generators::uniform_edges(12, 14, 45, seed);
            let m = hopcroft_karp(&g);
            let (lc, rc) = minimum_vertex_cover(&g, &m);
            for (u, v) in g.edges() {
                assert!(
                    lc[u as usize] || rc[v as usize],
                    "edge ({u},{v}) uncovered, seed {seed}"
                );
            }
            let cover_size = lc.iter().filter(|&&c| c).count() + rc.iter().filter(|&&c| c).count();
            assert_eq!(cover_size, m.size, "König size mismatch, seed {seed}");
        }
    }

    #[test]
    fn mvb_on_complete_graph_is_everything() {
        let g = generators::complete(4, 6);
        let (a, b) = maximum_vertex_biclique(&g);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn mvb_is_a_biclique_and_large() {
        for seed in 0..6 {
            let g = generators::uniform_edges(10, 10, 60, seed);
            let (a, b) = maximum_vertex_biclique(&g);
            assert!(g.is_biclique(&a, &b), "seed {seed}");
            // At least one side fully selectable: a single vertex plus all
            // its neighbours is always a biclique.
            let best_star = (0..10u32).map(|u| 1 + g.degree_left(u)).max().unwrap_or(0);
            assert!(a.len() + b.len() >= best_star, "seed {seed}");
        }
    }

    #[test]
    fn mvb_on_edgeless_graph_takes_all_vertices() {
        // No edges: complement is complete; biclique with one side empty.
        let g = BipartiteGraph::from_edges(3, 4, []).unwrap();
        let (a, b) = maximum_vertex_biclique(&g);
        assert_eq!(a.len() + b.len(), 4, "larger side wins: {a:?} {b:?}");
    }
}
