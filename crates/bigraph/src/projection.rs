//! One-mode projection of a bipartite graph.
//!
//! The projection onto a side connects two same-side vertices with weight
//! = their number of common neighbours. It is the bipartite analyst's
//! bridge to unipartite tooling, and inside this workspace it gives a
//! cheap certificate language: a balanced biclique of half-size `k` is a
//! `k`-clique in the left projection restricted to weights ≥ `k`, so
//! projection statistics bound the MBB from above.

use crate::graph::{BipartiteGraph, Side};

/// A weighted undirected graph over one side of a bipartite graph,
/// stored as a sorted flat edge list (`u < v`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// Number of vertices (the projected side's size).
    pub num_vertices: usize,
    /// `(u, v, weight)` triples with `u < v`, sorted lexicographically;
    /// `weight` = number of common neighbours in the bipartite graph.
    pub edges: Vec<(u32, u32, u32)>,
    /// Whether the underlying bipartite graph had any edge at all (a
    /// perfect matching projects to nothing yet still has MBB half 1).
    pub has_bipartite_edge: bool,
}

impl Projection {
    /// Number of projected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight of the pair `(u, v)` (0 when not adjacent).
    pub fn weight(&self, u: u32, v: u32) -> u32 {
        let key = (u.min(v), u.max(v));
        self.edges
            .binary_search_by_key(&key, |&(a, b, _)| (a, b))
            .map(|i| self.edges[i].2)
            .unwrap_or(0)
    }

    /// Weighted degree (sum of incident edge weights) per vertex.
    pub fn weighted_degrees(&self) -> Vec<u64> {
        let mut degrees = vec![0u64; self.num_vertices];
        for &(u, v, w) in &self.edges {
            degrees[u as usize] += w as u64;
            degrees[v as usize] += w as u64;
        }
        degrees
    }

    /// The number of vertex pairs with weight ≥ `threshold` — the edge
    /// count of the thresholded projection. A balanced biclique of
    /// half-size `k` needs `C(k,2)` pairs of weight ≥ `k` on each side,
    /// so `pairs_with_weight_at_least(k) < C(k,2)` refutes half-size `k`.
    pub fn pairs_with_weight_at_least(&self, threshold: u32) -> usize {
        self.edges
            .iter()
            .filter(|&&(_, _, w)| w >= threshold)
            .count()
    }

    /// Upper bound on the MBB half-size from this projection: the largest
    /// `k ≥ 2` with at least `C(k,2)` pairs of weight ≥ `k`, falling back
    /// to 1 when the bipartite graph has an edge and 0 otherwise.
    pub fn mbb_half_upper_bound(&self) -> usize {
        let mut k = self.num_vertices;
        while k >= 2 {
            let needed = k * (k - 1) / 2;
            if self.pairs_with_weight_at_least(k as u32) >= needed {
                return k;
            }
            k -= 1;
        }
        usize::from(self.has_bipartite_edge)
    }
}

/// Projects `graph` onto the given side. Cost is `O(Σ_other deg²)` (one
/// pair-count pass over the opposite side's adjacency rows).
///
/// ```
/// use mbb_bigraph::generators::complete;
/// use mbb_bigraph::graph::Side;
/// use mbb_bigraph::projection::project;
///
/// let g = complete(3, 4);
/// let p = project(&g, Side::Left);
/// assert_eq!(p.num_edges(), 3); // the 3 left pairs
/// assert_eq!(p.weight(0, 2), 4); // sharing all 4 right vertices
/// ```
pub fn project(graph: &BipartiteGraph, side: Side) -> Projection {
    let (num_vertices, centre_count) = match side {
        Side::Left => (graph.num_left(), graph.num_right()),
        Side::Right => (graph.num_right(), graph.num_left()),
    };
    let row = |c: u32| match side {
        Side::Left => graph.neighbors_right(c),
        Side::Right => graph.neighbors_left(c),
    };

    // counts[v] = common neighbours of the current anchor u and v; reset
    // per anchor via a touched list.
    let mut transpose: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
    for c in 0..centre_count as u32 {
        for &e in row(c) {
            transpose[e as usize].push(c);
        }
    }
    let mut counts = vec![0u32; num_vertices];
    let mut touched: Vec<u32> = Vec::new();
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for (u, centres) in transpose.iter().enumerate() {
        touched.clear();
        for &c in centres {
            for &v in row(c) {
                let vi = v as usize;
                if vi > u {
                    if counts[vi] == 0 {
                        touched.push(v);
                    }
                    counts[vi] += 1;
                }
            }
        }
        touched.sort_unstable();
        for &v in &touched {
            edges.push((u as u32, v, counts[v as usize]));
            counts[v as usize] = 0;
        }
    }
    Projection {
        num_vertices,
        edges,
        has_bipartite_edge: graph.num_edges() > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::sorted_intersection_len;

    fn brute_projection(graph: &BipartiteGraph, side: Side) -> Vec<(u32, u32, u32)> {
        let n = match side {
            Side::Left => graph.num_left(),
            Side::Right => graph.num_right(),
        } as u32;
        let neighbors = |u: u32| match side {
            Side::Left => graph.neighbors_left(u),
            Side::Right => graph.neighbors_right(u),
        };
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                let w = sorted_intersection_len(neighbors(u), neighbors(v)) as u32;
                if w > 0 {
                    edges.push((u, v, w));
                }
            }
        }
        edges
    }

    #[test]
    fn matches_brute_force_both_sides() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(9, 7, 30, seed);
            assert_eq!(
                project(&g, Side::Left).edges,
                brute_projection(&g, Side::Left),
                "left seed {seed}"
            );
            assert_eq!(
                project(&g, Side::Right).edges,
                brute_projection(&g, Side::Right),
                "right seed {seed}"
            );
        }
    }

    #[test]
    fn complete_graph_projection() {
        let g = generators::complete(4, 3);
        let p = project(&g, Side::Left);
        assert_eq!(p.num_edges(), 6);
        assert!(p.edges.iter().all(|&(_, _, w)| w == 3));
        assert_eq!(p.weight(1, 3), 3);
        assert_eq!(p.weight(3, 1), 3, "weight is symmetric");
    }

    #[test]
    fn matching_projects_to_nothing() {
        let g = BipartiteGraph::from_edges(4, 4, (0..4).map(|i| (i, i))).unwrap();
        let p = project(&g, Side::Left);
        assert_eq!(p.num_edges(), 0);
        assert_eq!(p.weight(0, 1), 0);
        assert_eq!(p.mbb_half_upper_bound(), 1, "edges exist but no pair");
    }

    #[test]
    fn star_projects_to_clique() {
        // One right hub shared by all left vertices → complete projection
        // with weight 1.
        let g = BipartiteGraph::from_edges(4, 1, (0..4).map(|u| (u, 0))).unwrap();
        let p = project(&g, Side::Left);
        assert_eq!(p.num_edges(), 6);
        assert!(p.edges.iter().all(|&(_, _, w)| w == 1));
    }

    #[test]
    fn weighted_degrees_sum() {
        let g = generators::uniform_edges(8, 8, 25, 3);
        let p = project(&g, Side::Left);
        let degrees = p.weighted_degrees();
        let total: u64 = degrees.iter().sum();
        let edge_weight_sum: u64 = p.edges.iter().map(|&(_, _, w)| w as u64).sum();
        assert_eq!(total, 2 * edge_weight_sum);
    }

    #[test]
    fn mbb_bound_is_sound() {
        use crate::matching::maximum_vertex_biclique;
        for seed in 0..10u64 {
            let g = generators::uniform_edges(8, 8, 30, seed ^ 0x6);
            let p = project(&g, Side::Left);
            // Soundness against the exact optimum is checked in the
            // integration suite; here check internal consistency.
            let bound = p.mbb_half_upper_bound();
            if bound >= 2 {
                assert!(p.pairs_with_weight_at_least(bound as u32) >= bound * (bound - 1) / 2);
            }
            let _ = maximum_vertex_biclique(&g);
        }
    }

    #[test]
    fn empty_graph_projection() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let p = project(&g, Side::Left);
        assert_eq!(p.num_vertices, 0);
        assert_eq!(p.num_edges(), 0);
        assert_eq!(p.mbb_half_upper_bound(), 0);
    }

    #[test]
    fn planted_biclique_shows_up_as_heavy_pairs() {
        let noise = generators::uniform_edges(20, 20, 40, 5);
        let (g, left, _right) = generators::plant_balanced_biclique(&noise, 5);
        let p = project(&g, Side::Left);
        // Every pair of planted left vertices shares ≥ 5 right vertices.
        for (i, &u) in left.iter().enumerate() {
            for &v in &left[i + 1..] {
                assert!(p.weight(u, v) >= 5, "pair ({u}, {v})");
            }
        }
        assert!(p.mbb_half_upper_bound() >= 5);
    }
}
