//! Connected components of a bipartite graph.
//!
//! A biclique with both sides non-empty is connected, so the MBB of a
//! disconnected graph is the best MBB over its components. Component
//! decomposition is therefore a free divide-and-conquer layer on top of
//! any solver — and many real bipartite graphs (KONECT included) have a
//! giant component plus thousands of tiny ones that peel away instantly.

use crate::graph::{BipartiteGraph, Side, Vertex};
use crate::subgraph::{induce_by_ids, InducedSubgraph};

/// Component labelling of a bipartite graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectedComponents {
    /// Component id per left vertex (`u32::MAX` for isolated vertices —
    /// they belong to no edge and thus to no useful component).
    pub left_label: Vec<u32>,
    /// Component id per right vertex (`u32::MAX` when isolated).
    pub right_label: Vec<u32>,
    /// Number of components with at least one edge.
    pub count: u32,
}

impl ConnectedComponents {
    /// The component of a vertex, `None` when it is isolated.
    pub fn component_of(&self, v: Vertex) -> Option<u32> {
        let label = match v.side {
            Side::Left => self.left_label[v.index as usize],
            Side::Right => self.right_label[v.index as usize],
        };
        (label != u32::MAX).then_some(label)
    }
}

/// Labels the connected components (BFS over the bipartite adjacency).
/// Isolated vertices are left unlabelled; `count` counts only components
/// containing an edge.
///
/// ```
/// use mbb_bigraph::components::connected_components;
/// use mbb_bigraph::graph::BipartiteGraph;
///
/// // Two disjoint edges and an isolated right vertex.
/// let g = BipartiteGraph::from_edges(2, 3, [(0, 0), (1, 1)])?;
/// let cc = connected_components(&g);
/// assert_eq!(cc.count, 2);
/// assert_ne!(cc.left_label[0], cc.left_label[1]);
/// assert_eq!(cc.right_label[2], u32::MAX);
/// # Ok::<(), mbb_bigraph::graph::GraphError>(())
/// ```
pub fn connected_components(graph: &BipartiteGraph) -> ConnectedComponents {
    let nl = graph.num_left();
    let nr = graph.num_right();
    let mut left_label = vec![u32::MAX; nl];
    let mut right_label = vec![u32::MAX; nr];
    let mut count = 0u32;
    let mut queue: Vec<Vertex> = Vec::new();

    for start in 0..nl as u32 {
        if left_label[start as usize] != u32::MAX || graph.degree_left(start) == 0 {
            continue;
        }
        let label = count;
        count += 1;
        left_label[start as usize] = label;
        queue.push(Vertex::left(start));
        while let Some(v) = queue.pop() {
            for &w in graph.neighbors(v) {
                let (labels, side) = match v.side {
                    Side::Left => (&mut right_label, Side::Right),
                    Side::Right => (&mut left_label, Side::Left),
                };
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = label;
                    queue.push(Vertex { side, index: w });
                }
            }
        }
    }
    ConnectedComponents {
        left_label,
        right_label,
        count,
    }
}

/// Splits a graph into its edge-bearing connected components, each an
/// [`InducedSubgraph`] carrying original-id maps, ordered by component
/// label (discovery order over left vertices).
pub fn split_components(graph: &BipartiteGraph) -> Vec<InducedSubgraph> {
    let cc = connected_components(graph);
    let mut left_ids: Vec<Vec<u32>> = vec![Vec::new(); cc.count as usize];
    let mut right_ids: Vec<Vec<u32>> = vec![Vec::new(); cc.count as usize];
    for (u, &label) in cc.left_label.iter().enumerate() {
        if label != u32::MAX {
            left_ids[label as usize].push(u as u32);
        }
    }
    for (v, &label) in cc.right_label.iter().enumerate() {
        if label != u32::MAX {
            right_ids[label as usize].push(v as u32);
        }
    }
    left_ids
        .into_iter()
        .zip(right_ids)
        .map(|(left, right)| induce_by_ids(graph, left, right))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Reachability oracle: same component iff connected by a path.
    fn reachable(graph: &BipartiteGraph, from: Vertex, to: Vertex) -> bool {
        let mut seen_left = vec![false; graph.num_left()];
        let mut seen_right = vec![false; graph.num_right()];
        let mut queue = vec![from];
        match from.side {
            Side::Left => seen_left[from.index as usize] = true,
            Side::Right => seen_right[from.index as usize] = true,
        }
        while let Some(v) = queue.pop() {
            if v == to {
                return true;
            }
            for &w in graph.neighbors(v) {
                let (seen, side) = match v.side {
                    Side::Left => (&mut seen_right, Side::Right),
                    Side::Right => (&mut seen_left, Side::Left),
                };
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push(Vertex { side, index: w });
                }
            }
        }
        false
    }

    #[test]
    fn labels_match_reachability() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(10, 10, 14, seed);
            let cc = connected_components(&g);
            for u in 0..10u32 {
                for v in 0..10u32 {
                    let same = cc.component_of(Vertex::left(u)).is_some()
                        && cc.component_of(Vertex::left(u)) == cc.component_of(Vertex::right(v));
                    assert_eq!(
                        same,
                        reachable(&g, Vertex::left(u), Vertex::right(v)),
                        "seed {seed} L{u} R{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_blocks_are_separate_components() {
        // Block A on L{0,1}×R{0,1}, block B on L{2,3}×R{2,3}.
        let mut edges = Vec::new();
        for u in 0..2u32 {
            for v in 0..2u32 {
                edges.push((u, v));
                edges.push((u + 2, v + 2));
            }
        }
        let g = BipartiteGraph::from_edges(4, 4, edges).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 2);
        let parts = split_components(&g);
        assert_eq!(parts.len(), 2);
        for part in &parts {
            assert_eq!(part.graph.num_left(), 2);
            assert_eq!(part.graph.num_right(), 2);
            assert_eq!(part.graph.num_edges(), 4);
        }
    }

    #[test]
    fn isolated_vertices_are_unlabelled_and_dropped() {
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 1);
        assert_eq!(cc.component_of(Vertex::left(1)), None);
        assert_eq!(cc.component_of(Vertex::right(2)), None);
        let parts = split_components(&g);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].graph.num_vertices(), 2);
    }

    #[test]
    fn component_edges_partition_graph_edges() {
        for seed in 0..8u64 {
            let g = generators::uniform_edges(15, 15, 25, seed ^ 0x3);
            let parts = split_components(&g);
            let total: usize = parts.iter().map(|p| p.graph.num_edges()).sum();
            assert_eq!(total, g.num_edges(), "seed {seed}");
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(connected_components(&g).count, 0);
        assert!(split_components(&g).is_empty());
        let g = BipartiteGraph::from_edges(4, 4, []).unwrap();
        assert_eq!(connected_components(&g).count, 0);
    }

    #[test]
    fn connected_graph_is_one_component() {
        let g = generators::complete(3, 4);
        let cc = connected_components(&g);
        assert_eq!(cc.count, 1);
        assert!(cc.left_label.iter().all(|&l| l == 0));
        assert!(cc.right_label.iter().all(|&l| l == 0));
    }
}
