//! Edge-list I/O in the KONECT bipartite format.
//!
//! The paper's sparse experiments (§6.2) use 30 datasets from the Koblenz
//! Network Collection. KONECT ships bipartite graphs as whitespace-separated
//! `left right` pairs, 1-based, with `%`-prefixed comment lines. This module
//! reads and writes that format so synthetic stand-ins can be persisted and
//! real KONECT files can be dropped in unchanged if available.

use std::fmt;
use std::io::{self, BufRead, Seek, SeekFrom, Write};
use std::path::Path;

use crate::graph::{BipartiteGraph, Builder, GraphError};

/// Parse-error line content is truncated to this many bytes so a bad
/// million-column line cannot explode the error message.
const MAX_ERROR_CONTENT: usize = 120;

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line did not contain two integer fields.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content, truncated to a readable length
        /// (with a `… (N bytes)` suffix) when the line is oversized.
        content: String,
    },
    /// An endpoint index was 0 (KONECT ids are 1-based) or out of range.
    Graph(GraphError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: expected `left right`, got {content:?}")
            }
            IoError::Graph(e) => write!(f, "invalid edge: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Graph(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Builds the [`IoError::Parse`] for a bad line, truncating oversized
/// content at a char boundary so the message stays readable.
fn parse_error(line: usize, content: &str) -> IoError {
    let content = if content.len() > MAX_ERROR_CONTENT {
        let mut cut = MAX_ERROR_CONTENT;
        while !content.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}… ({} bytes)", &content[..cut], content.len())
    } else {
        content.to_string()
    };
    IoError::Parse { line, content }
}

/// Scans a KONECT-style edge list line by line, calling `edge` with each
/// 0-based `(left, right)` pair. Comments (`%`/`#`) and blank lines are
/// skipped; malformed lines abort with a per-line [`IoError::Parse`].
///
/// The line buffer is reused across lines, so one scan allocates O(longest
/// line), not O(file).
fn scan_edges<R: BufRead>(
    reader: &mut R,
    mut edge: impl FnMut(u32, u32) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (fields.next(), fields.next()) else {
            return Err(parse_error(line_no, trimmed));
        };
        let parse = |s: &str| -> Option<u32> { s.parse::<u32>().ok().filter(|&v| v >= 1) };
        let (Some(u), Some(v)) = (parse(a), parse(b)) else {
            return Err(parse_error(line_no, trimmed));
        };
        edge(u - 1, v - 1)?;
    }
}

/// Reads a KONECT-style bipartite edge list from any reader, buffering the
/// edge list before building CSR.
///
/// Lines starting with `%` or `#` are comments; blank lines are skipped.
/// Vertex ids are 1-based and the side sizes are inferred from the maxima.
///
/// For seekable inputs (files, cursors) prefer
/// [`read_edge_list_streaming`], which builds the identical graph in two
/// passes without materialising the edge `Vec`;
/// [`read_edge_list_file`] already does.
pub fn read_edge_list<R: BufRead>(mut reader: R) -> Result<BipartiteGraph, IoError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_l = 0u32;
    let mut max_r = 0u32;
    scan_edges(&mut reader, |u, v| {
        max_l = max_l.max(u + 1);
        max_r = max_r.max(v + 1);
        edges.push((u, v));
        Ok(())
    })?;
    let mut builder = Builder::new(max_l, max_r);
    builder.reserve(edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v)?;
    }
    Ok(builder.build())
}

/// Reads a KONECT-style bipartite edge list in two streaming passes,
/// producing a graph byte-identical (CSR offsets and adjacency) to
/// [`read_edge_list`] without ever materialising the full edge `Vec`.
///
/// Pass 1 counts per-vertex degrees and the edge total; pass 2 rewinds and
/// writes each edge directly into its final CSR slot, then sorts and
/// deduplicates each row in place and derives the right side by counting
/// sort — exactly the construction [`crate::graph::Builder::build`] uses.
///
/// Peak transient memory is one `u32` per raw (pre-dedup) edge plus the
/// per-side degree arrays, roughly half of what the buffered reader's
/// `(u32, u32)` edge buffer costs on top of the final graph, and no global
/// edge sort is performed (per-row sorts touch `O(d log d)` each).
pub fn read_edge_list_streaming<R: BufRead + Seek>(
    mut reader: R,
) -> Result<BipartiteGraph, IoError> {
    let changed = || {
        IoError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            "input changed between passes",
        ))
    };

    // Pass 1: degree counting. Side sizes are inferred from the maxima, so
    // the degree arrays grow on demand.
    let mut left_deg: Vec<usize> = Vec::new();
    let mut right_deg: Vec<usize> = Vec::new();
    let mut raw_edges = 0usize;
    scan_edges(&mut reader, |u, v| {
        let (u, v) = (u as usize, v as usize);
        if u >= left_deg.len() {
            left_deg.resize(u + 1, 0);
        }
        if v >= right_deg.len() {
            right_deg.resize(v + 1, 0);
        }
        left_deg[u] += 1;
        right_deg[v] += 1;
        raw_edges += 1;
        Ok(())
    })?;
    let nl = left_deg.len();
    let nr = right_deg.len();

    // Pass 2: place every edge into its left-row slot in file order.
    let mut left_offsets = vec![0usize; nl + 1];
    for u in 0..nl {
        left_offsets[u + 1] = left_offsets[u] + left_deg[u];
    }
    let mut cursor: Vec<usize> = left_offsets[..nl].to_vec();
    let mut left_neighbors = vec![0u32; raw_edges];
    reader.seek(SeekFrom::Start(0))?;
    let mut seen = 0usize;
    scan_edges(&mut reader, |u, v| {
        let u = u as usize;
        if u >= nl || v as usize >= nr || cursor[u] == left_offsets[u + 1] {
            return Err(changed());
        }
        left_neighbors[cursor[u]] = v;
        cursor[u] += 1;
        seen += 1;
        Ok(())
    })?;
    if seen != raw_edges {
        return Err(changed());
    }

    // Sort + dedup each left row in place, compacting downward (the write
    // cursor never overtakes a row's start, so rows are read before they
    // are overwritten).
    let mut write = 0usize;
    let mut deduped_offsets = vec![0usize; nl + 1];
    for u in 0..nl {
        let (start, end) = (left_offsets[u], left_offsets[u + 1]);
        left_neighbors[start..end].sort_unstable();
        let mut prev = None;
        for i in start..end {
            let v = left_neighbors[i];
            if prev != Some(v) {
                left_neighbors[write] = v;
                write += 1;
                prev = Some(v);
            }
        }
        deduped_offsets[u + 1] = write;
    }
    left_neighbors.truncate(write);
    let left_offsets = deduped_offsets;

    // Right side by counting sort over the deduplicated left CSR; visiting
    // rows in left order keeps every right row sorted.
    let mut right_offsets = vec![0usize; nr + 1];
    for &v in &left_neighbors {
        right_offsets[v as usize + 1] += 1;
    }
    for v in 0..nr {
        right_offsets[v + 1] += right_offsets[v];
    }
    let mut rcursor: Vec<usize> = right_offsets[..nr].to_vec();
    let mut right_neighbors = vec![0u32; write];
    for u in 0..nl {
        for &v in &left_neighbors[left_offsets[u]..left_offsets[u + 1]] {
            right_neighbors[rcursor[v as usize]] = u as u32;
            rcursor[v as usize] += 1;
        }
    }

    Ok(BipartiteGraph::from_csr(
        left_offsets,
        left_neighbors,
        right_offsets,
        right_neighbors,
    )?)
}

/// Reads a bipartite edge list from a file path via the two-pass streaming
/// builder ([`read_edge_list_streaming`]) — the graph is identical to the
/// buffered [`read_edge_list`], without the transient edge buffer.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<BipartiteGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list_streaming(io::BufReader::new(file))
}

/// Writes a graph as a KONECT-style edge list (1-based ids, `%` header).
pub fn write_edge_list<W: Write>(graph: &BipartiteGraph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "% bip |L|={} |R|={} |E|={}",
        graph.num_left(),
        graph.num_right(),
        graph.num_edges()
    )?;
    let mut buf = io::BufWriter::new(&mut writer);
    for (u, v) in graph.edges() {
        writeln!(buf, "{} {}", u + 1, v + 1)?;
    }
    buf.flush()
}

/// Writes a graph to a file path.
pub fn write_edge_list_file(graph: &BipartiteGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_simple_list_with_comments() {
        let text = "% bip comment\n# another\n1 1\n2 3\n\n3 2\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_left(), 3);
        assert_eq!(g.num_right(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn ignores_extra_columns() {
        // KONECT files often carry weight/timestamp columns.
        let text = "1 1 1 1370000000\n2 2 5 1370000001\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_garbage_line() {
        let err = read_edge_list(Cursor::new("1 x\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_zero_based_id() {
        let err = read_edge_list(Cursor::new("0 1\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn rejects_single_field_line() {
        let err = read_edge_list(Cursor::new("42\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("% nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    fn assert_same_csr(a: &BipartiteGraph, b: &BipartiteGraph) {
        assert_eq!(a.left_offsets(), b.left_offsets());
        assert_eq!(a.left_neighbors(), b.left_neighbors());
        assert_eq!(a.right_offsets(), b.right_offsets());
        assert_eq!(a.right_neighbors(), b.right_neighbors());
    }

    #[test]
    fn streaming_matches_buffered_reader() {
        // Comments, duplicates, out-of-order edges, extra columns.
        let text = "% header\n3 2\n1 1\n3 2\n# mid comment\n2 3 77 1370000000\n\n1 2\n2 1\n";
        let buffered = read_edge_list(Cursor::new(text)).unwrap();
        let streamed = read_edge_list_streaming(Cursor::new(text)).unwrap();
        assert_same_csr(&buffered, &streamed);
        assert_eq!(streamed.num_edges(), 5); // the duplicate collapsed
    }

    #[test]
    fn streaming_rejects_what_buffered_rejects() {
        for bad in ["1 x\n", "0 1\n", "42\n", "zz\n"] {
            assert!(
                read_edge_list_streaming(Cursor::new(bad)).is_err(),
                "{bad:?}"
            );
        }
        let empty = read_edge_list_streaming(Cursor::new("% nothing\n")).unwrap();
        assert_eq!(empty.num_vertices(), 0);
    }

    #[test]
    fn oversized_bad_line_is_truncated_in_the_error() {
        // A million-byte line of garbage must not explode the message.
        let long = format!("1 x{}\n", "y".repeat(1_000_000));
        let err = read_edge_list_streaming(Cursor::new(long.as_str())).unwrap_err();
        let IoError::Parse { line, content } = err else {
            panic!("expected parse error");
        };
        assert_eq!(line, 1);
        assert!(
            content.len() < 160,
            "error content too long: {} bytes",
            content.len()
        );
        assert!(content.contains("bytes)"), "{content}");
        // Short lines still appear verbatim.
        let err = read_edge_list(Cursor::new("1 x\n")).unwrap_err();
        let IoError::Parse { content, .. } = err else {
            panic!("expected parse error");
        };
        assert_eq!(content, "1 x");
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = BipartiteGraph::from_edges(4, 3, [(0, 0), (1, 2), (3, 1), (2, 2)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }
}
