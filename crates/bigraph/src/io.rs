//! Edge-list I/O in the KONECT bipartite format.
//!
//! The paper's sparse experiments (§6.2) use 30 datasets from the Koblenz
//! Network Collection. KONECT ships bipartite graphs as whitespace-separated
//! `left right` pairs, 1-based, with `%`-prefixed comment lines. This module
//! reads and writes that format so synthetic stand-ins can be persisted and
//! real KONECT files can be dropped in unchanged if available.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

use crate::graph::{BipartiteGraph, Builder, GraphError};

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line did not contain two integer fields.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// An endpoint index was 0 (KONECT ids are 1-based) or out of range.
    Graph(GraphError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: expected `left right`, got {content:?}")
            }
            IoError::Graph(e) => write!(f, "invalid edge: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Graph(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Reads a KONECT-style bipartite edge list.
///
/// Lines starting with `%` or `#` are comments; blank lines are skipped.
/// Vertex ids are 1-based and the side sizes are inferred from the maxima.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<BipartiteGraph, IoError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_l = 0u32;
    let mut max_r = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (fields.next(), fields.next()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let parse = |s: &str| -> Option<u32> { s.parse::<u32>().ok().filter(|&v| v >= 1) };
        let (Some(u), Some(v)) = (parse(a), parse(b)) else {
            return Err(IoError::Parse {
                line: idx + 1,
                content: line.clone(),
            });
        };
        max_l = max_l.max(u);
        max_r = max_r.max(v);
        edges.push((u - 1, v - 1));
    }
    let mut builder = Builder::new(max_l, max_r);
    builder.reserve(edges.len());
    for (u, v) in edges {
        builder.add_edge(u, v)?;
    }
    Ok(builder.build())
}

/// Reads a bipartite edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<BipartiteGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Writes a graph as a KONECT-style edge list (1-based ids, `%` header).
pub fn write_edge_list<W: Write>(graph: &BipartiteGraph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "% bip |L|={} |R|={} |E|={}",
        graph.num_left(),
        graph.num_right(),
        graph.num_edges()
    )?;
    let mut buf = io::BufWriter::new(&mut writer);
    for (u, v) in graph.edges() {
        writeln!(buf, "{} {}", u + 1, v + 1)?;
    }
    buf.flush()
}

/// Writes a graph to a file path.
pub fn write_edge_list_file(graph: &BipartiteGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_simple_list_with_comments() {
        let text = "% bip comment\n# another\n1 1\n2 3\n\n3 2\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_left(), 3);
        assert_eq!(g.num_right(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn ignores_extra_columns() {
        // KONECT files often carry weight/timestamp columns.
        let text = "1 1 1 1370000000\n2 2 5 1370000001\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_garbage_line() {
        let err = read_edge_list(Cursor::new("1 x\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_zero_based_id() {
        let err = read_edge_list(Cursor::new("0 1\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn rejects_single_field_line() {
        let err = read_edge_list(Cursor::new("42\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("% nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = BipartiteGraph::from_edges(4, 3, [(0, 0), (1, 2), (3, 1), (2, 2)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }
}
