//! Fixed-capacity bitset used as the workhorse of every exhaustive-search
//! kernel.
//!
//! The paper's exhaustive search (Algorithms 1–3 and 8) only ever runs on
//! subgraphs whose total size is bounded by the bidegeneracy `δ̈(G)` — a few
//! hundred vertices on real sparse graphs — or on dense synthetic graphs of
//! at most a few thousand vertices per side. A flat `Vec<u64>` bitset makes
//! the hot operations (candidate intersection, degree counting, reduction
//! scans) cost `O(n / 64)` words each.

/// A fixed-capacity set of `usize` values in `0..capacity`.
///
/// The capacity is fixed at construction; all binary operations require both
/// operands to have the same capacity (checked with `debug_assert!`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Box<[u64]>,
    capacity: usize,
}

const WORD_BITS: usize = 64;

#[inline]
fn word_count(capacity: usize) -> usize {
    capacity.div_ceil(WORD_BITS)
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0u64; word_count(capacity)].into_boxed_slice(),
            capacity,
        }
    }

    /// Creates a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        s.insert_all();
        s
    }

    /// The fixed capacity (exclusive upper bound on stored values).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`. Panics in debug builds if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Tests membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Inserts every value in `0..capacity`.
    pub fn insert_all(&mut self) {
        if self.capacity == 0 {
            return;
        }
        for w in self.words.iter_mut() {
            *w = u64::MAX;
        }
        let tail = self.capacity % WORD_BITS;
        if tail != 0 {
            let last = self.words.len() - 1;
            self.words[last] = (1u64 << tail) - 1;
        }
    }

    /// Removes every value.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no value is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// `self \= other`.
    #[inline]
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    /// `|self ∩ other|` without materialising the intersection.
    #[inline]
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|`.
    #[inline]
    pub fn difference_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// True when `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// True when `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// The smallest stored value, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the stored values in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects into a `Vec<u32>` (convenient for local-vertex index lists).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|i| i as u32).collect()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is `max+1` of the items (0 for empty).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over the values of a [`BitSet`], ascending.
pub struct Iter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.first(), None);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = BitSet::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            s.insert(i);
            assert!(s.contains(i), "just inserted {i}");
        }
        assert_eq!(s.len(), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn full_respects_tail_bits() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        let s = BitSet::full(64);
        assert_eq!(s.len(), 64);
        let s = BitSet::full(0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn iter_yields_sorted_members() {
        let mut s = BitSet::new(200);
        let values = [3usize, 64, 65, 100, 199];
        for &v in &values {
            s.insert(v);
        }
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, values);
    }

    #[test]
    fn intersection_and_counts() {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        for i in 0..128 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
        }
        assert_eq!(
            a.intersection_len(&b),
            (0..128).filter(|i| i % 6 == 0).count()
        );
        assert_eq!(a.difference_len(&b), a.len() - a.intersection_len(&b));
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.len(), a.intersection_len(&b));
        assert!(c.is_subset(&a));
        assert!(c.is_subset(&b));
    }

    #[test]
    fn subtract_and_union() {
        let mut a = BitSet::new(64);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(64);
        b.insert(2);
        b.insert(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3]);
        a.subtract(&b);
        assert_eq!(a.to_vec(), vec![1]);
    }

    #[test]
    fn disjoint_detection() {
        let mut a = BitSet::new(64);
        a.insert(5);
        let mut b = BitSet::new(64);
        b.insert(6);
        assert!(a.is_disjoint(&b));
        b.insert(5);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn first_finds_lowest_across_words() {
        let mut s = BitSet::new(256);
        s.insert(200);
        assert_eq!(s.first(), Some(200));
        s.insert(70);
        assert_eq!(s.first(), Some(70));
        s.insert(0);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: BitSet = [4usize, 9, 2].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 4, 9]);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::full(100);
        s.clear();
        assert!(s.is_empty());
    }
}
