//! Fixed-capacity bitset used as the workhorse of every exhaustive-search
//! kernel.
//!
//! The paper's exhaustive search (Algorithms 1–3 and 8) only ever runs on
//! subgraphs whose total size is bounded by the bidegeneracy `δ̈(G)` — a few
//! hundred vertices on real sparse graphs — or on dense synthetic graphs of
//! at most a few thousand vertices per side. A flat word-array bitset makes
//! the hot operations (candidate intersection, degree counting, reduction
//! scans) cost `O(n / 64)` words each, and every one of them now runs
//! through the fused block kernels in [`crate::kernels`]:
//!
//! * the cardinality is cached and maintained *inside* each mutating pass
//!   ([`BitSet::and_assign_count`] and friends), so [`BitSet::len`] — called
//!   at every branch-and-bound node for the size bound — is `O(1)`;
//! * counting queries ([`BitSet::intersection_len`],
//!   [`BitSet::difference_len`]) are single fused AND/ANDNOT + popcount
//!   passes, never materialising the combined set;
//! * survivor scans ([`BitSet::first_intersection`],
//!   [`BitSet::last_intersection`], [`BitSet::first_difference`]) are
//!   prefix-pruned: they stop at the first non-empty word.
//!
//! Binary operations accept anything implementing [`Bits`] — an owned
//! [`BitSet`] or a borrowed arena row ([`crate::local::RowRef`]) — so the
//! cache-blocked [`crate::local::LocalGraph`] layout needs no copies.

use crate::kernels;

/// Read-only view of a word-aligned bit vector.
///
/// Implemented by [`BitSet`] and by [`crate::local::RowRef`] (a borrowed row
/// of a [`crate::local::LocalGraph`] adjacency arena). All words beyond
/// `bit_capacity()` must be zero — the kernels rely on that tail invariant.
pub trait Bits {
    /// The backing words, least-significant bit first.
    fn words(&self) -> &[u64];
    /// Exclusive upper bound on stored values.
    fn bit_capacity(&self) -> usize;
}

/// A fixed-capacity set of `usize` values in `0..capacity`.
///
/// The capacity is fixed at construction; all binary operations require both
/// operands to have the same capacity (checked with `debug_assert!`). The
/// cardinality is cached: [`BitSet::len`] is `O(1)` and every mutation keeps
/// it current (fused into the same pass for the bulk operations).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Box<[u64]>,
    capacity: usize,
    len: usize,
}

const WORD_BITS: usize = 64;

#[inline]
fn word_count(capacity: usize) -> usize {
    capacity.div_ceil(WORD_BITS)
}

impl Bits for BitSet {
    #[inline]
    fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    fn bit_capacity(&self) -> usize {
        self.capacity
    }
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0u64; word_count(capacity)].into_boxed_slice(),
            capacity,
            len: 0,
        }
    }

    /// Creates a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        s.insert_all();
        s
    }

    /// Builds a set from raw words (tail bits beyond `capacity` are masked).
    pub(crate) fn from_words(words: &[u64], capacity: usize) -> Self {
        debug_assert_eq!(words.len(), word_count(capacity));
        let mut s = BitSet {
            words: words.into(),
            capacity,
            len: 0,
        };
        let tail = capacity % WORD_BITS;
        if tail != 0 {
            let last = s.words.len() - 1;
            s.words[last] &= (1u64 << tail) - 1;
        }
        s.len = kernels::popcount(&s.words);
        s
    }

    /// The fixed capacity (exclusive upper bound on stored values).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`. Panics in debug builds if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        let w = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        self.len += (*w & bit == 0) as usize;
        *w |= bit;
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        let w = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        self.len -= (*w & bit != 0) as usize;
        *w &= !bit;
    }

    /// Tests membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Inserts every value in `0..capacity`.
    pub fn insert_all(&mut self) {
        if self.capacity == 0 {
            return;
        }
        for w in self.words.iter_mut() {
            *w = u64::MAX;
        }
        let tail = self.capacity % WORD_BITS;
        if tail != 0 {
            let last = self.words.len() - 1;
            self.words[last] = (1u64 << tail) - 1;
        }
        self.len = self.capacity;
    }

    /// Removes every value.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
        self.len = 0;
    }

    /// Number of stored values. `O(1)` — the count is maintained by every
    /// mutating operation (fused into the kernel pass for bulk updates).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no value is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `self ∩= other`. Equivalent to [`BitSet::and_assign_count`] with the
    /// count discarded (the cached length is refreshed either way).
    #[inline]
    pub fn intersect_with<B: Bits + ?Sized>(&mut self, other: &B) {
        self.and_assign_count(other);
    }

    /// Fused `self ∩= other` returning the new cardinality from the same
    /// pass (the paper's hot "include candidate then re-count" step).
    #[inline]
    pub fn and_assign_count<B: Bits + ?Sized>(&mut self, other: &B) -> usize {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        self.len = kernels::and_assign_count(&mut self.words, other.words());
        self.len
    }

    /// `self ∪= other`.
    #[inline]
    pub fn union_with<B: Bits + ?Sized>(&mut self, other: &B) {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        self.len = kernels::or_assign_count(&mut self.words, other.words());
    }

    /// `self \= other`.
    #[inline]
    pub fn subtract<B: Bits + ?Sized>(&mut self, other: &B) {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        self.len = kernels::andnot_assign_count(&mut self.words, other.words());
    }

    /// `|self ∩ other|` without materialising the intersection.
    #[inline]
    pub fn intersection_len<B: Bits + ?Sized>(&self, other: &B) -> usize {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        kernels::and_popcount(&self.words, other.words())
    }

    /// `|self \ other|`.
    #[inline]
    pub fn difference_len<B: Bits + ?Sized>(&self, other: &B) -> usize {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        kernels::andnot_popcount(&self.words, other.words())
    }

    /// True when `self ⊆ other`.
    #[inline]
    pub fn is_subset<B: Bits + ?Sized>(&self, other: &B) -> bool {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        self.words
            .iter()
            .zip(other.words().iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// True when `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint<B: Bits + ?Sized>(&self, other: &B) -> bool {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        self.words
            .iter()
            .zip(other.words().iter())
            .all(|(a, b)| a & b == 0)
    }

    /// The smallest stored value, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Smallest member of `self ∩ other` without materialising it
    /// (prefix-pruned row scan: stops at the first surviving word).
    #[inline]
    pub fn first_intersection<B: Bits + ?Sized>(&self, other: &B) -> Option<usize> {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        kernels::first_and(&self.words, other.words())
    }

    /// Largest member of `self ∩ other` (suffix-pruned backwards scan).
    #[inline]
    pub fn last_intersection<B: Bits + ?Sized>(&self, other: &B) -> Option<usize> {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        kernels::last_and(&self.words, other.words())
    }

    /// Smallest member of `self \ other` (prefix-pruned).
    #[inline]
    pub fn first_difference<B: Bits + ?Sized>(&self, other: &B) -> Option<usize> {
        debug_assert_eq!(self.capacity, other.bit_capacity());
        kernels::first_andnot(&self.words, other.words())
    }

    /// Batched multi-row AND: `self ∩= row` for every row, returning the
    /// final cardinality from one cache-blocked fused pass.
    pub fn intersect_rows_count(&mut self, rows: &[&[u64]]) -> usize {
        debug_assert!(rows.iter().all(|r| r.len() == word_count(self.capacity)));
        self.len = kernels::multi_and_popcount(&mut self.words, rows);
        self.len
    }

    /// Iterates the stored values in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        iter_words(&self.words)
    }

    /// Collects into a `Vec<u32>` (convenient for local-vertex index lists).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|i| i as u32).collect()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is `max+1` of the items (0 for empty).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over the set bits of a word slice, ascending.
pub(crate) fn iter_words(words: &[u64]) -> Iter<'_> {
    Iter {
        words,
        word_index: 0,
        current: words.first().copied().unwrap_or(0),
    }
}

/// Iterator over the values of a [`BitSet`], ascending.
pub struct Iter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.first(), None);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = BitSet::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            s.insert(i);
            assert!(s.contains(i), "just inserted {i}");
        }
        assert_eq!(s.len(), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn cached_len_survives_redundant_updates() {
        let mut s = BitSet::new(100);
        s.insert(5);
        s.insert(5); // already present: len must not double-count
        assert_eq!(s.len(), 1);
        s.remove(6); // absent: len must not underflow
        assert_eq!(s.len(), 1);
        s.remove(5);
        s.remove(5);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn full_respects_tail_bits() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        let s = BitSet::full(64);
        assert_eq!(s.len(), 64);
        let s = BitSet::full(0);
        assert_eq!(s.len(), 0);
    }

    /// The classic off-by-one surface: `insert_all`, `intersection_len` and
    /// the survivor scans pinned at every word-boundary capacity.
    #[test]
    fn tail_word_edge_capacities() {
        for cap in [0usize, 1, 63, 64, 65, 127, 128] {
            let full = BitSet::full(cap);
            assert_eq!(full.len(), cap, "full({cap}) cardinality");
            let empty = BitSet::new(cap);
            assert_eq!(full.intersection_len(&full), cap, "full∩full at {cap}");
            assert_eq!(full.intersection_len(&empty), 0, "full∩empty at {cap}");
            assert_eq!(full.difference_len(&empty), cap, "full\\empty at {cap}");
            assert_eq!(empty.difference_len(&full), 0, "empty\\full at {cap}");
            assert_eq!(
                full.first_intersection(&full),
                if cap == 0 { None } else { Some(0) },
                "first survivor at {cap}"
            );
            assert_eq!(
                full.last_intersection(&full),
                if cap == 0 { None } else { Some(cap - 1) },
                "last survivor at {cap}"
            );
            assert_eq!(full.first_difference(&empty), full.first());
            // Highest admissible element round-trips through every fused op.
            if cap > 0 {
                let mut top = BitSet::new(cap);
                top.insert(cap - 1);
                assert_eq!(top.intersection_len(&full), 1, "top bit at {cap}");
                assert_eq!(top.first_intersection(&full), Some(cap - 1));
                assert_eq!(top.last_intersection(&full), Some(cap - 1));
                let mut clone = top.clone();
                assert_eq!(clone.and_assign_count(&full), 1);
                clone.subtract(&full);
                assert!(clone.is_empty());
                // insert_all never sets bits beyond the capacity.
                let mut all = BitSet::new(cap);
                all.insert_all();
                assert_eq!(all.len(), cap);
                assert_eq!(all.iter().last(), Some(cap - 1));
                assert!(
                    all.words()
                        .iter()
                        .map(|w| w.count_ones() as usize)
                        .sum::<usize>()
                        == cap
                );
            }
        }
    }

    #[test]
    fn iter_yields_sorted_members() {
        let mut s = BitSet::new(200);
        let values = [3usize, 64, 65, 100, 199];
        for &v in &values {
            s.insert(v);
        }
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, values);
    }

    #[test]
    fn intersection_and_counts() {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        for i in 0..128 {
            if i % 2 == 0 {
                a.insert(i);
            }
            if i % 3 == 0 {
                b.insert(i);
            }
        }
        assert_eq!(
            a.intersection_len(&b),
            (0..128).filter(|i| i % 6 == 0).count()
        );
        assert_eq!(a.difference_len(&b), a.len() - a.intersection_len(&b));
        let mut c = a.clone();
        let fused = c.and_assign_count(&b);
        assert_eq!(fused, a.intersection_len(&b));
        assert_eq!(c.len(), a.intersection_len(&b));
        assert!(c.is_subset(&a));
        assert!(c.is_subset(&b));
    }

    #[test]
    fn subtract_and_union() {
        let mut a = BitSet::new(64);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(64);
        b.insert(2);
        b.insert(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3]);
        assert_eq!(u.len(), 3);
        a.subtract(&b);
        assert_eq!(a.to_vec(), vec![1]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn disjoint_detection() {
        let mut a = BitSet::new(64);
        a.insert(5);
        let mut b = BitSet::new(64);
        b.insert(6);
        assert!(a.is_disjoint(&b));
        b.insert(5);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn first_finds_lowest_across_words() {
        let mut s = BitSet::new(256);
        s.insert(200);
        assert_eq!(s.first(), Some(200));
        s.insert(70);
        assert_eq!(s.first(), Some(70));
        s.insert(0);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn survivor_scans_match_iterated_intersection() {
        let mut a = BitSet::new(300);
        let mut b = BitSet::new(300);
        for i in (0..300).step_by(7) {
            a.insert(i);
        }
        for i in (0..300).step_by(11) {
            b.insert(i);
        }
        let common: Vec<usize> = a.iter().filter(|&i| b.contains(i)).collect();
        assert_eq!(a.first_intersection(&b), common.first().copied());
        assert_eq!(a.last_intersection(&b), common.last().copied());
        let missing: Vec<usize> = a.iter().filter(|&i| !b.contains(i)).collect();
        assert_eq!(a.first_difference(&b), missing.first().copied());
    }

    #[test]
    fn batched_multi_row_and_matches_sequential() {
        let rows: Vec<BitSet> = (2..6)
            .map(|step| (0..400).step_by(step).collect::<Vec<usize>>())
            .map(|v| {
                let mut s = BitSet::new(400);
                for i in v {
                    s.insert(i);
                }
                s
            })
            .collect();
        let mut sequential = BitSet::full(400);
        for r in &rows {
            sequential.intersect_with(r);
        }
        let mut batched = BitSet::full(400);
        let row_words: Vec<&[u64]> = rows.iter().map(|r| r.words()).collect();
        let n = batched.intersect_rows_count(&row_words);
        assert_eq!(batched, sequential);
        assert_eq!(n, sequential.len());
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: BitSet = [4usize, 9, 2].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 4, 9]);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::full(100);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
