//! Path/cycle decomposition of near-complete candidate subgraphs
//! (Observation 1 of the paper).
//!
//! When every candidate vertex misses at most two neighbours on the other
//! candidate side, the bipartite complement restricted to the candidates has
//! maximum degree ≤ 2, so its non-trivial part is a disjoint union of paths
//! and (even-length) cycles. [`decompose_missing`] performs this
//! decomposition, returning `None` the moment any vertex misses three or
//! more neighbours — i.e. when the Lemma 3 polynomial case does not apply.

use crate::bitset::BitSet;
use crate::local::{LocalGraph, LocalVertex};

/// Kind of a complement component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A path with an odd number of edges (equal side counts).
    OddPath,
    /// A path with an even number of edges (side counts differ by one).
    EvenPath,
    /// An (even-length) cycle.
    Cycle,
}

/// A single path or cycle of the complement graph.
#[derive(Debug, Clone)]
pub struct Component {
    /// Path order (for cycles, a cyclic order starting anywhere).
    pub vertices: Vec<LocalVertex>,
    /// Component kind.
    pub kind: ComponentKind,
}

impl Component {
    /// Number of edges `p` of the path/cycle (the paper's component length).
    pub fn length(&self) -> usize {
        match self.kind {
            ComponentKind::Cycle => self.vertices.len(),
            _ => self.vertices.len() - 1,
        }
    }

    /// Count of left-side vertices in the component.
    pub fn left_count(&self) -> usize {
        self.vertices.iter().filter(|v| v.left).count()
    }

    /// Count of right-side vertices.
    pub fn right_count(&self) -> usize {
        self.vertices.len() - self.left_count()
    }
}

/// Result of decomposing the candidate-restricted complement.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Path/cycle components of the non-trivial part.
    pub components: Vec<Component>,
    /// Left candidates with no missing neighbour (complement degree 0).
    pub trivial_left: Vec<u32>,
    /// Right candidates with no missing neighbour.
    pub trivial_right: Vec<u32>,
}

/// Decomposes the complement of `graph[ca ∪ cb]` into paths and cycles.
///
/// Returns `None` if any candidate misses more than two neighbours on the
/// other candidate side (Lemma 3 precondition violated). For an empty
/// candidate pair the decomposition is trivially empty.
pub fn decompose_missing(graph: &LocalGraph, ca: &BitSet, cb: &BitSet) -> Option<Decomposition> {
    // Complement adjacency restricted to candidates; at most 2 entries each.
    let mut missing_left: Vec<Vec<u32>> = Vec::with_capacity(ca.len());
    let left_vertices: Vec<u32> = ca.to_vec();
    let right_vertices: Vec<u32> = cb.to_vec();
    let mut left_pos = vec![usize::MAX; graph.num_left()];
    for (i, &u) in left_vertices.iter().enumerate() {
        left_pos[u as usize] = i;
    }
    let mut right_pos = vec![usize::MAX; graph.num_right()];
    for (j, &v) in right_vertices.iter().enumerate() {
        right_pos[v as usize] = j;
    }

    for &u in &left_vertices {
        let mut row = cb.clone();
        row.subtract(&graph.left_row(u));
        if row.len() > 2 {
            return None;
        }
        missing_left.push(row.to_vec());
    }
    let mut missing_right: Vec<Vec<u32>> = Vec::with_capacity(right_vertices.len());
    for &v in &right_vertices {
        let mut row = ca.clone();
        row.subtract(&graph.right_row(v));
        if row.len() > 2 {
            return None;
        }
        missing_right.push(row.to_vec());
    }

    // Walk the complement graph. Positions: left i → node i, right j → node
    // |CA| + j.
    let nl = left_vertices.len();
    let total = nl + right_vertices.len();
    let degree = |node: usize| -> usize {
        if node < nl {
            missing_left[node].len()
        } else {
            missing_right[node - nl].len()
        }
    };
    let neighbors = |node: usize| -> Vec<usize> {
        if node < nl {
            missing_left[node]
                .iter()
                .map(|&v| nl + right_pos[v as usize])
                .collect()
        } else {
            missing_right[node - nl]
                .iter()
                .map(|&u| left_pos[u as usize])
                .collect()
        }
    };
    let to_local = |node: usize| -> LocalVertex {
        if node < nl {
            LocalVertex::left(left_vertices[node])
        } else {
            LocalVertex::right(right_vertices[node - nl])
        }
    };

    let mut visited = vec![false; total];
    let mut decomposition = Decomposition {
        components: Vec::new(),
        trivial_left: Vec::new(),
        trivial_right: Vec::new(),
    };

    // Trivial part (complement degree 0).
    #[allow(clippy::needless_range_loop)] // `node` indexes several parallel arrays
    for node in 0..total {
        if degree(node) == 0 {
            visited[node] = true;
            let lv = to_local(node);
            if lv.left {
                decomposition.trivial_left.push(lv.index);
            } else {
                decomposition.trivial_right.push(lv.index);
            }
        }
    }

    // Paths: start from every unvisited endpoint (degree 1).
    for start in 0..total {
        if visited[start] || degree(start) != 1 {
            continue;
        }
        let mut path = vec![start];
        visited[start] = true;
        let mut prev = usize::MAX;
        let mut cur = start;
        loop {
            let next = neighbors(cur)
                .into_iter()
                .find(|&n| n != prev && !visited[n]);
            match next {
                Some(n) => {
                    visited[n] = true;
                    path.push(n);
                    prev = cur;
                    cur = n;
                }
                None => break,
            }
        }
        let edges = path.len() - 1;
        let kind = if edges % 2 == 1 {
            ComponentKind::OddPath
        } else {
            ComponentKind::EvenPath
        };
        decomposition.components.push(Component {
            vertices: path.into_iter().map(to_local).collect(),
            kind,
        });
    }

    // Cycles: everything left has degree 2.
    for start in 0..total {
        if visited[start] {
            continue;
        }
        debug_assert_eq!(degree(start), 2);
        let mut cycle = vec![start];
        visited[start] = true;
        let mut prev = usize::MAX;
        let mut cur = start;
        loop {
            let next = neighbors(cur)
                .into_iter()
                .find(|&n| n != prev && !visited[n]);
            match next {
                Some(n) => {
                    visited[n] = true;
                    cycle.push(n);
                    prev = cur;
                    cur = n;
                }
                None => break,
            }
        }
        decomposition.components.push(Component {
            vertices: cycle.into_iter().map(to_local).collect(),
            kind: ComponentKind::Cycle,
        });
    }

    Some(decomposition)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_sets(nl: usize, nr: usize) -> (BitSet, BitSet) {
        (BitSet::full(nl), BitSet::full(nr))
    }

    #[test]
    fn complete_graph_is_all_trivial() {
        let g = LocalGraph::from_edges(3, 3, (0..3).flat_map(|u| (0..3).map(move |v| (u, v))));
        let (ca, cb) = full_sets(3, 3);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        assert!(d.components.is_empty());
        assert_eq!(d.trivial_left, vec![0, 1, 2]);
        assert_eq!(d.trivial_right, vec![0, 1, 2]);
    }

    #[test]
    fn single_missing_edge_is_odd_path() {
        // Complete 2x2 minus edge (0,0): complement is a single edge
        // L0-R0, an odd path of length 1.
        let g = LocalGraph::from_edges(2, 2, [(0, 1), (1, 0), (1, 1)]);
        let (ca, cb) = full_sets(2, 2);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].kind, ComponentKind::OddPath);
        assert_eq!(d.components[0].length(), 1);
        assert_eq!(d.trivial_left, vec![1]);
        assert_eq!(d.trivial_right, vec![1]);
    }

    #[test]
    fn even_path_detection() {
        // Complement edges: L0-R0, R0-L1 → even path with 2 edges.
        // Build complete 2x1 graph then remove nothing... easier: start
        // complete 2x2 and remove (0,0),(1,0): complement = L0-R0-L1 path.
        let g = LocalGraph::from_edges(2, 2, [(0, 1), (1, 1)]);
        let (ca, cb) = full_sets(2, 2);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        assert_eq!(d.components.len(), 1);
        let c = &d.components[0];
        assert_eq!(c.kind, ComponentKind::EvenPath);
        assert_eq!(c.length(), 2);
        assert_eq!(c.left_count(), 2);
        assert_eq!(c.right_count(), 1);
        assert_eq!(d.trivial_right, vec![1]);
    }

    #[test]
    fn four_cycle_detection() {
        // Complement = 4-cycle on 2+2 vertices ⇔ graph has no edges on
        // a 2x2... complement of empty 2x2 is complete 2x2 which is a
        // 4-cycle: L0-R0-L1-R1-L0.
        let g = LocalGraph::new(2, 2);
        let (ca, cb) = full_sets(2, 2);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].kind, ComponentKind::Cycle);
        assert_eq!(d.components[0].length(), 4);
    }

    #[test]
    fn rejects_three_missing() {
        // L0 misses all of 3 right vertices.
        let g = LocalGraph::from_edges(2, 3, [(1, 0), (1, 1), (1, 2)]);
        let (ca, cb) = full_sets(2, 3);
        assert!(decompose_missing(&g, &ca, &cb).is_none());
    }

    #[test]
    fn respects_candidate_restriction() {
        // L0 misses 3 right vertices overall but only 2 inside CB.
        let g = LocalGraph::from_edges(1, 4, [(0, 3)]);
        let ca = BitSet::full(1);
        let mut cb = BitSet::new(4);
        cb.insert(0);
        cb.insert(1);
        cb.insert(3);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        // Complement inside candidates: L0-R0, L0-R1 → even path R0-L0-R1.
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].kind, ComponentKind::EvenPath);
        assert_eq!(d.components[0].left_count(), 1);
        assert_eq!(d.components[0].right_count(), 2);
        assert_eq!(d.trivial_right, vec![3]);
    }

    #[test]
    fn empty_candidates() {
        let g = LocalGraph::new(3, 3);
        let ca = BitSet::new(3);
        let cb = BitSet::new(3);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        assert!(d.components.is_empty());
        assert!(d.trivial_left.is_empty());
        assert!(d.trivial_right.is_empty());
    }

    #[test]
    fn path_order_is_consecutive() {
        // Complement path of length 3: complete 2x2 minus edges
        // (0,0),(1,0),(1,1) → complement edges L0-R0, R0-L1, L1-R1.
        let g = LocalGraph::from_edges(2, 2, [(0, 1)]);
        let (ca, cb) = full_sets(2, 2);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        assert_eq!(d.components.len(), 1);
        let c = &d.components[0];
        assert_eq!(c.kind, ComponentKind::OddPath);
        // Adjacent path vertices must be complement edges, i.e. NON-edges
        // of the graph.
        for w in c.vertices.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert_ne!(a.left, b.left);
            let (u, v) = if a.left {
                (a.index, b.index)
            } else {
                (b.index, a.index)
            };
            assert!(!g.has_edge(u, v), "path edge {a:?}-{b:?} should be missing");
        }
    }

    #[test]
    fn six_cycle() {
        // Complement of C6: graph on 3+3 where each left i connects to
        // right j except j ∈ {i, i+1 mod 3} → complement is a 6-cycle.
        let mut g = LocalGraph::new(3, 3);
        for u in 0..3u32 {
            for v in 0..3u32 {
                if v != u && v != (u + 1) % 3 {
                    g.add_edge(u, v);
                }
            }
        }
        let (ca, cb) = full_sets(3, 3);
        let d = decompose_missing(&g, &ca, &cb).unwrap();
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].kind, ComponentKind::Cycle);
        assert_eq!(d.components[0].length(), 6);
        assert_eq!(d.components[0].left_count(), 3);
    }
}
