//! Property-based tests for the graph substrate.

use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::complement::decompose_missing;
use mbb_bigraph::core_decomp::core_decomposition;
use mbb_bigraph::graph::{sorted_intersection, BipartiteGraph, Vertex};
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::matching::{hopcroft_karp, minimum_vertex_cover};
use mbb_bigraph::two_hop::{all_n_le2_sizes, n2_neighbors};
use proptest::prelude::*;

fn graph_strategy(max_side: u32) -> impl Strategy<Value = BipartiteGraph> {
    (1..=max_side, 1..=max_side).prop_flat_map(move |(nl, nr)| {
        proptest::collection::vec((0..nl, 0..nr), 0..=(nl * nr) as usize)
            .prop_map(move |edges| BipartiteGraph::from_edges(nl, nr, edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn adjacency_is_symmetric(g in graph_strategy(12)) {
        for u in 0..g.num_left() as u32 {
            for &v in g.neighbors_left(u) {
                prop_assert!(g.neighbors_right(v).contains(&u));
            }
        }
        for v in 0..g.num_right() as u32 {
            for &u in g.neighbors_right(v) {
                prop_assert!(g.neighbors_left(u).contains(&v));
            }
        }
    }

    #[test]
    fn edge_count_consistent_between_sides(g in graph_strategy(12)) {
        let from_left: usize = (0..g.num_left() as u32).map(|u| g.degree_left(u)).sum();
        let from_right: usize = (0..g.num_right() as u32).map(|v| g.degree_right(v)).sum();
        prop_assert_eq!(from_left, g.num_edges());
        prop_assert_eq!(from_right, g.num_edges());
    }

    #[test]
    fn core_numbers_are_consistent(g in graph_strategy(10)) {
        let d = core_decomposition(&g);
        // Core number ≤ degree for every vertex.
        for v in g.vertices() {
            prop_assert!(d.core[g.global_id(v)] as usize <= g.degree(v));
        }
        // The k-core (k = degeneracy) is non-empty and has min degree ≥ k
        // inside itself.
        let k = d.degeneracy;
        let members: Vec<Vertex> = g
            .vertices()
            .filter(|&v| d.core[g.global_id(v)] >= k)
            .collect();
        if k > 0 {
            prop_assert!(!members.is_empty());
            for &v in &members {
                let inside = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| {
                        let wv = Vertex { side: v.side.opposite(), index: w };
                        d.core[g.global_id(wv)] >= k
                    })
                    .count();
                prop_assert!(inside >= k as usize, "{v} has {inside} < {k}");
            }
        }
    }

    #[test]
    fn bicore_definition_holds_for_max(g in graph_strategy(8)) {
        // The δ̈-bicore is non-empty and every member has |N≤2| ≥ δ̈ inside it.
        let d = bicore_decomposition(&g);
        if d.bidegeneracy == 0 { return Ok(()); }
        let k = d.bidegeneracy;
        let member = |v: Vertex, g_: &BipartiteGraph| d.bicore[g_.global_id(v)] >= k;
        let mut any = false;
        for v in g.vertices() {
            if !member(v, &g) { continue; }
            any = true;
            let n1 = g.neighbors(v).iter().filter(|&&w| {
                member(Vertex { side: v.side.opposite(), index: w }, &g)
            }).count();
            // 2-hop neighbours within the subgraph: need a common alive mid.
            let mut n2 = 0;
            for w in n2_neighbors(&g, v) {
                let wv = Vertex { side: v.side, index: w };
                if !member(wv, &g) { continue; }
                let common_alive = sorted_intersection(g.neighbors(v), g.neighbors(wv))
                    .iter()
                    .any(|&mid| member(Vertex { side: v.side.opposite(), index: mid }, &g));
                if common_alive { n2 += 1; }
            }
            prop_assert!(n1 + n2 >= k as usize, "{v}: {} < {k}", n1 + n2);
        }
        prop_assert!(any);
    }

    #[test]
    fn n_le2_sizes_match_pointwise(g in graph_strategy(10)) {
        let all = all_n_le2_sizes(&g);
        for v in g.vertices() {
            let expected = g.degree(v) + n2_neighbors(&g, v).len();
            prop_assert_eq!(all[g.global_id(v)], expected);
        }
    }

    #[test]
    fn matching_size_bounded_by_min_side(g in graph_strategy(12)) {
        let m = hopcroft_karp(&g);
        prop_assert!(m.size <= g.num_left().min(g.num_right()));
        // König: cover size equals matching size and covers all edges.
        let (lc, rc) = minimum_vertex_cover(&g, &m);
        for (u, v) in g.edges() {
            prop_assert!(lc[u as usize] || rc[v as usize]);
        }
        let cover: usize =
            lc.iter().filter(|&&c| c).count() + rc.iter().filter(|&&c| c).count();
        prop_assert_eq!(cover, m.size);
    }

    #[test]
    fn complement_decomposition_partitions_candidates(g in graph_strategy(8)) {
        // Restrict to candidate sets where the decomposition applies; when
        // it does, every candidate appears exactly once (trivial or in one
        // component).
        let ids_l: Vec<u32> = (0..g.num_left() as u32).collect();
        let ids_r: Vec<u32> = (0..g.num_right() as u32).collect();
        let local = LocalGraph::induced(&g, &ids_l, &ids_r);
        let ca = BitSet::full(local.num_left());
        let cb = BitSet::full(local.num_right());
        if let Some(d) = decompose_missing(&local, &ca, &cb) {
            let mut seen_l = vec![0u32; local.num_left()];
            let mut seen_r = vec![0u32; local.num_right()];
            for &u in &d.trivial_left { seen_l[u as usize] += 1; }
            for &v in &d.trivial_right { seen_r[v as usize] += 1; }
            for c in &d.components {
                for lv in &c.vertices {
                    if lv.left { seen_l[lv.index as usize] += 1; }
                    else { seen_r[lv.index as usize] += 1; }
                }
            }
            prop_assert!(seen_l.iter().all(|&c| c == 1), "{seen_l:?}");
            prop_assert!(seen_r.iter().all(|&c| c == 1), "{seen_r:?}");
        }
    }

    #[test]
    fn local_graph_matches_parent(g in graph_strategy(10)) {
        let ids_l: Vec<u32> = (0..g.num_left() as u32).step_by(2).collect();
        let ids_r: Vec<u32> = (0..g.num_right() as u32).step_by(2).collect();
        let local = LocalGraph::induced(&g, &ids_l, &ids_r);
        for (i, &l) in ids_l.iter().enumerate() {
            for (j, &r) in ids_r.iter().enumerate() {
                prop_assert_eq!(local.has_edge(i as u32, j as u32), g.has_edge(l, r));
            }
        }
    }

    #[test]
    fn io_roundtrip(g in graph_strategy(10)) {
        let mut buf = Vec::new();
        mbb_bigraph::io::write_edge_list(&g, &mut buf).unwrap();
        let back = mbb_bigraph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(back.has_edge(u, v));
        }
    }
}
