//! A minimal line-level Rust lexer: no syntax tree, no external parser —
//! just enough classification for the textual rules in [`crate::rules`].
//!
//! For every source line it separates **code** from **comments**, blanks
//! string/char-literal contents (so `"panic!"` in a log message never
//! trips a rule), and tracks whether the line sits inside a
//! `#[cfg(test)]` item. The classifier is deliberately conservative:
//! when a construct is ambiguous (exotic raw strings, macros generating
//! items) it errs toward classifying text as code, which can only make
//! the rules *stricter* — and every rule accepts an inline suppression
//! for the rare false positive.

/// One classified source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number.
    pub number: usize,
    /// The line's code with comments removed and string/char contents
    /// blanked to spaces (delimiters preserved).
    pub code: String,
    /// Concatenated text of any comments on the line (`//`, `///`,
    /// `//!`, and block-comment content), without the markers.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item (or the whole
    /// file was declared test-only, e.g. it lives under `tests/`).
    pub in_test: bool,
}

#[derive(PartialEq)]
enum Mode {
    Code,
    Str,
    RawStr { hashes: usize },
    BlockComment { depth: usize },
}

/// Splits `source` into classified lines. `whole_file_is_test` marks
/// every line as test code (integration-test files).
pub fn analyze(source: &str, whole_file_is_test: bool) -> Vec<SourceLine> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for (idx, raw) in source.lines().enumerate() {
        let (code, comment, next) = split_line(raw, mode);
        mode = next;
        out.push(SourceLine {
            number: idx + 1,
            code,
            comment,
            in_test: whole_file_is_test,
        });
    }
    if !whole_file_is_test {
        mark_test_regions(&mut out);
    }
    out
}

/// Processes one line under the carried-over `mode`, returning the code
/// text, comment text, and the mode the next line starts in.
fn split_line(raw: &str, mut mode: Mode) -> (String, String, Mode) {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;
    while i < chars.len() {
        match mode {
            Mode::BlockComment { depth } => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment { depth: depth - 1 }
                    };
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment { depth: depth + 1 };
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            Mode::Str => {
                if chars[i] == '\\' {
                    code.push(' ');
                    if i + 1 < chars.len() {
                        code.push(' ');
                    }
                    i += 2;
                } else if chars[i] == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment (incl. doc comments): strip markers,
                    // keep the text.
                    let mut j = i + 2;
                    while chars.get(j) == Some(&'/') || chars.get(j) == Some(&'!') {
                        j += 1;
                    }
                    comment.push_str(&chars[j..].iter().collect::<String>());
                    i = chars.len();
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment { depth: 1 };
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    // r"..." / r#"..."# / br"..." — skip prefix to the
                    // opening quote.
                    let mut j = i;
                    while chars[j] != '#' && chars[j] != '"' {
                        code.push(chars[j]);
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    code.push('"');
                    mode = Mode::RawStr { hashes };
                    i = j + 1;
                } else if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        code.push('\'');
                        for _ in i + 1..end {
                            code.push(' ');
                        }
                        code.push('\'');
                        i = end + 1;
                    } else {
                        // A lifetime — plain code.
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // Strings (multi-line literals stay open across the newline) and
    // block comments carry their mode to the next line; everything else
    // resets to code.
    (code, comment, mode)
}

fn closes_raw(chars: &[char], from: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(from + k) == Some(&'#'))
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r" r#" br" b" (b"..." is a plain byte string; handled by '"' arm)
    let at = |k: usize| chars.get(i + k).copied();
    let boundary = i == 0 || !chars[i - 1].is_alphanumeric() && chars[i - 1] != '_';
    if !boundary {
        return false;
    }
    match at(0) {
        Some('r') => matches!(at(1), Some('"') | Some('#')),
        Some('b') => at(1) == Some('r') && matches!(at(2), Some('"') | Some('#')),
        _ => false,
    }
}

/// If position `i` (a `'`) starts a char literal, returns the index of
/// its closing quote; `None` means it is a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: find the next unescaped quote.
            let mut j = i + 2;
            while j < chars.len() {
                if chars[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
    }
}

/// Second pass: walk brace depth through the code text and mark the
/// body of every `#[cfg(test)]` item. The attribute line itself, the
/// item header, and the whole brace-balanced block are all marked.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Depth at which each active test region closes.
    let mut regions: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        let mut in_test_here = pending_attr || !regions.is_empty();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        regions.push(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last().is_some_and(|&d| depth <= d) {
                        regions.pop();
                        in_test_here = true;
                    }
                }
                _ => {}
            }
        }
        line.in_test = in_test_here || pending_attr || !regions.is_empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        analyze(src, false).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_but_kept_as_comment_text() {
        let lines = analyze("let x = 1; // relaxed: fine\n", false);
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("relaxed"));
        assert!(lines[0].comment.contains("relaxed: fine"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = codes("let s = \"panic!(boom) .unwrap()\";\n");
        assert!(!c[0].contains("panic!"));
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("let s = \""));
    }

    #[test]
    fn raw_strings_and_hashes_are_blanked() {
        let c = codes("let s = r#\"Instant::now() \" inner\"#; x.unwrap();\n");
        assert!(!c[0].contains("Instant::now"));
        assert!(
            c[0].contains(".unwrap()"),
            "code after the literal kept: {}",
            c[0]
        );
    }

    #[test]
    fn multiline_strings_stay_open() {
        let c = codes("let s = \"line one\nline panic!(two)\";\nx.unwrap();\n");
        assert!(!c[1].contains("panic!"));
        assert!(c[2].contains(".unwrap()"));
    }

    #[test]
    fn block_comments_span_lines() {
        let lines = analyze("a(); /* hidden\npanic!() still hidden */ b();\n", false);
        assert!(!lines[1].code.contains("panic!"));
        assert!(lines[1].code.contains("b();"));
        assert!(lines[1].comment.contains("still hidden"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = codes("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(c[0].contains("fn f<'a>"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let c = codes("let c = '\"'; x.unwrap();\n");
        assert!(
            c[0].contains(".unwrap()"),
            "quote in char literal must not open a string: {}",
            c[0]
        );
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let lines = analyze(src, false);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "attribute line");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace");
        assert!(!lines[5].in_test, "code after the region");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lines = analyze("#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n", false);
        assert!(lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn whole_file_test_marks_everything() {
        let lines = analyze("fn anything() { x.unwrap(); }\n", true);
        assert!(lines.iter().all(|l| l.in_test));
    }
}
