//! The six workspace rules, each with a stable id used in diagnostics
//! and in `// mbb-lint: allow(<id>) <reason>` suppressions:
//!
//! * `relaxed-justify` — every `Ordering::Relaxed` in production code
//!   carries a `// relaxed:` justification comment (same line, or within
//!   [`JUSTIFY_WINDOW`] lines above the site's contiguous run).
//! * `wire-panic` — no panicking constructs in the wire-facing serve
//!   sources outside `#[cfg(test)]`.
//! * `hot-clock` — no raw `Instant::now()` / `thread::sleep` in solver
//!   hot-loop files; deadlines go through the sampled `SearchBudget`.
//! * `obs-hot-clock` — no span/timer construction (`obs::span*`,
//!   `obs::record*`, `Histogram::record_duration`, any `mbb_obs::` use)
//!   in the solver's inner-loop files; spans belong at stage
//!   boundaries (`solver.rs`, `engine.rs`), where one record covers
//!   millions of nodes.
//! * `lock-order` — lock classes from `docs/lock_order.txt` must be
//!   acquired in listed order within a function.
//! * `kernel-scalar` — in kernel-hot solver files, an `.intersect_with(`
//!   followed within [`KERNEL_WINDOW`] lines by `.len()` on the same
//!   receiver must be fused into one kernel pass
//!   (`BitSet::and_assign_count` / `intersection_len`).
//!
//! Plus `suppression-reason`, emitted when a suppression comment omits
//! its mandatory reason text.

use crate::lexer::SourceLine;

/// How many code (or blank) lines above a `Ordering::Relaxed` run a
/// `// relaxed:` comment may sit and still justify it. Comment-only
/// lines are free — a long justification block never pushes its own
/// first line out of the window. Four code lines accommodate the
/// builder-style `self.counters.x.fetch_add(...)` expressions that wrap
/// across lines.
pub const JUSTIFY_WINDOW: usize = 4;

/// One diagnostic. Rendered as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id.
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One class in the lock-order contract (see `docs/lock_order.txt`).
#[derive(Debug, Clone)]
pub struct LockClass {
    pub name: String,
    pub patterns: Vec<String>,
}

/// Parses `docs/lock_order.txt`: one `name: pat | pat` line per class,
/// `#` comments and blank lines ignored. Order of appearance IS the
/// acquisition order.
pub fn parse_lock_order(text: &str) -> Result<Vec<LockClass>, String> {
    let mut classes = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, rest)) = line.split_once(':') else {
            return Err(format!(
                "lock_order.txt:{}: expected `name: patterns`",
                i + 1
            ));
        };
        let patterns: Vec<String> = rest
            .split('|')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect();
        if patterns.is_empty() {
            return Err(format!("lock_order.txt:{}: class with no patterns", i + 1));
        }
        classes.push(LockClass {
            name: name.trim().to_string(),
            patterns,
        });
    }
    Ok(classes)
}

/// The result of checking a candidate finding against the suppression
/// comments around it.
enum Suppression {
    /// No suppression — report the finding.
    None,
    /// Valid `allow` with a reason — drop the finding.
    Allowed,
    /// `allow` present but reason missing — report *that* instead.
    MissingReason(usize),
}

/// Looks for `mbb-lint: allow(<rule>)` in the comments of `line` and the
/// line directly above it. The text after the closing paren is the
/// mandatory reason.
fn suppression(lines: &[SourceLine], idx: usize, rule: &str) -> Suppression {
    let needle = format!("mbb-lint: allow({rule})");
    for look in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
        let comment = &lines[look].comment;
        if let Some(at) = comment.find(&needle) {
            let reason = comment[at + needle.len()..].trim();
            return if reason.is_empty() {
                Suppression::MissingReason(lines[look].number)
            } else {
                Suppression::Allowed
            };
        }
    }
    Suppression::None
}

/// Pushes `candidate` unless suppressed; a reason-less suppression is
/// itself a finding.
fn emit(lines: &[SourceLine], idx: usize, candidate: Finding, out: &mut Vec<Finding>) {
    match suppression(lines, idx, candidate.rule) {
        Suppression::None => out.push(candidate),
        Suppression::Allowed => {}
        Suppression::MissingReason(line) => out.push(Finding {
            file: candidate.file,
            line,
            rule: "suppression-reason",
            message: format!(
                "suppression for `{}` must state a reason after the closing paren",
                candidate.rule
            ),
        }),
    }
}

/// `relaxed-justify`: every production `Ordering::Relaxed` needs a
/// `relaxed:` comment on the same line, or within [`JUSTIFY_WINDOW`]
/// lines above the start of its contiguous run of Relaxed lines (so one
/// comment covers a block of consecutive sites, e.g. a stats snapshot).
pub fn check_relaxed_justify(file: &str, lines: &[SourceLine], out: &mut Vec<Finding>) {
    for idx in 0..lines.len() {
        let line = &lines[idx];
        if line.in_test || !line.code.contains("Ordering::Relaxed") {
            continue;
        }
        if line.comment.contains("relaxed:") {
            continue;
        }
        // Walk to the start of the contiguous run of Relaxed lines.
        let mut start = idx;
        while start > 0 && lines[start - 1].code.contains("Ordering::Relaxed") {
            start -= 1;
        }
        // Scan upward: comment-only lines are free, code/blank lines
        // consume the window.
        let mut justified = false;
        let mut budget = JUSTIFY_WINDOW;
        let mut j = start;
        while j > 0 && budget > 0 {
            j -= 1;
            if lines[j].comment.contains("relaxed:") {
                justified = true;
                break;
            }
            let comment_only = lines[j].code.trim().is_empty() && !lines[j].comment.is_empty();
            if !comment_only {
                budget -= 1;
            }
        }
        if justified {
            continue;
        }
        emit(
            lines,
            idx,
            Finding {
                file: file.to_string(),
                line: line.number,
                rule: "relaxed-justify",
                message: "Ordering::Relaxed without a `// relaxed:` justification \
                          (same line or in a comment just above the site)"
                    .to_string(),
            },
            out,
        );
    }
}

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// `wire-panic`: wire-facing serve code must degrade to error lines, not
/// abort the worker. Applies to non-test lines of the configured files.
pub fn check_wire_panic(file: &str, lines: &[SourceLine], out: &mut Vec<Finding>) {
    for idx in 0..lines.len() {
        let line = &lines[idx];
        if line.in_test {
            continue;
        }
        for token in PANIC_TOKENS {
            if line.code.contains(token) {
                emit(
                    lines,
                    idx,
                    Finding {
                        file: file.to_string(),
                        line: line.number,
                        rule: "wire-panic",
                        message: format!(
                            "`{token}` in wire-facing serve code — return a typed \
                             ServeError / emit an error line instead of panicking"
                        ),
                    },
                    out,
                );
                break; // one diagnostic per line is enough
            }
        }
    }
}

const CLOCK_TOKENS: [&str; 2] = ["Instant::now(", "thread::sleep("];

/// `hot-clock`: solver hot loops must consult the sampled `SearchBudget`
/// rather than the raw wall clock (one `Instant::now()` per node is a
/// measurable tax; `thread::sleep` has no business in a search at all).
pub fn check_hot_clock(file: &str, lines: &[SourceLine], out: &mut Vec<Finding>) {
    for idx in 0..lines.len() {
        let line = &lines[idx];
        if line.in_test {
            continue;
        }
        for token in CLOCK_TOKENS {
            if line.code.contains(token) {
                emit(
                    lines,
                    idx,
                    Finding {
                        file: file.to_string(),
                        line: line.number,
                        rule: "hot-clock",
                        message: format!(
                            "raw `{token})` in a solver hot-loop file — route deadlines \
                             through the sampled SearchBudget (crates/core/src/budget.rs)"
                        ),
                    },
                    out,
                );
                break;
            }
        }
    }
}

/// Span/timer constructions that have no business inside the per-node
/// loops: each one is a clock read (or two) plus a ring push.
const OBS_TOKENS: [&str; 6] = [
    "obs::span(",
    "obs::span_for(",
    "obs::record(",
    "obs::record_for(",
    ".record_duration(",
    "mbb_obs",
];

/// `obs-hot-clock`: the observability facade is cheap, but not
/// per-search-node cheap — a span is two `Instant::now()` calls and a
/// ring push. In the solver's inner-loop files every line runs millions
/// of times, so instrumentation must stay at the stage boundaries one
/// level up. Same suppression mechanics as `hot-clock`.
pub fn check_obs_hot_clock(file: &str, lines: &[SourceLine], out: &mut Vec<Finding>) {
    for idx in 0..lines.len() {
        let line = &lines[idx];
        if line.in_test {
            continue;
        }
        for token in OBS_TOKENS {
            if line.code.contains(token) {
                emit(
                    lines,
                    idx,
                    Finding {
                        file: file.to_string(),
                        line: line.number,
                        rule: "obs-hot-clock",
                        message: format!(
                            "`{token}..` in a solver inner-loop file — record the span \
                             at the stage boundary (solver.rs/engine.rs) instead; a \
                             per-node span is a clock read plus a ring push"
                        ),
                    },
                    out,
                );
                break;
            }
        }
    }
}

/// `lock-order`: within one function, after a **held** (`let`-bound)
/// acquisition of a later class, any acquisition of an earlier class is
/// a violation. Transient acquisitions (guard dropped within its own
/// statement, e.g. `x.state.lock().n += 1;`) never count as held but do
/// count as acquisitions.
pub fn check_lock_order(
    file: &str,
    lines: &[SourceLine],
    classes: &[LockClass],
    out: &mut Vec<Finding>,
) {
    // (class index, line number) of held acquisitions in the current fn.
    let mut held: Vec<(usize, usize)> = Vec::new();
    for idx in 0..lines.len() {
        let line = &lines[idx];
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        // Function boundary heuristic: a new `fn` resets the held set.
        if code.contains("fn ") && code.contains('(') {
            held.clear();
        }
        for (ci, class) in classes.iter().enumerate() {
            if !class.patterns.iter().any(|p| line.code.contains(p)) {
                continue;
            }
            if let Some(&(hi, hline)) = held.iter().find(|&&(hi, _)| hi > ci) {
                emit(
                    lines,
                    idx,
                    Finding {
                        file: file.to_string(),
                        line: line.number,
                        rule: "lock-order",
                        message: format!(
                            "`{}` acquired while `{}` (line {}) is held — \
                             docs/lock_order.txt requires the reverse order",
                            class.name, classes[hi].name, hline
                        ),
                    },
                    out,
                );
            }
            // `let`-bound guards are held for the rest of the function.
            if code.starts_with("let ") && !held.iter().any(|&(hi, _)| hi == ci) {
                held.push((ci, line.number));
            }
        }
    }
}

/// How many lines after an `.intersect_with(` call a `.len()` on the same
/// receiver still reads as the unfused two-pass idiom. Four lines cover
/// the `let mut x = y.clone(); x.intersect_with(&z); ... x.len()` shape
/// without reaching into unrelated code further down.
pub const KERNEL_WINDOW: usize = 4;

/// The identifier (or field) the method-call text in `s` ends with.
fn trailing_ident(s: &str) -> &str {
    let trimmed = s.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    &trimmed[start..]
}

/// `kernel-scalar`: in kernel-hot solver files, `x.intersect_with(y)`
/// followed shortly by `x.len()` walks the words twice where the fused
/// kernels (`BitSet::and_assign_count`, `intersection_len`) do one pass —
/// exactly the split the kernel layer exists to remove.
pub fn check_kernel_scalar(file: &str, lines: &[SourceLine], out: &mut Vec<Finding>) {
    for idx in 0..lines.len() {
        let line = &lines[idx];
        if line.in_test {
            continue;
        }
        let Some(at) = line.code.find(".intersect_with(") else {
            continue;
        };
        let recv = trailing_ident(&line.code[..at]);
        if recv.is_empty() {
            continue;
        }
        let needle = format!("{recv}.len()");
        let end = (idx + 1 + KERNEL_WINDOW).min(lines.len());
        for later in idx..end {
            // On the intersect line itself only the text after the call
            // counts (a preceding `x.len()` is not the unfused pair).
            let code: &str = if later == idx {
                &line.code[at..]
            } else {
                &lines[later].code
            };
            if lines[later].in_test || !code.contains(&needle) {
                continue;
            }
            emit(
                lines,
                idx,
                Finding {
                    file: file.to_string(),
                    line: line.number,
                    rule: "kernel-scalar",
                    message: format!(
                        "`{recv}.intersect_with(..)` followed by `{needle}` (line {}) — \
                         fuse into one kernel pass via `BitSet::and_assign_count` or \
                         `intersection_len` (crates/bigraph/src/kernels.rs)",
                        lines[later].number
                    ),
                },
                out,
            );
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;

    fn run(src: &str, rule: fn(&str, &[SourceLine], &mut Vec<Finding>)) -> Vec<Finding> {
        let lines = analyze(src, false);
        let mut out = Vec::new();
        rule("t.rs", &lines, &mut out);
        out
    }

    #[test]
    fn relaxed_needs_justification() {
        let bad = run("x.load(Ordering::Relaxed);\n", check_relaxed_justify);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "relaxed-justify");
        let good = run(
            "x.load(Ordering::Relaxed); // relaxed: monotonic counter\n",
            check_relaxed_justify,
        );
        assert!(good.is_empty());
    }

    #[test]
    fn relaxed_comment_above_covers_a_run() {
        let src = "// relaxed: stats snapshot, advisory only\nS {\n  a: x.load(Ordering::Relaxed),\n  b: y.load(Ordering::Relaxed),\n  c: z.load(Ordering::Relaxed),\n}\n";
        assert!(run(src, check_relaxed_justify).is_empty());
    }

    #[test]
    fn relaxed_comment_too_far_above_does_not_count() {
        let src = "// relaxed: too far\nlet a = 1;\nlet b = 2;\nlet c = 3;\nlet d = 4;\nx.load(Ordering::Relaxed);\n";
        assert_eq!(run(src, check_relaxed_justify).len(), 1);
    }

    #[test]
    fn long_comment_blocks_do_not_exhaust_the_window() {
        let src = "// relaxed: first line of a long\n// justification block that\n// spans five\n// comment\n// lines\nx.load(Ordering::Relaxed);\n";
        assert!(run(src, check_relaxed_justify).is_empty());
    }

    #[test]
    fn relaxed_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { x.load(Ordering::Relaxed); }\n}\n";
        assert!(run(src, check_relaxed_justify).is_empty());
    }

    #[test]
    fn wire_panic_flags_each_construct() {
        for token in [
            "x.unwrap();",
            "x.expect(\"m\");",
            "panic!(\"m\");",
            "todo!();",
        ] {
            let got = run(&format!("fn f() {{ {token} }}\n"), check_wire_panic);
            assert_eq!(got.len(), 1, "{token}");
            assert_eq!(got[0].rule, "wire-panic");
        }
        assert!(run("fn f() { x.unwrap_or(0); }\n", check_wire_panic).is_empty());
    }

    #[test]
    fn panic_inside_string_is_ignored() {
        let src = "fn f() { log(\"do not panic!(now)\"); }\n";
        assert!(run(src, check_wire_panic).is_empty());
    }

    #[test]
    fn hot_clock_flags_instant_and_sleep() {
        let got = run("let t = Instant::now();\n", check_hot_clock);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "hot-clock");
        let got = run("std::thread::sleep(d);\n", check_hot_clock);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src =
            "// mbb-lint: allow(hot-clock) stage timing, not a hot loop\nlet t = Instant::now();\n";
        assert!(run(src, check_hot_clock).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_its_own_finding() {
        let src = "let t = Instant::now(); // mbb-lint: allow(hot-clock)\n";
        let got = run(src, check_hot_clock);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "suppression-reason");
    }

    #[test]
    fn suppression_for_other_rule_does_not_silence() {
        let src = "// mbb-lint: allow(wire-panic) unrelated\nlet t = Instant::now();\n";
        let got = run(src, check_hot_clock);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "hot-clock");
    }

    #[test]
    fn obs_hot_clock_flags_span_and_record_constructions() {
        for src in [
            "let _s = obs::span(obs::Stage::Dense);\n",
            "let _s = obs::span_for(obs::Stage::Dense, id, conn);\n",
            "obs::record(obs::Stage::Dense, start, end);\n",
            "obs::record_for(obs::Stage::Dense, start, end, id, conn);\n",
            "self.hist.record_duration(elapsed);\n",
            "use mbb_obs as obs;\n",
        ] {
            let got = run(src, check_obs_hot_clock);
            assert_eq!(got.len(), 1, "{src}");
            assert_eq!(got[0].rule, "obs-hot-clock");
        }
    }

    #[test]
    fn obs_hot_clock_ignores_unrelated_code_and_tests() {
        assert!(run("let n = self.records.len();\n", check_obs_hot_clock).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n  fn t() { obs::record(s, a, b); }\n}\n";
        assert!(run(in_test, check_obs_hot_clock).is_empty());
    }

    #[test]
    fn obs_hot_clock_suppression_with_reason() {
        let src = "// mbb-lint: allow(obs-hot-clock) outer per-centre loop, bounded fan-out\n\
                   obs::record(obs::Stage::BridgeCentre, start, end);\n";
        assert!(run(src, check_obs_hot_clock).is_empty());
        let bare = "obs::record(s, a, b); // mbb-lint: allow(obs-hot-clock)\n";
        let got = run(bare, check_obs_hot_clock);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "suppression-reason");
    }

    fn classes() -> Vec<LockClass> {
        parse_lock_order(
            "engine-rwlock: .engine.read( | .engine.write(\nqueue-mutex: .state.lock(\n",
        )
        .unwrap()
    }

    #[test]
    fn lock_order_contract_parses() {
        let c = classes();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].name, "engine-rwlock");
        assert_eq!(c[1].patterns, vec![".state.lock("]);
        assert!(parse_lock_order("garbage without colon\n").is_err());
    }

    #[test]
    fn lock_inversion_is_flagged() {
        let src = "fn f(&self) {\n  let q = self.state.lock();\n  let e = self.engine.read();\n}\n";
        let lines = analyze(src, false);
        let mut out = Vec::new();
        check_lock_order("t.rs", &lines, &classes(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "lock-order");
        assert!(out[0].message.contains("engine-rwlock"));
    }

    #[test]
    fn correct_order_and_transient_guards_pass() {
        let ok = "fn f(&self) {\n  let e = self.engine.read();\n  let q = self.state.lock();\n}\n";
        let transient =
            "fn f(&self) {\n  self.state.lock().n += 1;\n  let e = self.engine.read();\n}\n";
        for src in [ok, transient] {
            let lines = analyze(src, false);
            let mut out = Vec::new();
            check_lock_order("t.rs", &lines, &classes(), &mut out);
            assert!(out.is_empty(), "{src}");
        }
    }

    #[test]
    fn kernel_scalar_flags_unfused_pair() {
        let src =
            "let mut row = base.clone();\nrow.intersect_with(&cand);\nif row.len() > best {\n";
        let got = run(src, check_kernel_scalar);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "kernel-scalar");
        assert_eq!(got[0].line, 2);
        assert!(
            got[0].message.contains("and_assign_count"),
            "{}",
            got[0].message
        );
    }

    #[test]
    fn kernel_scalar_flags_same_line_pair() {
        let src = "row.intersect_with(&cand); let n = row.len();\n";
        assert_eq!(run(src, check_kernel_scalar).len(), 1);
    }

    #[test]
    fn kernel_scalar_requires_matching_receiver() {
        let src = "row.intersect_with(&cand);\nif other.len() > best {\n";
        assert!(run(src, check_kernel_scalar).is_empty());
    }

    #[test]
    fn kernel_scalar_window_is_bounded() {
        let src = "row.intersect_with(&cand);\nlet a = 1;\nlet b = 2;\nlet c = 3;\nlet d = 4;\nif row.len() > best {\n";
        assert!(run(src, check_kernel_scalar).is_empty());
    }

    #[test]
    fn kernel_scalar_ignores_fused_calls_and_tests() {
        let fused = "let n = row.and_assign_count(&cand);\n";
        assert!(run(fused, check_kernel_scalar).is_empty());
        let in_test =
            "#[cfg(test)]\nmod tests {\n  fn t() { row.intersect_with(&c);\n  row.len(); }\n}\n";
        assert!(run(in_test, check_kernel_scalar).is_empty());
    }

    #[test]
    fn kernel_scalar_suppression_with_reason() {
        let src = "// mbb-lint: allow(kernel-scalar) cold path, clarity wins\nrow.intersect_with(&cand);\nlet n = row.len();\n";
        assert!(run(src, check_kernel_scalar).is_empty());
    }

    #[test]
    fn fn_boundary_resets_held_locks() {
        let src = "fn a(&self) {\n  let q = self.state.lock();\n}\nfn b(&self) {\n  let e = self.engine.read();\n}\n";
        let lines = analyze(src, false);
        let mut out = Vec::new();
        check_lock_order("t.rs", &lines, &classes(), &mut out);
        assert!(out.is_empty());
    }
}
