//! `mbb-lint` — the workspace's self-contained static-analysis pass.
//!
//! Run from anywhere in the workspace:
//!
//! ```text
//! cargo run -p mbb-lint -- --workspace
//! ```
//!
//! No external parser, no network, no extra dependencies: a line-level
//! lexer ([`lexer`]) feeds six textual rules ([`rules`]) tuned to this
//! codebase's concurrency conventions. Diagnostics print one per line as
//! `file:line: [rule-id] message`; the exit code is non-zero when any
//! finding survives its suppressions, so CI can gate on it.
//!
//! Suppress a single site with `// mbb-lint: allow(<rule-id>) <reason>`
//! on the same line or the line directly above — the reason is
//! mandatory. See `docs/CONCURRENCY.md` for the rule catalogue and how
//! to add a rule.

mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::{Finding, LockClass};

/// Wire-facing serve sources: a panic here kills a worker serving a
/// socket/stdin session instead of producing an error line.
const WIRE_FILES: [&str; 4] = [
    "crates/serve/src/jsonl.rs",
    "crates/serve/src/stream.rs",
    "crates/serve/src/socket.rs",
    "crates/serve/src/mux.rs",
];

/// Solver hot-loop files: per-node work lives here, so raw wall-clock
/// reads belong behind the sampled `SearchBudget`.
const HOT_LOOP_FILES: [&str; 3] = [
    "crates/core/src/enumerate.rs",
    "crates/core/src/enumerate_scoped.rs",
    "crates/core/src/solver.rs",
];

/// Solver inner-loop files: span/timer construction here would run per
/// search node — instrumentation stays at the stage boundaries one
/// level up (`solver.rs`, `engine.rs`).
const OBS_HOT_FILES: [&str; 3] = [
    "crates/core/src/dense.rs",
    "crates/core/src/enumerate.rs",
    "crates/core/src/enumerate_scoped.rs",
];

/// Kernel-hot solver files: bitset intersect+len pairs here must go
/// through the fused kernel layer (`crates/bigraph/src/kernels.rs`), not
/// two passes over the words.
const KERNEL_FILES: [&str; 2] = ["crates/core/src/dense.rs", "crates/core/src/verify.rs"];

fn usage() -> &'static str {
    "usage: mbb-lint [--workspace] [--root <dir>]\n\n\
     Scans the workspace's crates/ tree (skipping vendor/ and target/)\n\
     and reports rule findings as `file:line: [rule-id] message`.\n\
     Exits 1 when any finding is reported.\n\n\
     options:\n\
       --workspace    scan the whole workspace (the default; accepted\n\
                      for symmetry with cargo's own flags)\n\
       --root <dir>   workspace root to scan (default: the root this\n\
                      binary was built in)"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("mbb-lint: --root needs a directory\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mbb-lint: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace this binary was compiled from —
    // CARGO_MANIFEST_DIR is crates/lint, two levels below the root.
    let root = root.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    match run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("mbb-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("mbb-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("mbb-lint: {message}");
            ExitCode::from(2)
        }
    }
}

/// Scans `root` and returns all findings, sorted by file then line.
fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let lock_order_path = root.join("docs/lock_order.txt");
    let lock_classes: Vec<LockClass> = match std::fs::read_to_string(&lock_order_path) {
        Ok(text) => rules::parse_lock_order(&text)?,
        Err(e) => {
            return Err(format!(
                "cannot read {} ({e}) — the lock-order contract is part of the \
                 workspace and must exist",
                lock_order_path.display()
            ))
        }
    };

    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    collect_rust_files(&crates_dir, &mut files)
        .map_err(|e| format!("walking {}: {e}", crates_dir.display()))?;
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path).map_err(|e| format!("reading {rel}: {e}"))?;
        // Integration tests and benches are test code wholesale.
        let whole_file_is_test = rel.split('/').any(|c| c == "tests" || c == "benches");
        let lines = lexer::analyze(&source, whole_file_is_test);

        rules::check_relaxed_justify(&rel, &lines, &mut findings);
        if WIRE_FILES.contains(&rel.as_str()) {
            rules::check_wire_panic(&rel, &lines, &mut findings);
        }
        if HOT_LOOP_FILES.contains(&rel.as_str()) {
            rules::check_hot_clock(&rel, &lines, &mut findings);
        }
        if OBS_HOT_FILES.contains(&rel.as_str()) {
            rules::check_obs_hot_clock(&rel, &lines, &mut findings);
        }
        if KERNEL_FILES.contains(&rel.as_str()) {
            rules::check_kernel_scalar(&rel, &lines, &mut findings);
        }
        rules::check_lock_order(&rel, &lines, &lock_classes, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Recursively collects `.rs` files, skipping build output, vendored
/// dependencies, and VCS metadata.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git") {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: the shipped workspace must lint clean — this is the
    /// same invariant CI enforces via `cargo run -p mbb-lint`.
    #[test]
    fn shipped_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = run(&root).expect("lint run succeeds");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn missing_lock_order_contract_is_an_error() {
        let err = run(Path::new("/nonexistent-root")).unwrap_err();
        assert!(err.contains("lock_order"), "{err}");
    }
}
