//! Maximum **edge** biclique (MEB) — the related problem of §7.
//!
//! Maximise `|A| · |B|` over bicliques, with no balance constraint. NP-hard
//! like MBB; included as an extension because the three biclique objectives
//! (vertex / edge / balanced) are easy to confuse and instructive to
//! contrast:
//!
//! * MVB (max `|A| + |B|`) — polynomial, [`mbb_bigraph::matching`];
//! * MEB (max `|A| · |B|`) — NP-hard, this module;
//! * MBB (max `min(|A|, |B|)`) — NP-hard, the rest of this crate.
//!
//! The solver is a left-subset branch and bound with the product bound
//! `(|A| + |cand|) · |common|`, suitable for small and medium graphs.

use mbb_bigraph::graph::{sorted_intersection, BipartiteGraph};

use crate::budget::SearchBudget;

/// An edge-maximal biclique witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeBiclique {
    /// Left vertices, sorted.
    pub left: Vec<u32>,
    /// Right vertices, sorted.
    pub right: Vec<u32>,
}

impl EdgeBiclique {
    /// The edge count `|A| · |B|`.
    pub fn edges(&self) -> usize {
        self.left.len() * self.right.len()
    }
}

/// Exact maximum edge biclique by branch and bound over left subsets.
///
/// A biclique with one empty side has zero edges, so the empty biclique is
/// returned only for edgeless graphs.
///
/// ```
/// use mbb_bigraph::graph::BipartiteGraph;
/// use mbb_core::meb::maximum_edge_biclique;
/// // A 1×4 star beats any balanced block on edges.
/// let g = BipartiteGraph::from_edges(2, 4, [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0)])?;
/// assert_eq!(maximum_edge_biclique(&g).edges(), 4);
/// # Ok::<(), mbb_bigraph::graph::GraphError>(())
/// ```
pub fn maximum_edge_biclique(graph: &BipartiteGraph) -> EdgeBiclique {
    maximum_edge_biclique_budgeted(graph, &SearchBudget::unlimited())
}

/// [`maximum_edge_biclique`] under a [`SearchBudget`]: returns the best
/// edge biclique found before the budget expired.
pub fn maximum_edge_biclique_budgeted(
    graph: &BipartiteGraph,
    budget: &SearchBudget,
) -> EdgeBiclique {
    let mut state = MebSearcher {
        graph,
        best: EdgeBiclique {
            left: Vec::new(),
            right: Vec::new(),
        },
        best_edges: 0,
        budget: budget.clone(),
    };
    // Left vertices in degree-descending order: large stars early give a
    // strong initial product bound.
    let mut candidates: Vec<u32> = (0..graph.num_left() as u32).collect();
    candidates.sort_by_key(|&u| std::cmp::Reverse(graph.degree_left(u)));
    let all_right: Vec<u32> = (0..graph.num_right() as u32).collect();
    state.expand(&mut Vec::new(), &all_right, &candidates);
    state.best
}

struct MebSearcher<'g> {
    graph: &'g BipartiteGraph,
    best: EdgeBiclique,
    best_edges: usize,
    budget: SearchBudget,
}

impl MebSearcher<'_> {
    fn expand(&mut self, chosen: &mut Vec<u32>, common: &[u32], candidates: &[u32]) {
        if self.budget.is_exhausted() {
            return;
        }
        let edges = chosen.len() * common.len();
        if edges > self.best_edges {
            self.best_edges = edges;
            let mut left = chosen.clone();
            left.sort_unstable();
            self.best = EdgeBiclique {
                left,
                right: common.to_vec(),
            };
        }
        // Product bound: even taking every remaining candidate cannot beat
        // the incumbent if the current common neighbourhood is too small.
        if (chosen.len() + candidates.len()) * common.len() <= self.best_edges {
            return;
        }
        for (i, &u) in candidates.iter().enumerate() {
            let next = sorted_intersection(common, self.graph.neighbors_left(u));
            if next.is_empty() {
                continue;
            }
            if (chosen.len() + candidates.len() - i) * next.len() <= self.best_edges {
                continue;
            }
            chosen.push(u);
            self.expand(chosen, &next, &candidates[i + 1..]);
            chosen.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    fn brute_meb_edges(graph: &BipartiteGraph) -> usize {
        let nl = graph.num_left();
        assert!(nl <= 16);
        let mut best = 0usize;
        for mask in 1u32..(1 << nl) {
            let mut common: Option<Vec<u32>> = None;
            let mut size = 0usize;
            for u in 0..nl as u32 {
                if mask >> u & 1 == 1 {
                    size += 1;
                    let n = graph.neighbors_left(u);
                    common = Some(match common {
                        None => n.to_vec(),
                        Some(c) => sorted_intersection(&c, n),
                    });
                }
            }
            best = best.max(size * common.map_or(0, |c| c.len()));
        }
        best
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..12u64 {
            let g = generators::uniform_edges(10, 10, 45, seed);
            let found = maximum_edge_biclique(&g);
            assert_eq!(found.edges(), brute_meb_edges(&g), "seed {seed}");
            assert!(g.is_biclique(&found.left, &found.right));
        }
    }

    #[test]
    fn star_is_the_meb_of_a_star() {
        let g = BipartiteGraph::from_edges(1, 9, (0..9).map(|v| (0, v))).unwrap();
        let found = maximum_edge_biclique(&g);
        assert_eq!(found.edges(), 9);
        assert_eq!(found.left, vec![0]);
    }

    #[test]
    fn complete_graph_takes_everything() {
        let g = generators::complete(4, 6);
        let found = maximum_edge_biclique(&g);
        assert_eq!(found.edges(), 24);
    }

    #[test]
    fn empty_graph_has_empty_meb() {
        let g = BipartiteGraph::from_edges(3, 3, []).unwrap();
        assert_eq!(maximum_edge_biclique(&g).edges(), 0);
    }

    #[test]
    fn meb_dominates_mbb_in_edges() {
        // k×k balanced biclique has k² edges ≤ MEB edges.
        for seed in 0..8u64 {
            let g = generators::uniform_edges(12, 12, 70, seed);
            let mbb = crate::MbbSolver::new().solve(&g).biclique;
            let meb = maximum_edge_biclique(&g);
            assert!(
                meb.edges() >= mbb.half_size() * mbb.half_size(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn meb_vs_mvb_objectives_differ() {
        // A star maximises edges with a 1×n shape while MVB picks the same
        // set; on a star plus a separate 2×2 block the objectives diverge.
        let mut edges: Vec<(u32, u32)> = (0..6).map(|v| (0, v)).collect();
        edges.extend([(1, 6), (1, 7), (2, 6), (2, 7)]);
        let g = BipartiteGraph::from_edges(3, 8, edges).unwrap();
        let meb = maximum_edge_biclique(&g);
        assert_eq!(meb.edges(), 6, "star wins on edges");
        let mbb = crate::MbbSolver::new().solve(&g).biclique;
        assert_eq!(mbb.half_size(), 2, "2x2 block wins on balance");
    }
}
