//! Exact maximum balanced biclique (MBB) search.
//!
//! Implementation of "Efficient Exact Algorithms for Maximum Balanced
//! Biclique Search in Bipartite Graphs" (Chen, Liu, Zhou, Xu, Li —
//! SIGMOD/PVLDB 2021):
//!
//! * [`basic::basic_bb`] — Algorithm 1, the O*(2ⁿ) alternating enumeration;
//! * [`poly::dynamic_mbb`] — Algorithm 2, the polynomial solver for
//!   near-complete subgraphs (Lemma 3);
//! * [`dense::dense_mbb`] — Algorithm 3, `denseMBB`, O*(1.3803ⁿ);
//! * [`heuristic::hmbb`] — Algorithm 5, heuristics + Lemma 4/5 reduction;
//! * [`bridge::bridge_mbb`] — Algorithm 6, vertex-centred decomposition;
//! * [`verify::verify_mbb`] — Algorithm 8, maximality verification;
//! * [`solver::MbbSolver`] — Algorithm 4, the `hbvMBB` framework,
//!   O*(1.3803^δ̈) with every Table 3 ablation exposed.
//!
//! Beyond the paper: [`enumerate`] / [`enumerate_scoped`] (maximal
//! biclique enumeration with real maximality checking), [`topk`],
//! [`anchored`] (per-vertex/per-edge queries), [`incremental`]
//! (warm-started maintenance over edge streams), [`weighted`]
//! (vertex-weighted variant), [`frontier`] (the feasible-size Pareto
//! frontier), [`size_constrained`] and [`meb`].
//!
//! # Quickstart
//!
//! ```
//! use mbb_bigraph::graph::BipartiteGraph;
//! use mbb_core::solver::solve_mbb;
//!
//! // The sparse example of the paper's Figure 1(b): the MBB is
//! // ({3, 4}, {9, 10}) — half-size 2.
//! let g = BipartiteGraph::from_edges(
//!     6, 6,
//!     [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (2, 3),
//!      (3, 2), (3, 3), (4, 2), (4, 3), (5, 4), (5, 5)],
//! )?;
//! let mbb = solve_mbb(&g);
//! assert_eq!(mbb.half_size(), 2);
//! # Ok::<(), mbb_bigraph::graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod anchored;
pub mod basic;
pub mod biclique;
pub mod bridge;
pub mod dense;
pub mod enumerate;
pub mod enumerate_scoped;
pub mod frontier;
pub mod heuristic;
pub mod incremental;
pub mod meb;
pub mod poly;
pub mod reduce;
pub mod size_constrained;
pub mod solver;
pub mod stats;
#[cfg(test)]
pub(crate) mod testutil;
pub mod topk;
pub mod verify;
pub mod weighted;

pub use biclique::Biclique;
pub use enumerate::{enumerate_maximal_bicliques, EnumConfig, MaximalBiclique};
pub use frontier::SizeFrontier;
pub use incremental::IncrementalMbb;
pub use solver::{dense_mbb_graph, solve_mbb, MbbSolver, SolveResult, SolverConfig};
pub use stats::{SolveStats, Stage};
pub use topk::topk_balanced_bicliques;
