//! Exact maximum balanced biclique (MBB) search.
//!
//! Implementation of "Efficient Exact Algorithms for Maximum Balanced
//! Biclique Search in Bipartite Graphs" (Chen, Liu, Zhou, Xu, Li —
//! SIGMOD/PVLDB 2021):
//!
//! * [`basic::basic_bb`] — Algorithm 1, the O*(2ⁿ) alternating enumeration;
//! * [`poly::dynamic_mbb`] — Algorithm 2, the polynomial solver for
//!   near-complete subgraphs (Lemma 3);
//! * [`dense::dense_mbb`] — Algorithm 3, `denseMBB`, O*(1.3803ⁿ);
//! * [`heuristic::hmbb`] — Algorithm 5, heuristics + Lemma 4/5 reduction;
//! * [`bridge::bridge_mbb`] — Algorithm 6, vertex-centred decomposition;
//! * [`verify::verify_mbb`] — Algorithm 8, maximality verification;
//! * [`solver::MbbSolver`] — Algorithm 4, the `hbvMBB` framework,
//!   O*(1.3803^δ̈) with every Table 3 ablation exposed.
//!
//! Beyond the paper: [`enumerate`] / [`enumerate_scoped`] (maximal
//! biclique enumeration with real maximality checking), [`topk`],
//! [`anchored`] (per-vertex/per-edge queries), [`incremental`]
//! (warm-started maintenance over edge streams), [`weighted`]
//! (vertex-weighted variant), [`frontier`] (the feasible-size Pareto
//! frontier), [`size_constrained`] and [`meb`].
//!
//! All of these are served by one session object, [`engine::MbbEngine`]:
//! build it once per graph and it caches the expensive shared indices
//! (search orders, bicore decomposition, two-hop index) across every
//! query, with deadlines and cancellation threaded through the hot
//! search loops ([`budget`]).
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use mbb_bigraph::graph::BipartiteGraph;
//! use mbb_core::engine::MbbEngine;
//!
//! // The sparse example of the paper's Figure 1(b): the MBB is
//! // ({3, 4}, {9, 10}) — half-size 2.
//! let g = BipartiteGraph::from_edges(
//!     6, 6,
//!     [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (2, 3),
//!      (3, 2), (3, 3), (4, 2), (4, 3), (5, 4), (5, 5)],
//! )?;
//! let engine = MbbEngine::new(g);
//! let mbb = engine.query().deadline(Duration::from_secs(10)).solve();
//! assert!(mbb.termination.is_complete());
//! assert_eq!(mbb.value.half_size(), 2);
//! // Follow-up queries on the same session reuse the cached indices.
//! let top2 = engine.topk(2);
//! assert_eq!(top2.value[0].balanced_size(), 2);
//! # Ok::<(), mbb_bigraph::graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod anchored;
pub mod basic;
pub mod biclique;
pub mod bridge;
pub mod budget;
pub mod dense;
pub mod engine;
pub mod enumerate;
pub mod enumerate_scoped;
pub mod frontier;
pub mod heuristic;
pub mod incremental;
pub mod meb;
pub mod poly;
pub mod reduce;
pub mod size_constrained;
pub mod solver;
pub mod stats;
#[cfg(test)]
pub(crate) mod testutil;
pub mod topk;
pub mod verify;
pub mod weighted;

pub use biclique::Biclique;
pub use budget::{CancelToken, SearchBudget, Termination};
pub use engine::{Enumeration, MbbEngine, QueryBuilder, QueryResult};
pub use enumerate::{enumerate_maximal_bicliques, EnumConfig, MaximalBiclique};
pub use frontier::SizeFrontier;
pub use incremental::IncrementalMbb;
#[allow(deprecated)]
pub use solver::solve_mbb;
pub use solver::{dense_mbb_graph, resolve_threads, MbbSolver, SolveResult, SolverConfig};
pub use stats::{IndexStats, SolveStats, Stage};
#[allow(deprecated)]
pub use topk::topk_balanced_bicliques;
