//! Instrumentation for the breaking-down experiments (§6.3, Figures 4–6).

/// Counters collected by one branch-and-bound search
/// ([`basicBB`](crate::basic::basic_bb) or [`denseMBB`](crate::dense)).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Number of recursive calls.
    pub nodes: u64,
    /// Number of branches cut by the bounding condition.
    pub bound_prunes: u64,
    /// Number of `dynamicMBB` polynomial solves.
    pub poly_solves: u64,
    /// Candidate vertices removed by Lemma 1/2 reductions.
    pub reduced_vertices: u64,
    /// Deepest recursion reached.
    pub max_depth: u64,
    /// Sum of depths at which subtrees terminated (leaf or poly solve).
    pub leaf_depth_sum: u64,
    /// Number of terminating subtrees (denominator for the average depth).
    pub leaf_count: u64,
    /// Search nodes explored by each worker of a parallel search, indexed
    /// by worker id. Empty for serial searches. [`merge`](Self::merge)
    /// adds element-wise, so after a solve this is the per-worker total
    /// across every parallel search the solve ran.
    pub worker_nodes: Vec<u64>,
    /// Frontier subproblems a parallel-`denseMBB` worker claimed from
    /// *another* worker's slice after draining its own (work stealing; see
    /// [`dense_mbb_parallel`](crate::dense::dense_mbb_parallel)).
    pub tasks_stolen: u64,
    /// Frontier subproblems discarded unexplored because the shared
    /// incumbent had already reached their optimistic bound by the time a
    /// worker claimed them.
    pub tasks_skipped: u64,
}

impl SearchStats {
    /// Average depth at which the search terminated branches — the
    /// "search depth" series of Figure 5.
    pub fn average_depth(&self) -> f64 {
        if self.leaf_count == 0 {
            0.0
        } else {
            self.leaf_depth_sum as f64 / self.leaf_count as f64
        }
    }

    /// Accumulates another search's counters into this one. Per-worker
    /// node counts add element-wise (worker `w` of `other` into worker `w`
    /// of `self`), growing the vector as needed.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.bound_prunes += other.bound_prunes;
        self.poly_solves += other.poly_solves;
        self.reduced_vertices += other.reduced_vertices;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.leaf_depth_sum += other.leaf_depth_sum;
        self.leaf_count += other.leaf_count;
        if self.worker_nodes.len() < other.worker_nodes.len() {
            self.worker_nodes.resize(other.worker_nodes.len(), 0);
        }
        for (mine, theirs) in self.worker_nodes.iter_mut().zip(&other.worker_nodes) {
            *mine += theirs;
        }
        self.tasks_stolen += other.tasks_stolen;
        self.tasks_skipped += other.tasks_skipped;
    }
}

/// Which stage of the `hbvMBB` framework produced the final answer
/// (Table 5's `S1`/`S2`/`S3` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Stage {
    /// Heuristic + reduction proved optimality (Lemma 5 early termination
    /// or the graph reduced to nothing).
    S1,
    /// All vertex-centred subgraphs were pruned during bridging.
    S2,
    /// Exhaustive verification ran.
    S3,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::S1 => write!(f, "S1"),
            Stage::S2 => write!(f, "S2"),
            Stage::S3 => write!(f, "S3"),
        }
    }
}

/// Shared-index bookkeeping of an engine session: how often each cached
/// structure was computed versus served from the session cache, plus the
/// wall-clock cost of the computations. A fresh (non-engine) solve leaves
/// everything at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IndexStats {
    /// Search orders computed from scratch this session.
    pub orders_computed: u64,
    /// Queries served from the cached search order.
    pub orders_reused: u64,
    /// Bicore decompositions computed from scratch this session.
    pub bicores_computed: u64,
    /// Queries served from the cached bicore decomposition.
    pub bicores_reused: u64,
    /// Two-hop indices computed from scratch this session.
    pub two_hops_computed: u64,
    /// Queries served from the cached two-hop index.
    pub two_hops_reused: u64,
    /// Total seconds spent building cached indices this session.
    pub preprocess_seconds: f64,
}

/// End-to-end statistics of one `hbvMBB` solve.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SolveStats {
    /// Stage at which the solver stopped.
    pub stage: Stage,
    /// Degeneracy `δ` of the (reduced) graph, if computed.
    pub degeneracy: u32,
    /// Bidegeneracy `δ̈` under the bidegeneracy order (0 otherwise): the
    /// Lemma 4-reduced residual's `δ̈` for a fresh
    /// [`MbbSolver`](crate::solver::MbbSolver) solve,
    /// or the *session graph's* cached `δ̈` (an upper bound on the
    /// residual's) when solving through an `MbbEngine`, which reuses its
    /// decomposition instead of re-peeling the residual.
    pub bidegeneracy: u32,
    /// Half-size found by the global heuristic (`heuGlobal` of Figure 4).
    pub heuristic_global_half: usize,
    /// Half-size after the bridging stage's local heuristics (`heuLocal`).
    pub heuristic_local_half: usize,
    /// Final optimum half-size.
    pub optimum_half: usize,
    /// Vertex-centred subgraphs generated.
    pub subgraphs_generated: usize,
    /// Subgraphs surviving all bridging prunes (handed to verification).
    pub subgraphs_verified: usize,
    /// Mean density of the generated vertex-centred subgraphs (Figure 6).
    pub avg_subgraph_density: f64,
    /// Mean vertex count of generated subgraphs.
    pub avg_subgraph_size: f64,
    /// Largest generated vertex-centred subgraph (Lemma 8 bounds this by
    /// δ̈ + 1 under bidegeneracy order).
    pub max_subgraph_size: usize,
    /// Aggregated exhaustive-search counters (Figure 5's depth data).
    pub search: SearchStats,
    /// Wall-clock duration of each stage, seconds.
    pub stage_seconds: [f64; 3],
    /// Session index-reuse counters (cumulative over the owning
    /// `MbbEngine`; all zero outside an engine session).
    pub index: IndexStats,
}

impl Default for SolveStats {
    fn default() -> Self {
        SolveStats {
            stage: Stage::S3,
            degeneracy: 0,
            bidegeneracy: 0,
            heuristic_global_half: 0,
            heuristic_local_half: 0,
            optimum_half: 0,
            subgraphs_generated: 0,
            subgraphs_verified: 0,
            avg_subgraph_density: 0.0,
            avg_subgraph_size: 0.0,
            max_subgraph_size: 0,
            search: SearchStats::default(),
            stage_seconds: [0.0; 3],
            index: IndexStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_depth_handles_zero_leaves() {
        let s = SearchStats::default();
        assert_eq!(s.average_depth(), 0.0);
    }

    #[test]
    fn average_depth_is_mean() {
        let s = SearchStats {
            leaf_depth_sum: 30,
            leaf_count: 4,
            ..Default::default()
        };
        assert_eq!(s.average_depth(), 7.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            nodes: 5,
            max_depth: 3,
            ..Default::default()
        };
        let b = SearchStats {
            nodes: 7,
            max_depth: 9,
            leaf_count: 2,
            leaf_depth_sum: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes, 12);
        assert_eq!(a.max_depth, 9);
        assert_eq!(a.leaf_count, 2);
    }

    #[test]
    fn stage_display() {
        assert_eq!(Stage::S1.to_string(), "S1");
        assert_eq!(Stage::S2.to_string(), "S2");
        assert_eq!(Stage::S3.to_string(), "S3");
    }
}
