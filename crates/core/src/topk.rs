//! Top-k balanced biclique search.
//!
//! Applications rarely want just *one* optimum: defect-tolerant chip
//! mapping wants several alternative fabrics, biclustering wants the k
//! strongest biclusters. This module ranks maximal bicliques by the size
//! of the balanced biclique they contain — `min(|A|, |B|)` descending,
//! ties broken by total size, then lexicographically for determinism —
//! and returns the best `k`.
//!
//! The search reuses the maximal-biclique enumerator with a *dynamic
//! floor*: once `k` results are in hand, branches that cannot reach the
//! current k-th best balanced size are pruned, which makes top-k far
//! cheaper than full enumeration on graphs with many small maximal
//! bicliques.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::ControlFlow;
use std::rc::Rc;
use std::time::Duration;

use mbb_bigraph::graph::BipartiteGraph;

use crate::budget::SearchBudget;
use crate::enumerate::{enumerate_with_floor, EnumConfig, MaximalBiclique};

/// Ranking key: balanced size first, then total size, then the vertex
/// lists (smaller lexicographic wins ties so output is deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Ranked {
    biclique: MaximalBiclique,
}

impl Ranked {
    fn key(&self) -> (usize, usize, Reverse<&[u32]>, Reverse<&[u32]>) {
        (
            self.biclique.balanced_size(),
            self.biclique.total_size(),
            Reverse(self.biclique.left.as_slice()),
            Reverse(self.biclique.right.as_slice()),
        )
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a top-k search.
#[derive(Debug, Clone)]
pub struct TopkOutcome {
    /// The best maximal bicliques, sorted best-first.
    pub bicliques: Vec<MaximalBiclique>,
    /// False when the search stopped on its time budget, in which case
    /// `bicliques` is the best of what was seen, not a guaranteed top-k.
    pub complete: bool,
}

/// Finds the `k` maximal bicliques with the largest balanced size
/// (`min(|A|, |B|)`, ties by total size). Fewer than `k` are returned
/// when the graph has fewer maximal bicliques.
///
/// This is the deprecated one-shot form; prefer
/// [`MbbEngine::topk`](crate::engine::MbbEngine::topk), which shares
/// session state across queries and reports a typed
/// [`Termination`](crate::budget::Termination) instead of a bare flag.
#[deprecated(
    since = "0.2.0",
    note = "use MbbEngine::topk / engine.query().topk(k) instead"
)]
pub fn topk_balanced_bicliques(
    graph: &BipartiteGraph,
    k: usize,
    budget: Option<Duration>,
) -> TopkOutcome {
    // Equivalent to a one-shot engine's topk(), minus the graph clone.
    let budget = budget.map_or_else(SearchBudget::unlimited, SearchBudget::with_deadline);
    topk_budgeted(graph, k, &budget)
}

/// The budgeted top-k search: ranks maximal bicliques by balanced size
/// under a shared [`SearchBudget`]. An exhausted budget yields the best of
/// what was seen (`complete: false`).
///
/// ```
/// use mbb_bigraph::graph::BipartiteGraph;
/// use mbb_core::budget::SearchBudget;
/// use mbb_core::topk::topk_budgeted;
///
/// // A 3×3 block on {0,1,2} plus a pendant edge (3, 3).
/// let mut edges: Vec<(u32, u32)> = (0..3).flat_map(|u| (0..3).map(move |v| (u, v))).collect();
/// edges.push((3, 3));
/// let g = BipartiteGraph::from_edges(4, 4, edges)?;
/// let top = topk_budgeted(&g, 2, &SearchBudget::unlimited());
/// assert!(top.complete);
/// assert_eq!(top.bicliques[0].balanced_size(), 3); // the block
/// assert_eq!(top.bicliques[1].balanced_size(), 1); // the pendant edge
/// # Ok::<(), mbb_bigraph::graph::GraphError>(())
/// ```
pub fn topk_budgeted(graph: &BipartiteGraph, k: usize, budget: &SearchBudget) -> TopkOutcome {
    if k == 0 {
        return TopkOutcome {
            bicliques: Vec::new(),
            complete: true,
        };
    }
    let floor = Rc::new(Cell::new(0usize));
    // Min-heap of the current best k (Reverse flips the ordering).
    let mut heap: BinaryHeap<Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
    let config = EnumConfig::default();
    let outcome = enumerate_with_floor(graph, &config, budget, Some(Rc::clone(&floor)), |b| {
        heap.push(Reverse(Ranked {
            biclique: b.clone(),
        }));
        if heap.len() > k {
            heap.pop();
        }
        if heap.len() == k {
            // Branches that cannot tie the current k-th best balanced size
            // can never displace it (ties are explored, not pruned, so a
            // same-size biclique with a better tiebreak still surfaces).
            let kth = heap.peek().expect("heap full").0.biclique.balanced_size();
            floor.set(kth);
        }
        ControlFlow::Continue(())
    });
    let mut ranked: Vec<Ranked> = heap.into_iter().map(|r| r.0).collect();
    ranked.sort_by(|x, y| y.cmp(x));
    TopkOutcome {
        bicliques: ranked.into_iter().map(|r| r.biclique).collect(),
        complete: outcome.complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_maximal_bicliques;
    use crate::solver::MbbSolver;
    use mbb_bigraph::generators;

    /// Reference: full enumeration, same ranking, truncate to k.
    fn brute_topk(graph: &BipartiteGraph, k: usize) -> Vec<MaximalBiclique> {
        let (all, complete) = all_maximal_bicliques(graph, &EnumConfig::default());
        assert!(complete);
        let mut ranked: Vec<Ranked> = all
            .into_iter()
            .map(|biclique| Ranked { biclique })
            .collect();
        ranked.sort_by(|x, y| y.cmp(x));
        ranked.truncate(k);
        ranked.into_iter().map(|r| r.biclique).collect()
    }

    #[test]
    fn matches_full_enumeration_ranking() {
        for seed in 0..20u64 {
            let g = generators::uniform_edges(9, 9, 35, seed);
            for k in [1usize, 2, 5] {
                let got = topk_budgeted(&g, k, &SearchBudget::unlimited());
                assert!(got.complete, "seed {seed} k {k}");
                assert_eq!(got.bicliques, brute_topk(&g, k), "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn top1_matches_exact_mbb() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(10, 10, 40, seed ^ 0x5u64);
            let top = topk_budgeted(&g, 1, &SearchBudget::unlimited());
            let mbb = MbbSolver::new().solve(&g).biclique;
            let top_half = top.bicliques.first().map_or(0, |b| b.balanced_size());
            assert_eq!(top_half, mbb.half_size(), "seed {seed}");
        }
    }

    #[test]
    fn k_zero_returns_nothing() {
        let g = generators::complete(3, 3);
        let out = topk_budgeted(&g, 0, &SearchBudget::unlimited());
        assert!(out.bicliques.is_empty());
        assert!(out.complete);
    }

    #[test]
    fn k_larger_than_count_returns_all() {
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0), (1, 1), (2, 2)]).unwrap();
        let out = topk_budgeted(&g, 10, &SearchBudget::unlimited());
        assert_eq!(out.bicliques.len(), 3);
        assert!(out.complete);
    }

    #[test]
    fn results_are_sorted_best_first() {
        let g = generators::uniform_edges(10, 10, 45, 7);
        let out = topk_budgeted(&g, 6, &SearchBudget::unlimited());
        for w in out.bicliques.windows(2) {
            let a = (w[0].balanced_size(), w[0].total_size());
            let b = (w[1].balanced_size(), w[1].total_size());
            assert!(a >= b, "{a:?} before {b:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(4, 4, []).unwrap();
        let out = topk_budgeted(&g, 3, &SearchBudget::unlimited());
        assert!(out.bicliques.is_empty());
        assert!(out.complete);
    }

    #[test]
    fn floor_pruning_never_loses_a_winner() {
        // Dense-ish graphs stress the floor logic: compare against the
        // unpruned reference on every seed.
        for seed in 100..115u64 {
            let g = generators::dense_uniform(8, 8, 0.7, seed);
            let got = topk_budgeted(&g, 3, &SearchBudget::unlimited());
            assert_eq!(got.bicliques, brute_topk(&g, 3), "seed {seed}");
        }
    }
}
