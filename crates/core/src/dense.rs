//! `denseMBB` — Algorithm 3, the paper's O*(1.3803ⁿ) reduction, branch and
//! bound algorithm for dense bipartite graphs.
//!
//! Per recursion:
//!
//! 1. **bound** — prune when the remaining material cannot beat the
//!    incumbent half-size;
//! 2. **reduce** — Lemmas 1 and 2 to fixpoint ([`crate::reduce`]);
//! 3. **polynomial case** — if every candidate misses ≤ 2 neighbours
//!    (Lemma 3), solve exactly with `dynamicMBB` and return;
//! 4. **branch** — otherwise some vertex misses ≥ 3 neighbours; branching
//!    on it kills ≥ 4 candidate vertices in the include branch and 1 in the
//!    exclude branch — the (4, 1) branching factor that bounds the
//!    recursion tree by O(1.3803ⁿ).
//!
//! The "triviality last" strategy picks the candidate with the *most*
//! missing neighbours, steering the residual graph towards the polynomial
//! case as fast as possible.
//!
//! # Intra-subgraph parallelism
//!
//! [`dense_mbb_parallel`] splits one search across a worker pool: the
//! top levels of the branching tree are expanded breadth-first into a
//! frontier of disjoint subproblems (each a fixed `a`/`b` prefix plus a
//! split candidate pair), workers claim a contiguous slice each and steal
//! leftovers, and the incumbent half-size is shared through an atomic so
//! every worker prunes against the global best. See `docs/PERFORMANCE.md`
//! at the repository root for the full threading model.

use std::collections::VecDeque;

// Cross-worker state goes through the mbb-conc facade: std atomics in
// normal builds, model-checked under `--cfg mbb_conc` (see
// tests/conc_models.rs and docs/CONCURRENCY.md).
use mbb_conc::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::local::LocalGraph;

use crate::basic::LocalBiclique;
use crate::budget::SearchBudget;
use crate::poly::dynamic_mbb;
use crate::reduce::reduce_candidates;
use crate::stats::SearchStats;

/// Tuning/ablation knobs for [`dense_mbb`].
#[derive(Debug, Clone, Copy)]
pub struct DenseConfig {
    /// Apply the Lemma 1/2 reduction loop (on by default).
    pub use_reductions: bool,
    /// Detect and solve the Lemma 3 polynomial case (on by default).
    /// With this off the algorithm degenerates towards `basicBB` with
    /// reductions.
    pub use_polynomial_case: bool,
    /// Branch on the candidate missing the *most* neighbours (the
    /// triviality-last strategy). When off, the first candidate is taken —
    /// the `bd3` "without branching technique" ablation.
    pub branch_max_missing: bool,
}

impl Default for DenseConfig {
    fn default() -> Self {
        DenseConfig {
            use_reductions: true,
            use_polynomial_case: true,
            branch_max_missing: true,
        }
    }
}

/// Runs `denseMBB` over a whole local graph.
///
/// `initial_half` seeds the incumbent bound; the result is a balanced
/// biclique strictly larger than `initial_half` when one exists (empty
/// otherwise).
///
/// ```
/// use mbb_bigraph::local::LocalGraph;
/// use mbb_core::dense::dense_mbb;
/// // Complete 3×3 minus one corner edge: a 2×3 block remains, so the
/// // balanced optimum is 2×2.
/// let g = LocalGraph::from_edges(3, 3, [
///     (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (2, 0), (2, 1),
/// ]);
/// let (found, stats) = dense_mbb(&g, 0);
/// assert_eq!(found.half(), 2);
/// assert!(stats.poly_solves >= 1); // solved via the Lemma 3 case
/// ```
pub fn dense_mbb(graph: &LocalGraph, initial_half: usize) -> (LocalBiclique, SearchStats) {
    dense_mbb_seeded(
        graph,
        Vec::new(),
        Vec::new(),
        BitSet::full(graph.num_left()),
        BitSet::full(graph.num_right()),
        initial_half,
        DenseConfig::default(),
    )
}

/// Runs `denseMBB` from a partial state: `a`/`b` are already-fixed result
/// vertices (every candidate in `ca` must be adjacent to all of `b` and
/// vice versa — the Algorithm 8 caller seeds `a = [centre]`,
/// `cb ⊆ N(centre)`).
pub fn dense_mbb_seeded(
    graph: &LocalGraph,
    a: Vec<u32>,
    b: Vec<u32>,
    ca: BitSet,
    cb: BitSet,
    initial_half: usize,
    config: DenseConfig,
) -> (LocalBiclique, SearchStats) {
    dense_mbb_budgeted(
        graph,
        a,
        b,
        ca,
        cb,
        initial_half,
        config,
        &SearchBudget::unlimited(),
    )
}

/// [`dense_mbb_seeded`] under a [`SearchBudget`]: the branch-and-bound
/// checks the budget at every node and unwinds with the best-so-far
/// biclique once it is exhausted (anytime semantics). With an unlimited
/// budget this is exactly `dense_mbb_seeded`.
#[allow(clippy::too_many_arguments)] // mirrors the seeded entry point
pub fn dense_mbb_budgeted(
    graph: &LocalGraph,
    a: Vec<u32>,
    b: Vec<u32>,
    ca: BitSet,
    cb: BitSet,
    initial_half: usize,
    config: DenseConfig,
    budget: &SearchBudget,
) -> (LocalBiclique, SearchStats) {
    debug_assert!(a.iter().all(|&u| {
        cb.iter().all(|v| graph.has_edge(u, v as u32)) && b.iter().all(|&v| graph.has_edge(u, v))
    }));
    debug_assert!(b
        .iter()
        .all(|&v| ca.iter().all(|u| graph.has_edge(u as u32, v))));
    let mut searcher = DenseSearcher {
        graph,
        best: LocalBiclique::default(),
        best_half: initial_half,
        stats: SearchStats::default(),
        config,
        budget: budget.clone(),
        shared_best: None,
    };
    let mut a = a;
    let mut b = b;
    searcher.recurse(&mut a, &mut b, ca, cb, 0);
    let stats = searcher.stats;
    (searcher.best.balance(), stats)
}

/// How a single node of the search resolved: either the subtree is done
/// (pruned, polynomial-solved, leaf, or budget-exhausted), or the node
/// must branch on the returned candidate.
enum StepOutcome {
    Resolved,
    Branch { on_left: bool, vertex: u32 },
}

/// The pool-wide incumbent half-size of a parallel search — the one
/// piece of mutable state [`dense_mbb_parallel`] workers share.
///
/// The protocol is deliberately minimal so its correctness argument is
/// short: the cell only ever **grows** (every write is a `fetch_max`
/// with the half-size of a biclique the writer has actually realised),
/// and readers use it purely as a *pruning* bound. A stale read is
/// always safe — it can only under-prune, never discard the optimum —
/// which is why `Relaxed` suffices end to end. The final result does not
/// come from this cell: each worker returns its own best biclique and
/// the coordinator max-merges them after joining, so publication here is
/// an optimisation, not a correctness dependency.
pub struct SharedIncumbent(AtomicUsize);

impl SharedIncumbent {
    /// A pool incumbent seeded at `initial_half` (results must beat it).
    pub fn new(initial_half: usize) -> SharedIncumbent {
        SharedIncumbent(AtomicUsize::new(initial_half))
    }

    /// Publishes a realised half-size. Monotonic: concurrent publishes
    /// cannot regress the bound (`fetch_max`, not `store`).
    pub fn publish(&self, half: usize) {
        // relaxed: monotonic fetch_max of an advisory pruning bound; a
        // reader seeing a stale value only prunes less. Result delivery
        // happens via the join, not through this cell.
        self.0.fetch_max(half, Ordering::Relaxed);
    }

    /// The current pool-wide bound (may be momentarily stale — safe, see
    /// the type docs).
    pub fn bound(&self) -> usize {
        // relaxed: advisory read of the monotonic bound; staleness only
        // costs pruning opportunity.
        self.0.load(Ordering::Relaxed)
    }
}

struct DenseSearcher<'g> {
    graph: &'g LocalGraph,
    best: LocalBiclique,
    best_half: usize,
    stats: SearchStats,
    config: DenseConfig,
    budget: SearchBudget,
    /// Incumbent half-size shared with sibling workers of a parallel
    /// search (`None` when running serial). Read at every node, written
    /// on every improvement, so one worker's find prunes all the others.
    shared_best: Option<&'g SharedIncumbent>,
}

impl DenseSearcher<'_> {
    fn record(&mut self, left: Vec<u32>, right: Vec<u32>) {
        let half = left.len().min(right.len());
        if half > self.best_half {
            self.best_half = half;
            if let Some(shared) = self.shared_best {
                shared.publish(half);
            }
            self.best = LocalBiclique { left, right };
        }
    }

    /// Raises the local pruning bound to the pool-wide incumbent. The
    /// local `best` biclique is untouched: each worker only ever returns
    /// bicliques it found itself.
    fn sync_shared_bound(&mut self) {
        if let Some(shared) = self.shared_best {
            let global = shared.bound();
            if global > self.best_half {
                self.best_half = global;
            }
        }
    }

    fn leaf(&mut self, depth: u64) {
        self.stats.leaf_depth_sum += depth;
        self.stats.leaf_count += 1;
    }

    /// One node of Algorithm 3: bound, reduce, re-bound, polynomial case,
    /// branch selection. Mutates the partial result (`reduce_candidates`
    /// promotes all-connected candidates into `a`/`b`) and the candidate
    /// sets in place; the caller owns unwinding.
    fn step(
        &mut self,
        a: &mut Vec<u32>,
        b: &mut Vec<u32>,
        ca: &mut BitSet,
        cb: &mut BitSet,
        depth: u64,
    ) -> StepOutcome {
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.sync_shared_bound();

        // Budget: once exhausted every level resolves immediately, so the
        // whole recursion unwinds with the best-so-far result.
        if self.budget.is_exhausted() {
            self.leaf(depth);
            return StepOutcome::Resolved;
        }

        // Bounding (line 1).
        let cap = (a.len() + ca.len()).min(b.len() + cb.len());
        if cap <= self.best_half {
            self.stats.bound_prunes += 1;
            self.leaf(depth);
            return StepOutcome::Resolved;
        }

        // Reduction (line 2) and re-bound (line 3).
        if self.config.use_reductions {
            reduce_candidates(self.graph, a, b, ca, cb, self.best_half, &mut self.stats);
            let cap = (a.len() + ca.len()).min(b.len() + cb.len());
            if cap <= self.best_half {
                self.stats.bound_prunes += 1;
                self.leaf(depth);
                return StepOutcome::Resolved;
            }
        }

        // One pass over both candidate sets computing missing-neighbour
        // counts. It feeds three decisions at once: the degree-histogram
        // bound, the Lemma 3 polynomial-case test (max missing ≤ 2) and
        // the triviality-last branch choice (argmax missing).
        let scan = scan_candidates(self.graph, a.len(), b.len(), ca, cb);
        if scan.upper_bound <= self.best_half {
            self.stats.bound_prunes += 1;
            self.leaf(depth);
            return StepOutcome::Resolved;
        }

        // Polynomial case (lines 4–8).
        if self.config.use_polynomial_case && scan.max_missing <= 2 {
            if let Some(solution) =
                dynamic_mbb(self.graph, ca, cb, a.len(), b.len(), &mut self.stats)
            {
                if solution.half() > self.best_half {
                    let mut left = a.clone();
                    left.extend_from_slice(&solution.chosen_left);
                    let mut right = b.clone();
                    right.extend_from_slice(&solution.chosen_right);
                    self.record(left, right);
                }
                self.leaf(depth);
                return StepOutcome::Resolved;
            }
        }
        if !self.config.use_polynomial_case && ca.is_empty() && cb.is_empty() {
            self.record(a.clone(), b.clone());
            self.leaf(depth);
            return StepOutcome::Resolved;
        }

        // Branching (lines 9–15): pick the candidate missing the most
        // neighbours (guaranteed ≥ 3 here when the polynomial case is on).
        let (on_left, vertex) = if self.config.branch_max_missing {
            debug_assert!(
                !self.config.use_polynomial_case || scan.max_missing >= 3,
                "polynomial case should have caught missing = {}",
                scan.max_missing
            );
            (scan.argmax_on_left, scan.argmax_vertex)
        } else {
            // bd3: naive first-candidate branching.
            match ca.first() {
                Some(u) => (true, u as u32),
                None => (false, cb.first().expect("cb non-empty") as u32),
            }
        };
        StepOutcome::Branch { on_left, vertex }
    }

    /// Exclude branches iterate in place (they only shrink one candidate
    /// set), so stack depth is bounded by the include chain — at most the
    /// half-size of the biclique being built — not by the candidate count.
    fn recurse(
        &mut self,
        a: &mut Vec<u32>,
        b: &mut Vec<u32>,
        mut ca: BitSet,
        mut cb: BitSet,
        mut depth: u64,
    ) {
        let (a_mark, b_mark) = (a.len(), b.len());
        while let StepOutcome::Branch { on_left, vertex: u } =
            self.step(a, b, &mut ca, &mut cb, depth)
        {
            // Include u (recursive branch).
            let (ca_inc, cb_inc) = include_candidates(self.graph, &ca, &cb, on_left, u);
            let side = if on_left { &mut *a } else { &mut *b };
            side.push(u);
            self.recurse(a, b, ca_inc, cb_inc, depth + 1);
            let side = if on_left { &mut *a } else { &mut *b };
            side.pop();
            // Exclude u: continue iterating in place.
            if on_left { &mut ca } else { &mut cb }.remove(u as usize);
            depth += 1;
        }

        a.truncate(a_mark);
        b.truncate(b_mark);
    }
}

/// Candidate sets of the *include* child when branching on `u`: `u`
/// leaves its own side's candidates (it is now fixed in the result), and
/// the other side keeps only `u`'s neighbours. The one place the
/// branching semantics live — the serial recursion and the frontier
/// expansion both build children through it, which is what keeps the
/// parallel search space identical to the serial one.
fn include_candidates(
    graph: &LocalGraph,
    ca: &BitSet,
    cb: &BitSet,
    on_left: bool,
    u: u32,
) -> (BitSet, BitSet) {
    let mut ca_inc = ca.clone();
    let mut cb_inc = cb.clone();
    if on_left {
        ca_inc.remove(u as usize);
        cb_inc.and_assign_count(&graph.left_row(u));
    } else {
        cb_inc.remove(u as usize);
        ca_inc.and_assign_count(&graph.right_row(u));
    }
    (ca_inc, cb_inc)
}

/// One frontier subproblem of a parallel search: a fixed `a`/`b` prefix
/// plus the candidate pair still open under it. Tasks partition the
/// search space — every leaf of the serial recursion tree lies below
/// exactly one task.
struct FrontierTask {
    a: Vec<u32>,
    b: Vec<u32>,
    ca: BitSet,
    cb: BitSet,
    depth: u64,
}

/// Frontier subproblems generated per requested worker. More tasks than
/// workers keeps the pool busy when subtree costs are skewed: a worker
/// finishing a cheap slice steals the leftovers of an expensive one.
/// Subtree costs are heavy-tailed, so the granularity is deliberately
/// fine — expansion cost is a few dozen search nodes per task, noise
/// against the subtrees it balances.
const FRONTIER_TASKS_PER_WORKER: usize = 16;

/// Hard cap on the frontier, bounding the serial expansion prefix.
const MAX_FRONTIER_TASKS: usize = 512;

/// Expands the top of the branching tree breadth-first until `target`
/// open subproblems exist (or the tree is exhausted first). Nodes that
/// resolve during expansion — prunes, polynomial solves — are handled by
/// `searcher` exactly as in the serial search.
fn expand_frontier(
    searcher: &mut DenseSearcher<'_>,
    a: Vec<u32>,
    b: Vec<u32>,
    ca: BitSet,
    cb: BitSet,
    target: usize,
) -> VecDeque<FrontierTask> {
    let mut queue = VecDeque::new();
    queue.push_back(FrontierTask {
        a,
        b,
        ca,
        cb,
        depth: 0,
    });
    while queue.len() < target {
        let Some(mut task) = queue.pop_front() else {
            break;
        };
        let outcome = searcher.step(
            &mut task.a,
            &mut task.b,
            &mut task.ca,
            &mut task.cb,
            task.depth,
        );
        let StepOutcome::Branch { on_left, vertex: u } = outcome else {
            continue;
        };
        // Include child (owned copies: tasks must be self-contained).
        let (ca_inc, cb_inc) = include_candidates(searcher.graph, &task.ca, &task.cb, on_left, u);
        let mut a_inc = task.a.clone();
        let mut b_inc = task.b.clone();
        if on_left {
            a_inc.push(u);
            task.ca.remove(u as usize);
        } else {
            b_inc.push(u);
            task.cb.remove(u as usize);
        }
        queue.push_back(FrontierTask {
            a: a_inc,
            b: b_inc,
            ca: ca_inc,
            cb: cb_inc,
            depth: task.depth + 1,
        });
        // Exclude child: the popped task itself, one level deeper.
        task.depth += 1;
        queue.push_back(task);
    }
    queue
}

/// What one worker of [`dense_mbb_parallel`] hands back.
struct WorkerOutput {
    best: LocalBiclique,
    stats: SearchStats,
    stolen: u64,
    skipped: u64,
}

/// [`dense_mbb_budgeted`] split across `workers` threads — the
/// intra-subgraph parallel mode.
///
/// The top of the branching tree is expanded into 16 × `workers`
/// disjoint subproblems (each a
/// fixed `a`/`b` seed plus a candidate-set split); each worker claims a
/// contiguous slice of them and, once its slice is drained, steals
/// unclaimed tasks from other slices. All workers prune against one
/// shared atomic incumbent half-size, so an improvement found anywhere
/// immediately tightens every bound. The [`SearchBudget`]'s exhausted
/// state is likewise shared: one worker observing the deadline stops the
/// whole pool at its next per-node check (anytime semantics — the best
/// biclique found so far is returned).
///
/// With `workers <= 1` this is exactly [`dense_mbb_budgeted`]. The
/// returned optimum half-size is identical to the serial search's for
/// any worker count (the split is a partition and every prune is against
/// a realised biclique); the witness itself and the node counters may
/// differ run to run.
///
/// The returned [`SearchStats`] additionally carries
/// [`worker_nodes`](SearchStats::worker_nodes),
/// [`tasks_stolen`](SearchStats::tasks_stolen) and
/// [`tasks_skipped`](SearchStats::tasks_skipped).
#[allow(clippy::too_many_arguments)] // mirrors dense_mbb_budgeted
pub fn dense_mbb_parallel(
    graph: &LocalGraph,
    a: Vec<u32>,
    b: Vec<u32>,
    ca: BitSet,
    cb: BitSet,
    initial_half: usize,
    config: DenseConfig,
    budget: &SearchBudget,
    workers: usize,
) -> (LocalBiclique, SearchStats) {
    if workers <= 1 {
        return dense_mbb_budgeted(graph, a, b, ca, cb, initial_half, config, budget);
    }
    // Entry is a coarse boundary: one unsampled probe makes an
    // already-expired budget visible immediately (and sticky), instead of
    // after PROBE_INTERVAL search nodes.
    if budget.probe() {
        return (LocalBiclique::default(), SearchStats::default());
    }
    let shared_best = SharedIncumbent::new(initial_half);

    // Serial prefix: expand the frontier. Resolutions met on the way
    // (poly solves at shallow depth) land in the coordinator's `best`.
    let mut coordinator = DenseSearcher {
        graph,
        best: LocalBiclique::default(),
        best_half: initial_half,
        stats: SearchStats::default(),
        config,
        budget: budget.clone(),
        shared_best: Some(&shared_best),
    };
    let target = (workers * FRONTIER_TASKS_PER_WORKER).min(MAX_FRONTIER_TASKS);
    let tasks: Vec<FrontierTask> = expand_frontier(&mut coordinator, a, b, ca, cb, target).into();
    if tasks.is_empty() {
        // The whole tree resolved during expansion — nothing to spawn for.
        return (coordinator.best.balance(), coordinator.stats);
    }
    let claimed: Vec<AtomicBool> = tasks.iter().map(|_| AtomicBool::new(false)).collect();

    let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let tasks = &tasks;
        let claimed = &claimed;
        let shared = &shared_best;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut searcher = DenseSearcher {
                        graph,
                        best: LocalBiclique::default(),
                        best_half: shared.bound(),
                        stats: SearchStats::default(),
                        config,
                        budget: budget.clone(),
                        shared_best: Some(shared),
                    };
                    let chunk = tasks.len().div_ceil(workers).max(1);
                    let own = (w * chunk).min(tasks.len())..((w + 1) * chunk).min(tasks.len());
                    let mut stolen = 0u64;
                    let mut skipped = 0u64;
                    // Own slice first, then one stealing sweep over the
                    // rest — `claimed` makes every task run exactly once.
                    for index in own.clone().chain(0..tasks.len()) {
                        // relaxed: the atomic RMW alone decides the claim
                        // (exactly one swap returns false per task); the
                        // task data is immutable and published by the
                        // spawning scope's happens-before edge.
                        if claimed[index].swap(true, Ordering::Relaxed) {
                            continue;
                        }
                        if !own.contains(&index) {
                            stolen += 1;
                        }
                        run_task(&mut searcher, &tasks[index], &mut skipped);
                    }
                    WorkerOutput {
                        best: searcher.best,
                        stats: searcher.stats,
                        stolen,
                        skipped,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dense worker panicked"))
            .collect()
    });

    let mut best = coordinator.best;
    let mut stats = coordinator.stats;
    stats.worker_nodes = vec![0; workers];
    for (w, output) in outputs.into_iter().enumerate() {
        stats.worker_nodes[w] = output.stats.nodes;
        stats.merge(&output.stats);
        stats.tasks_stolen += output.stolen;
        stats.tasks_skipped += output.skipped;
        if output.best.half() > best.half() {
            best = output.best;
        }
    }
    (best.balance(), stats)
}

/// Runs one claimed frontier task to completion (or skips it when the
/// shared incumbent already reached its optimistic bound).
fn run_task(searcher: &mut DenseSearcher<'_>, task: &FrontierTask, skipped: &mut u64) {
    searcher.sync_shared_bound();
    let cap = (task.a.len() + task.ca.len()).min(task.b.len() + task.cb.len());
    if cap <= searcher.best_half {
        *skipped += 1;
        return;
    }
    // Task claim is a coarse boundary: pay for an unsampled probe so an
    // expired budget is noticed even when every task is tiny.
    if searcher.budget.probe() {
        return;
    }
    let mut a = task.a.clone();
    let mut b = task.b.clone();
    searcher.recurse(&mut a, &mut b, task.ca.clone(), task.cb.clone(), task.depth);
}

/// Result of the per-node candidate scan.
struct CandidateScan {
    /// Largest missing-neighbour count over both candidate sets.
    max_missing: usize,
    /// Whether the argmax candidate is a left vertex.
    argmax_on_left: bool,
    /// The argmax candidate's local index.
    argmax_vertex: u32,
    /// Degree-histogram upper bound on the reachable half-size.
    upper_bound: usize,
}

/// Single pass over the candidate sets: missing counts, argmax, and the
/// degree-histogram bound.
///
/// The bound: a balanced biclique of half-size `k` reachable from this
/// state needs, on each side, at least `k` vertices whose degree towards
/// the other side's remaining material is at least `k` — specifically
/// `avail_A(k) = |A| + #{u ∈ CA : |B| + deg(u, CB) ≥ k} ≥ k` and
/// symmetrically. The largest `k` satisfying both dominates the plain
/// `min(|A|+|CA|, |B|+|CB|)` bound at the cost of work this scan already
/// does.
fn scan_candidates(
    graph: &LocalGraph,
    a_len: usize,
    b_len: usize,
    ca: &BitSet,
    cb: &BitSet,
) -> CandidateScan {
    let cb_len = cb.len();
    let ca_len = ca.len();
    let cap_a = a_len + ca_len;
    let cap_b = b_len + cb_len;
    let cap = cap_a.min(cap_b);

    let mut max_missing = 0usize;
    let mut argmax_on_left = true;
    let mut argmax_vertex = u32::MAX;
    // hist_a[d] = number of CA candidates with |B| + deg(u, CB) = d.
    let mut hist_a = vec![0u32; cap_b + 1];
    let mut hist_b = vec![0u32; cap_a + 1];

    for u in ca.iter() {
        let degree = graph.left_degree_in(u as u32, cb);
        let missing = cb_len - degree;
        if missing >= max_missing {
            // `>=` keeps argmax defined even when all missings are 0.
            max_missing = missing;
            argmax_on_left = true;
            argmax_vertex = u as u32;
        }
        hist_a[(b_len + degree).min(cap_b)] += 1;
    }
    for v in cb.iter() {
        let degree = graph.right_degree_in(v as u32, ca);
        let missing = ca_len - degree;
        if missing > max_missing {
            max_missing = missing;
            argmax_on_left = false;
            argmax_vertex = v as u32;
        }
        hist_b[(a_len + degree).min(cap_a)] += 1;
    }

    // Walk k from the cap downwards, accumulating histogram mass ≥ k with
    // two suffix pointers; the first feasible k is the bound.
    let mut upper_bound = 0usize;
    let mut avail_a = a_len;
    let mut avail_b = b_len;
    let mut da = cap_b as isize;
    let mut db = cap_a as isize;
    let mut k = cap;
    while k > 0 {
        while da >= k as isize {
            avail_a += hist_a[da as usize] as usize;
            da -= 1;
        }
        while db >= k as isize {
            avail_b += hist_b[db as usize] as usize;
            db -= 1;
        }
        if avail_a >= k && avail_b >= k {
            upper_bound = k;
            break;
        }
        k -= 1;
    }

    CandidateScan {
        max_missing,
        argmax_on_left,
        argmax_vertex,
        upper_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::basic_bb;
    use crate::testutil::brute_force_half_local as brute_force_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nl: usize, nr: usize, density: f64, seed: u64) -> LocalGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = LocalGraph::new(nl, nr);
        for u in 0..nl as u32 {
            for v in 0..nr as u32 {
                if rng.gen_bool(density) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn complete_graph_is_polynomially_solved() {
        let mut g = LocalGraph::new(5, 7);
        for u in 0..5 {
            for v in 0..7 {
                g.add_edge(u, v);
            }
        }
        let (b, stats) = dense_mbb(&g, 0);
        assert_eq!(b.half(), 5);
        // The first recursion already hits the polynomial case: no branch.
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.poly_solves, 1);
    }

    #[test]
    fn empty_graph() {
        let g = LocalGraph::new(4, 4);
        let (b, _) = dense_mbb(&g, 0);
        assert_eq!(b.half(), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
            let nl = rng.gen_range(1..=9usize);
            let nr = rng.gen_range(1..=9usize);
            let density = rng.gen_range(0.2..0.95);
            let g = random_graph(nl, nr, density, seed);
            let (found, _) = dense_mbb(&g, 0);
            let brute = brute_force_half(&g);
            assert_eq!(found.half(), brute, "seed {seed} nl {nl} nr {nr}");
            assert!(g.is_biclique(&found.left, &found.right), "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_basic_bb() {
        for seed in 100..130u64 {
            let g = random_graph(8, 8, 0.6, seed);
            let (dense_result, _) = dense_mbb(&g, 0);
            let (basic_result, _) = basic_bb(&g, 0);
            assert_eq!(dense_result.half(), basic_result.half(), "seed {seed}");
        }
    }

    #[test]
    fn dense_explores_fewer_nodes_than_basic() {
        let g = random_graph(14, 14, 0.85, 5);
        let (r1, dense_stats) = dense_mbb(&g, 0);
        let (r2, basic_stats) = basic_bb(&g, 0);
        assert_eq!(r1.half(), r2.half());
        assert!(
            dense_stats.nodes < basic_stats.nodes,
            "dense {} vs basic {}",
            dense_stats.nodes,
            basic_stats.nodes
        );
    }

    #[test]
    fn seeded_search_respects_fixed_vertices() {
        // Fix a = [0] in a graph where the optimum avoids vertex 0: the
        // seeded search must return the best biclique CONTAINING 0.
        let mut g = LocalGraph::new(3, 3);
        // L0 sees only R0; L1, L2 see R1, R2.
        g.add_edge(0, 0);
        for u in 1..3 {
            for v in 1..3 {
                g.add_edge(u, v);
            }
        }
        let ca: BitSet = {
            let mut s = BitSet::new(3);
            s.insert(1);
            s.insert(2);
            s
        };
        let cb = {
            let mut s = BitSet::new(3);
            s.insert(0); // only N(L0)
            s
        };
        let (b, _) = dense_mbb_seeded(&g, vec![0], vec![], ca, cb, 0, DenseConfig::default());
        assert_eq!(b.half(), 1);
        assert!(b.left.contains(&0));
    }

    #[test]
    fn initial_bound_suppresses_non_improving() {
        let g = random_graph(6, 6, 0.7, 9);
        let brute = brute_force_half(&g);
        let (b, _) = dense_mbb(&g, brute);
        assert_eq!(b.half(), 0, "nothing strictly better than the optimum");
        if brute > 0 {
            let (b, _) = dense_mbb(&g, brute - 1);
            assert_eq!(b.half(), brute);
        }
    }

    #[test]
    fn ablation_without_polynomial_case_still_correct() {
        for seed in 0..15u64 {
            let g = random_graph(7, 7, 0.6, seed ^ 0x77);
            let config = DenseConfig {
                use_polynomial_case: false,
                ..DenseConfig::default()
            };
            let (b, _) = dense_mbb_seeded(
                &g,
                vec![],
                vec![],
                BitSet::full(7),
                BitSet::full(7),
                0,
                config,
            );
            assert_eq!(b.half(), brute_force_half(&g), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_serial_on_random_graphs() {
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1e);
            let nl = rng.gen_range(2..=10usize);
            let nr = rng.gen_range(2..=10usize);
            let density = rng.gen_range(0.3..0.95);
            let g = random_graph(nl, nr, density, seed);
            let (serial, _) = dense_mbb(&g, 0);
            for workers in [2, 4] {
                let (parallel, stats) = dense_mbb_parallel(
                    &g,
                    Vec::new(),
                    Vec::new(),
                    BitSet::full(nl),
                    BitSet::full(nr),
                    0,
                    DenseConfig::default(),
                    &SearchBudget::unlimited(),
                    workers,
                );
                assert_eq!(
                    parallel.half(),
                    serial.half(),
                    "seed {seed} workers {workers}"
                );
                assert!(
                    g.is_biclique(&parallel.left, &parallel.right),
                    "seed {seed} workers {workers}"
                );
                if !stats.worker_nodes.is_empty() {
                    assert_eq!(stats.worker_nodes.len(), workers);
                    let worker_total: u64 = stats.worker_nodes.iter().sum();
                    assert!(worker_total <= stats.nodes);
                }
            }
        }
    }

    #[test]
    fn parallel_respects_initial_bound() {
        let g = random_graph(8, 8, 0.7, 21);
        let brute = brute_force_half(&g);
        let (b, _) = dense_mbb_parallel(
            &g,
            Vec::new(),
            Vec::new(),
            BitSet::full(8),
            BitSet::full(8),
            brute,
            DenseConfig::default(),
            &SearchBudget::unlimited(),
            4,
        );
        assert_eq!(b.half(), 0, "nothing strictly better than the optimum");
    }

    #[test]
    fn parallel_with_one_worker_is_serial() {
        let g = random_graph(9, 9, 0.6, 33);
        let (serial, serial_stats) = dense_mbb(&g, 0);
        let (one, one_stats) = dense_mbb_parallel(
            &g,
            Vec::new(),
            Vec::new(),
            BitSet::full(9),
            BitSet::full(9),
            0,
            DenseConfig::default(),
            &SearchBudget::unlimited(),
            1,
        );
        assert_eq!(serial.half(), one.half());
        assert_eq!(serial_stats.nodes, one_stats.nodes);
        assert!(one_stats.worker_nodes.is_empty());
    }

    #[test]
    fn parallel_cancelled_search_returns_valid_biclique() {
        use crate::budget::CancelToken;
        let g = random_graph(16, 16, 0.8, 7);
        let token = CancelToken::new();
        token.cancel();
        let budget = SearchBudget::with_cancel_token(token);
        let (found, _) = dense_mbb_parallel(
            &g,
            Vec::new(),
            Vec::new(),
            BitSet::full(16),
            BitSet::full(16),
            0,
            DenseConfig::default(),
            &budget,
            4,
        );
        // Best-so-far under an instantly-cancelled budget: possibly empty,
        // always a valid biclique.
        assert!(g.is_biclique(&found.left, &found.right));
        assert_eq!(budget.termination(), crate::budget::Termination::Cancelled);
    }

    #[test]
    fn ablation_without_reductions_still_correct() {
        for seed in 0..15u64 {
            let g = random_graph(7, 7, 0.6, seed ^ 0x99);
            let config = DenseConfig {
                use_reductions: false,
                ..DenseConfig::default()
            };
            let (b, _) = dense_mbb_seeded(
                &g,
                vec![],
                vec![],
                BitSet::full(7),
                BitSet::full(7),
                0,
                config,
            );
            assert_eq!(b.half(), brute_force_half(&g), "seed {seed}");
        }
    }
}
