//! The size-constrained `(a, b)`-biclique problem (§4.2 of the paper).
//!
//! *Given `G` and integers `(a, b)`, decide whether `G` contains a biclique
//! `(A, B)` with `|A| ≥ a` and `|B| ≥ b`* — and produce a witness. The
//! paper uses the notion analytically (maximal `(a, b)` instances inside
//! the polynomial case); this module exposes it as a standalone query,
//! solved by side-aware peeling followed by branch and bound.

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::subgraph::{induce_by_mask, InducedSubgraph};

use crate::budget::SearchBudget;

/// A witness for an `(a, b)`-biclique query: `left.len() ≥ a`,
/// `right.len() ≥ b`, complete between the sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeConstrainedBiclique {
    /// Left vertices (original graph ids, sorted).
    pub left: Vec<u32>,
    /// Right vertices.
    pub right: Vec<u32>,
}

/// Side-aware peeling: keep left vertices of degree ≥ `b` and right
/// vertices of degree ≥ `a`, to fixpoint. Every `(a, b)`-biclique survives.
fn peel(graph: &BipartiteGraph, a: usize, b: usize) -> InducedSubgraph {
    let mut keep_left: Vec<bool> = (0..graph.num_left() as u32)
        .map(|u| graph.degree_left(u) >= b)
        .collect();
    let mut keep_right: Vec<bool> = (0..graph.num_right() as u32)
        .map(|v| graph.degree_right(v) >= a)
        .collect();
    loop {
        let mut changed = false;
        for u in 0..graph.num_left() as u32 {
            if !keep_left[u as usize] {
                continue;
            }
            let degree = graph
                .neighbors_left(u)
                .iter()
                .filter(|&&v| keep_right[v as usize])
                .count();
            if degree < b {
                keep_left[u as usize] = false;
                changed = true;
            }
        }
        for v in 0..graph.num_right() as u32 {
            if !keep_right[v as usize] {
                continue;
            }
            let degree = graph
                .neighbors_right(v)
                .iter()
                .filter(|&&u| keep_left[u as usize])
                .count();
            if degree < a {
                keep_right[v as usize] = false;
                changed = true;
            }
        }
        if !changed {
            return induce_by_mask(graph, &keep_left, &keep_right);
        }
    }
}

/// Decides the `(a, b)`-biclique problem and returns a witness when one
/// exists.
///
/// `(0, b)` and `(a, 0)` queries are answered by side sizes alone (an empty
/// side imposes no completeness constraint).
///
/// ```
/// use mbb_bigraph::generators::complete;
/// use mbb_core::size_constrained::find_size_constrained;
/// let g = complete(3, 5);
/// assert!(find_size_constrained(&g, 3, 5).is_some());
/// assert!(find_size_constrained(&g, 4, 1).is_none());
/// ```
pub fn find_size_constrained(
    graph: &BipartiteGraph,
    a: usize,
    b: usize,
) -> Option<SizeConstrainedBiclique> {
    find_size_constrained_budgeted(graph, a, b, &SearchBudget::unlimited())
}

/// [`find_size_constrained`] under a [`SearchBudget`]. On exhaustion the
/// query returns `None` without having certified infeasibility — the
/// engine's [`Termination`](crate::budget::Termination) distinguishes the
/// two cases.
pub fn find_size_constrained_budgeted(
    graph: &BipartiteGraph,
    a: usize,
    b: usize,
    budget: &SearchBudget,
) -> Option<SizeConstrainedBiclique> {
    if a == 0 || b == 0 {
        // One side empty: any `max(a, …)` vertices of the non-empty side do.
        if a == 0 && graph.num_right() >= b {
            return Some(SizeConstrainedBiclique {
                left: Vec::new(),
                right: (0..b as u32).collect(),
            });
        }
        if b == 0 && graph.num_left() >= a {
            return Some(SizeConstrainedBiclique {
                left: (0..a as u32).collect(),
                right: Vec::new(),
            });
        }
        return None;
    }

    let reduced = peel(graph, a, b);
    if reduced.graph.num_left() < a || reduced.graph.num_right() < b {
        return None;
    }
    let left_ids: Vec<u32> = (0..reduced.graph.num_left() as u32).collect();
    let right_ids: Vec<u32> = (0..reduced.graph.num_right() as u32).collect();
    let local = LocalGraph::induced(&reduced.graph, &left_ids, &right_ids);

    let mut chosen: Vec<u32> = Vec::new();
    let candidates: Vec<u32> = {
        // Degree-descending candidate order finds witnesses early.
        let mut c: Vec<u32> = left_ids.clone();
        c.sort_by_key(|&u| std::cmp::Reverse(reduced.graph.degree_left(u)));
        c
    };
    let common = BitSet::full(local.num_right());
    let mut budget = budget.clone();
    let witness = search(&local, &mut chosen, &common, &candidates, a, b, &mut budget)?;
    let (left_local, right_local) = witness;
    let mut left: Vec<u32> = left_local.iter().map(|&u| reduced.parent_left(u)).collect();
    let mut right: Vec<u32> = right_local
        .iter()
        .map(|&v| reduced.parent_right(v))
        .collect();
    left.sort_unstable();
    right.sort_unstable();
    debug_assert!(graph.is_biclique(&left, &right));
    Some(SizeConstrainedBiclique { left, right })
}

/// DFS over left subsets, keeping the common right-neighbourhood; stops at
/// the first witness.
#[allow(clippy::too_many_arguments)] // internal DFS state
fn search(
    local: &LocalGraph,
    chosen: &mut Vec<u32>,
    common: &BitSet,
    candidates: &[u32],
    a: usize,
    b: usize,
    budget: &mut SearchBudget,
) -> Option<(Vec<u32>, Vec<u32>)> {
    if budget.is_exhausted() {
        return None;
    }
    if chosen.len() >= a && common.len() >= b {
        return Some((chosen.clone(), common.to_vec()[..b].to_vec()));
    }
    if chosen.len() + candidates.len() < a || common.len() < b {
        return None;
    }
    for (i, &u) in candidates.iter().enumerate() {
        let mut next = common.clone();
        // Fused include step: one AND + popcount pass gives the new size.
        if next.and_assign_count(&local.left_row(u)) < b {
            continue;
        }
        chosen.push(u);
        if let Some(found) = search(local, chosen, &next, &candidates[i + 1..], a, b, budget) {
            return Some(found);
        }
        chosen.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    /// Brute-force decision over left subsets.
    fn brute_decide(graph: &BipartiteGraph, a: usize, b: usize) -> bool {
        if a == 0 || b == 0 {
            return (a == 0 && graph.num_right() >= b) || (b == 0 && graph.num_left() >= a);
        }
        let nl = graph.num_left();
        for mask in 0u32..(1 << nl) {
            if (mask.count_ones() as usize) < a {
                continue;
            }
            let mut common: Option<Vec<u32>> = None;
            for u in 0..nl as u32 {
                if mask >> u & 1 == 1 {
                    let n = graph.neighbors_left(u);
                    common = Some(match common {
                        None => n.to_vec(),
                        Some(c) => mbb_bigraph::graph::sorted_intersection(&c, n),
                    });
                }
            }
            if common.is_some_and(|c| c.len() >= b) {
                return true;
            }
        }
        false
    }

    #[test]
    fn matches_brute_force_decision() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(8, 8, 35, seed);
            for a in 0..=4usize {
                for b in 0..=4usize {
                    let found = find_size_constrained(&g, a, b);
                    assert_eq!(
                        found.is_some(),
                        brute_decide(&g, a, b),
                        "seed {seed} ({a},{b})"
                    );
                    if let Some(w) = found {
                        assert!(w.left.len() >= a);
                        assert!(w.right.len() >= b);
                        assert!(g.is_biclique(&w.left, &w.right), "seed {seed} ({a},{b})");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_sided_queries() {
        let g = generators::uniform_edges(5, 7, 12, 1);
        let w = find_size_constrained(&g, 0, 6).unwrap();
        assert_eq!(w.right.len(), 6);
        assert!(w.left.is_empty());
        let w = find_size_constrained(&g, 5, 0).unwrap();
        assert_eq!(w.left.len(), 5);
        assert!(find_size_constrained(&g, 0, 8).is_none());
        assert!(find_size_constrained(&g, 6, 0).is_none());
    }

    #[test]
    fn complete_graph_answers_everything() {
        let g = generators::complete(4, 5);
        assert!(find_size_constrained(&g, 4, 5).is_some());
        assert!(find_size_constrained(&g, 4, 6).is_none());
        assert!(find_size_constrained(&g, 1, 1).is_some());
    }

    #[test]
    fn unbalanced_witness_in_star() {
        let g = BipartiteGraph::from_edges(1, 20, (0..20).map(|v| (0, v))).unwrap();
        let w = find_size_constrained(&g, 1, 20).unwrap();
        assert_eq!(w.left, vec![0]);
        assert_eq!(w.right.len(), 20);
        assert!(find_size_constrained(&g, 2, 1).is_none());
    }

    #[test]
    fn peeling_preserves_witnesses_on_planted_instances() {
        let g = generators::uniform_edges(40, 40, 120, 5);
        let (planted, _, _) = generators::plant_balanced_biclique(&g, 6);
        let w = find_size_constrained(&planted, 6, 6).unwrap();
        assert!(planted.is_biclique(&w.left, &w.right));
    }
}
