//! Incremental MBB maintenance over an evolving edge set.
//!
//! Real bipartite graphs (author–paper, user–item) change constantly.
//! Re-running the full solver from scratch after every batch of updates
//! wastes the strongest pruning signal available: the previous optimum.
//! [`IncrementalMbb`] tracks an edge set, remembers the last solution,
//! and warm-starts an [`MbbEngine`] session with it whenever it is still
//! a biclique of the current graph:
//!
//! * **insertions** never invalidate the cached solution (edges are only
//!   added), so it always seeds the next solve;
//! * **deletions** invalidate it only when a cached pair loses its edge,
//!   which is checked eagerly on removal;
//! * while the edge set is unchanged, the same engine session is reused,
//!   so its cached indices (order, bicore) amortise across repeated
//!   [`solve`](IncrementalMbb::solve) calls and any ad-hoc queries made
//!   through [`engine`](IncrementalMbb::engine).

use std::collections::HashSet;

use mbb_bigraph::graph::{BipartiteGraph, Builder, GraphError};

use crate::biclique::Biclique;
use crate::engine::MbbEngine;
use crate::solver::{MbbSolver, SolveResult};

/// An evolving bipartite graph with warm-started MBB re-solving.
#[derive(Debug)]
pub struct IncrementalMbb {
    num_left: u32,
    num_right: u32,
    edges: HashSet<(u32, u32)>,
    solver: MbbSolver,
    /// Engine over the last materialised snapshot; dropped when the edge
    /// set changes (its cached indices describe the old graph).
    engine: Option<MbbEngine>,
    /// Last solve's optimum; `None` until the first solve or after a
    /// structural change that emptied it.
    cached: Option<Biclique>,
    /// True when the edge set changed since `cached` was computed.
    dirty: bool,
}

impl Clone for IncrementalMbb {
    /// Clones the tracked edge set and cache; the engine session is not
    /// cloned (the clone rebuilds its own on the next solve).
    fn clone(&self) -> IncrementalMbb {
        IncrementalMbb {
            num_left: self.num_left,
            num_right: self.num_right,
            edges: self.edges.clone(),
            solver: self.solver.clone(),
            engine: None,
            cached: self.cached.clone(),
            dirty: self.dirty,
        }
    }
}

impl IncrementalMbb {
    /// An empty evolving graph with fixed side sizes.
    pub fn new(num_left: u32, num_right: u32) -> IncrementalMbb {
        IncrementalMbb::with_solver(num_left, num_right, MbbSolver::new())
    }

    /// Uses a custom-configured solver for the re-solves.
    pub fn with_solver(num_left: u32, num_right: u32, solver: MbbSolver) -> IncrementalMbb {
        IncrementalMbb {
            num_left,
            num_right,
            edges: HashSet::new(),
            solver,
            engine: None,
            cached: None,
            dirty: false,
        }
    }

    /// Seeds the edge set from an existing graph.
    pub fn from_graph(graph: &BipartiteGraph) -> IncrementalMbb {
        let mut inc = IncrementalMbb::new(graph.num_left() as u32, graph.num_right() as u32);
        inc.edges.extend(graph.edges());
        inc
    }

    /// Inserts edge `(u, v)`; returns `false` when it was already present.
    ///
    /// # Errors
    ///
    /// Fails when an endpoint is out of range.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> Result<bool, GraphError> {
        self.check_bounds(u, v)?;
        let added = self.edges.insert((u, v));
        if added {
            self.dirty = true;
            self.engine = None; // session indices describe the old graph
        }
        Ok(added)
    }

    /// Removes edge `(u, v)`; returns `false` when it was absent.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        let removed = self.edges.remove(&(u, v));
        if removed {
            self.dirty = true;
            self.engine = None; // session indices describe the old graph
                                // Deletion can break the cached biclique; drop it eagerly if
                                // the removed edge spans two cached vertices.
            if let Some(cached) = &self.cached {
                if cached.left.binary_search(&u).is_ok() && cached.right.binary_search(&v).is_ok() {
                    self.cached = None;
                }
            }
        }
        removed
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge membership test.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edges.contains(&(u, v))
    }

    /// Materialises the current graph (CSR snapshot).
    pub fn snapshot(&self) -> BipartiteGraph {
        let mut builder = Builder::new(self.num_left, self.num_right);
        builder.reserve(self.edges.len());
        for &(u, v) in &self.edges {
            builder
                .add_edge(u, v)
                .expect("edges were bounds-checked on insert");
        }
        builder.build()
    }

    /// Solves the current graph, warm-starting with the cached previous
    /// optimum when it is still valid. The result is cached for the next
    /// call; repeated calls without modifications return the cache
    /// without re-solving.
    ///
    /// ```
    /// use mbb_core::incremental::IncrementalMbb;
    ///
    /// let mut inc = IncrementalMbb::new(3, 3);
    /// for u in 0..2 {
    ///     for v in 0..2 {
    ///         inc.insert_edge(u, v)?;
    ///     }
    /// }
    /// assert_eq!(inc.solve().biclique.half_size(), 2);
    /// inc.insert_edge(2, 2)?; // pendant edge: optimum unchanged
    /// assert_eq!(inc.solve().biclique.half_size(), 2);
    /// # Ok::<(), mbb_bigraph::graph::GraphError>(())
    /// ```
    pub fn solve(&mut self) -> SolveResult {
        if !self.dirty {
            if let Some(cached) = &self.cached {
                // Nothing changed: the cache is the optimum.
                let stats = crate::stats::SolveStats {
                    optimum_half: cached.half_size(),
                    index: self
                        .engine
                        .as_ref()
                        .map(MbbEngine::index_stats)
                        .unwrap_or_default(),
                    ..Default::default()
                };
                return SolveResult {
                    biclique: cached.clone(),
                    stats,
                };
            }
        }
        let incumbent = self.cached.take();
        let engine = self.refresh_engine();
        let incumbent = match incumbent {
            Some(cached) if cached.is_valid(engine.graph()) => cached,
            _ => Biclique::empty(),
        };
        let result = engine.query().warm_start(incumbent).solve();
        self.cached = Some(result.value.clone());
        self.dirty = false;
        SolveResult {
            biclique: result.value,
            stats: result.stats,
        }
    }

    /// The engine session over the *current* snapshot, (re)built only when
    /// the edge set changed since the last solve. Use it for ad-hoc
    /// queries (top-k, anchored, …) between updates — they share the
    /// session's cached indices with the warm-started solves.
    pub fn engine(&mut self) -> &MbbEngine {
        self.refresh_engine()
    }

    fn refresh_engine(&mut self) -> &MbbEngine {
        if self.engine.is_none() {
            let graph = self.snapshot();
            self.engine = Some(MbbEngine::with_config(graph, self.solver.config));
        }
        self.engine.as_ref().expect("engine just ensured")
    }

    fn check_bounds(&self, u: u32, v: u32) -> Result<(), GraphError> {
        // Reuse the builder's validation by constructing a throwaway; the
        // check itself is trivial, so do it inline instead.
        if u >= self.num_left || v >= self.num_right {
            // Build the same error the Builder reports for consistency.
            let mut builder = Builder::new(self.num_left, self.num_right);
            return builder.add_edge(u, v).map(|_| ());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::MbbSolver;

    use mbb_bigraph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_from_scratch_under_insertions() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut inc = IncrementalMbb::new(10, 10);
        for _ in 0..60 {
            let u = rng.gen_range(0..10);
            let v = rng.gen_range(0..10);
            inc.insert_edge(u, v).unwrap();
            let fresh = MbbSolver::new().solve(&inc.snapshot()).biclique;
            let warm = inc.solve();
            assert_eq!(warm.biclique.half_size(), fresh.half_size());
            assert!(warm.biclique.is_valid(&inc.snapshot()));
        }
    }

    #[test]
    fn matches_from_scratch_under_mixed_updates() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::uniform_edges(10, 10, 45, 5);
        let mut inc = IncrementalMbb::from_graph(&g);
        for step in 0..40 {
            let u = rng.gen_range(0..10u32);
            let v = rng.gen_range(0..10u32);
            if rng.gen_bool(0.4) {
                inc.remove_edge(u, v);
            } else {
                inc.insert_edge(u, v).unwrap();
            }
            let fresh = MbbSolver::new().solve(&inc.snapshot()).biclique;
            let warm = inc.solve();
            assert_eq!(warm.biclique.half_size(), fresh.half_size(), "step {step}");
        }
    }

    #[test]
    fn deletion_inside_cached_solution_invalidates() {
        let mut inc = IncrementalMbb::new(2, 2);
        for u in 0..2 {
            for v in 0..2 {
                inc.insert_edge(u, v).unwrap();
            }
        }
        assert_eq!(inc.solve().biclique.half_size(), 2);
        inc.remove_edge(0, 0);
        assert!(inc.cached.is_none(), "cache dropped eagerly");
        assert_eq!(inc.solve().biclique.half_size(), 1);
    }

    #[test]
    fn deletion_outside_cached_solution_keeps_cache() {
        let mut inc = IncrementalMbb::new(3, 3);
        for u in 0..2 {
            for v in 0..2 {
                inc.insert_edge(u, v).unwrap();
            }
        }
        inc.insert_edge(2, 2).unwrap();
        assert_eq!(inc.solve().biclique.half_size(), 2);
        inc.remove_edge(2, 2);
        assert!(inc.cached.is_some());
        assert_eq!(inc.solve().biclique.half_size(), 2);
    }

    #[test]
    fn repeated_solves_use_cache() {
        let mut inc = IncrementalMbb::new(4, 4);
        inc.insert_edge(0, 0).unwrap();
        let first = inc.solve();
        let second = inc.solve();
        assert_eq!(first.biclique, second.biclique);
    }

    #[test]
    fn duplicate_insert_reports_false() {
        let mut inc = IncrementalMbb::new(2, 2);
        assert!(inc.insert_edge(0, 0).unwrap());
        assert!(!inc.insert_edge(0, 0).unwrap());
        assert!(!inc.remove_edge(1, 1));
    }

    #[test]
    fn out_of_range_insert_fails() {
        let mut inc = IncrementalMbb::new(2, 2);
        assert!(inc.insert_edge(2, 0).is_err());
        assert!(inc.insert_edge(0, 2).is_err());
        assert_eq!(inc.num_edges(), 0);
    }

    #[test]
    fn empty_graph_solves_empty() {
        let mut inc = IncrementalMbb::new(5, 5);
        assert_eq!(inc.solve().biclique.half_size(), 0);
    }

    #[test]
    fn snapshot_matches_edge_set() {
        let mut inc = IncrementalMbb::new(3, 3);
        inc.insert_edge(0, 1).unwrap();
        inc.insert_edge(2, 0).unwrap();
        let g = inc.snapshot();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 0));
        assert!(inc.has_edge(0, 1));
        assert!(!inc.has_edge(1, 1));
    }
}
