//! Polynomial solver for near-complete candidate subgraphs — Lemma 3,
//! Observations 1–3 and Algorithm 2 (`dynamicMBB`) of the paper.
//!
//! When every candidate vertex misses at most two neighbours on the other
//! candidate side, the complement restricted to the candidates is a union of
//! paths and cycles (Observation 1). Choosing `(A' ⊆ CA, B' ⊆ CB)` with
//! `A' × B'` complete is then exactly choosing an *independent set* of each
//! complement component (complement edges always join `L` to `R`), so the
//! per-component maximal `(a, b)` instance lists are closed-form
//! (Observation 2; re-derived here because the published text is garbled —
//! see `DESIGN.md` §6):
//!
//! * odd path (`p` odd, `s = (p+1)/2` vertices per side): `(k, s − k)`;
//! * even path (`p` even, endpoints on side `X` with `p/2 + 1` vertices):
//!   `(p/2 + 1, 0)` and `(p/2 − j, j)` for `j = 1..=p/2` (counts on `X`
//!   first);
//! * cycle (`p ≥ 4` even): `(p/2, 0)`, `(0, p/2)`, plus every `(x, y)` with
//!   `x, y ≥ 1`, `x + y = p/2 − 1` when `p > 4`.
//!
//! Combining components is the paper's staged table (Algorithm 2 lines
//! 5–10); we implement it as the equivalent one-dimensional knapsack DP
//! `f_p(a) = max b achievable with the first p components and left-count a`
//! — correct because the final objective `min(i, j)` is monotone in `j`, and
//! skipping a component is always dominated by taking one of its maximal
//! instances. Same `O(n²)` bound, simpler reconstruction.

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::complement::{decompose_missing, Component, ComponentKind, Decomposition};
use mbb_bigraph::local::LocalGraph;

use crate::stats::SearchStats;

/// Maximal `(left_count, right_count)` instances of one complement
/// component (Observation 2, corrected).
pub fn maximal_instances(component: &Component) -> Vec<(usize, usize)> {
    let x_is_left = component.vertices[0].left;
    let translate = |x: usize, y: usize| if x_is_left { (x, y) } else { (y, x) };
    let p = component.length();
    match component.kind {
        ComponentKind::OddPath => {
            let s = p.div_ceil(2);
            (0..=s).map(|k| translate(k, s - k)).collect()
        }
        ComponentKind::EvenPath => {
            // X = side of the endpoints = side of vertices[0], with
            // p/2 + 1 vertices; the other side has p/2.
            let sx = p / 2 + 1;
            let sy = p / 2;
            let mut out = Vec::with_capacity(sy + 1);
            out.push(translate(sx, 0));
            for j in 1..=sy {
                out.push(translate(sy - j, j));
            }
            out
        }
        ComponentKind::Cycle => {
            debug_assert!(p >= 4 && p.is_multiple_of(2));
            let half = p / 2;
            let mut out = vec![translate(half, 0), translate(0, half)];
            if p > 4 {
                for x in 1..=(half - 2) {
                    out.push(translate(x, half - 1 - x));
                }
            }
            out
        }
    }
}

/// Picks concrete vertices realising the instance `(left_count,
/// right_count)` from a component. The instance must come from
/// [`maximal_instances`].
pub fn realize_instance(
    component: &Component,
    left_count: usize,
    right_count: usize,
    out_left: &mut Vec<u32>,
    out_right: &mut Vec<u32>,
) {
    let x_is_left = component.vertices[0].left;
    // Counts on the X side (even positions) and Y side (odd positions).
    let (need_even, need_odd) = if x_is_left {
        (left_count, right_count)
    } else {
        (right_count, left_count)
    };
    match component.kind {
        ComponentKind::OddPath | ComponentKind::EvenPath => {
            realize_on_path(
                &component.vertices,
                need_even,
                need_odd,
                out_left,
                out_right,
            );
        }
        ComponentKind::Cycle => {
            let m = component.vertices.len();
            if need_odd == 0 || need_even == 0 {
                // All-evens or all-odds are independent in an even cycle.
                realize_on_path(
                    &component.vertices,
                    need_even,
                    need_odd,
                    out_left,
                    out_right,
                );
            } else {
                // Mixed: cut the cycle by dropping the last vertex; the
                // remaining path has p/2 even and p/2 − 1 odd positions,
                // enough for any x + y = p/2 − 1 split.
                realize_on_path(
                    &component.vertices[..m - 1],
                    need_even,
                    need_odd,
                    out_left,
                    out_right,
                );
            }
        }
    }
}

/// Chooses `need_even` even positions from the left end and `need_odd` odd
/// positions from the right end of a path — an independent set whenever the
/// request is feasible (which all maximal instances are).
fn realize_on_path(
    vertices: &[mbb_bigraph::local::LocalVertex],
    need_even: usize,
    need_odd: usize,
    out_left: &mut Vec<u32>,
    out_right: &mut Vec<u32>,
) {
    let m = vertices.len();
    let even_count = m.div_ceil(2);
    let odd_count = m / 2;
    assert!(need_even <= even_count && need_odd <= odd_count);
    if need_even > 0 && need_odd > 0 {
        let last_odd = if m.is_multiple_of(2) { m - 1 } else { m - 2 };
        let smallest_taken_odd = last_odd - 2 * (need_odd - 1);
        let largest_taken_even = 2 * (need_even - 1);
        assert!(
            smallest_taken_odd >= largest_taken_even + 2,
            "infeasible instance ({need_even}, {need_odd}) on path of {m}"
        );
    }
    let mut push = |position: usize| {
        let v = vertices[position];
        if v.left {
            out_left.push(v.index);
        } else {
            out_right.push(v.index);
        }
    };
    for k in 0..need_even {
        push(2 * k);
    }
    let last_odd = if m.is_multiple_of(2) { m - 1 } else { m - 2 };
    for k in 0..need_odd {
        push(last_odd - 2 * k);
    }
}

/// Outcome of a [`dynamic_mbb`] solve.
#[derive(Debug, Clone)]
pub struct PolySolution {
    /// `|A| + chosen left candidates` (the `i` of the paper's table).
    pub left_total: usize,
    /// `|B| + chosen right candidates`.
    pub right_total: usize,
    /// Chosen left candidate indices (local; excludes the fixed `A`).
    pub chosen_left: Vec<u32>,
    /// Chosen right candidate indices.
    pub chosen_right: Vec<u32>,
}

impl PolySolution {
    /// The balanced half-size this solution yields.
    pub fn half(&self) -> usize {
        self.left_total.min(self.right_total)
    }
}

/// Algorithm 2: exact MBB over `(A, B) + (CA, CB)` when the candidate
/// subgraph satisfies Lemma 3. Returns `None` when some candidate misses
/// three or more neighbours (the caller must branch instead).
///
/// `base_left` / `base_right` are `|A|` / `|B|` of the partial result; the
/// returned totals include them.
pub fn dynamic_mbb(
    graph: &LocalGraph,
    ca: &BitSet,
    cb: &BitSet,
    base_left: usize,
    base_right: usize,
    stats: &mut SearchStats,
) -> Option<PolySolution> {
    let decomposition = decompose_missing(graph, ca, cb)?;
    stats.poly_solves += 1;
    Some(solve_decomposition(&decomposition, base_left, base_right))
}

/// The DP over an already-computed decomposition.
fn solve_decomposition(
    decomposition: &Decomposition,
    base_left: usize,
    base_right: usize,
) -> PolySolution {
    let i0 = base_left + decomposition.trivial_left.len();
    let j0 = base_right + decomposition.trivial_right.len();
    let components = &decomposition.components;

    let instance_lists: Vec<Vec<(usize, usize)>> =
        components.iter().map(maximal_instances).collect();
    let max_a: usize = components.iter().map(|c| c.left_count()).sum();

    // f[p][a] = max right-count achievable with the first p components and
    // exactly `a` chosen left vertices; -1 = unreachable.
    let width = max_a + 1;
    let mut layers: Vec<Vec<i64>> = Vec::with_capacity(components.len() + 1);
    let mut first = vec![-1i64; width];
    first[0] = 0;
    layers.push(first);
    for instances in &instance_lists {
        let prev = layers.last().expect("at least the base layer");
        let mut next = vec![-1i64; width];
        #[allow(clippy::needless_range_loop)] // `a` is the DP coordinate
        for a in 0..width {
            if prev[a] < 0 {
                continue;
            }
            for &(x, y) in instances {
                let na = a + x;
                let nb = prev[a] + y as i64;
                if next[na] < nb {
                    next[na] = nb;
                }
            }
        }
        layers.push(next);
    }

    // Best cell: maximise min(i, j), tie-break on total size.
    let last = layers.last().expect("base layer exists");
    let mut best_a = 0usize;
    let mut best_key = (0usize, 0usize);
    let mut found = false;
    #[allow(clippy::needless_range_loop)] // `a` is the DP coordinate
    for a in 0..width {
        if last[a] < 0 {
            continue;
        }
        let i = i0 + a;
        let j = j0 + last[a] as usize;
        let key = (i.min(j), i + j);
        if !found || key > best_key {
            best_key = key;
            best_a = a;
            found = true;
        }
    }
    debug_assert!(found, "base cell is always reachable");

    // Backtrack the chosen instance per component.
    let mut chosen_left: Vec<u32> = decomposition.trivial_left.clone();
    let mut chosen_right: Vec<u32> = decomposition.trivial_right.clone();
    let mut a = best_a;
    let mut b = last[best_a];
    for p in (0..components.len()).rev() {
        let prev = &layers[p];
        let mut matched = false;
        for &(x, y) in &instance_lists[p] {
            if a >= x && prev[a - x] >= 0 && prev[a - x] + y as i64 == b {
                realize_instance(&components[p], x, y, &mut chosen_left, &mut chosen_right);
                a -= x;
                b -= y as i64;
                matched = true;
                break;
            }
        }
        debug_assert!(matched, "DP backtrack must find a predecessor");
    }
    debug_assert_eq!(a, 0);
    debug_assert_eq!(b, 0);

    chosen_left.sort_unstable();
    chosen_right.sort_unstable();
    PolySolution {
        left_total: i0 + best_a,
        right_total: j0 + last[best_a] as usize,
        chosen_left,
        chosen_right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::local::LocalVertex;

    fn make_path(sides: &[bool]) -> Component {
        let mut li = 0u32;
        let mut ri = 0u32;
        let vertices = sides
            .iter()
            .map(|&left| {
                if left {
                    li += 1;
                    LocalVertex::left(li - 1)
                } else {
                    ri += 1;
                    LocalVertex::right(ri - 1)
                }
            })
            .collect::<Vec<_>>();
        let edges = vertices.len() - 1;
        Component {
            vertices,
            kind: if edges % 2 == 1 {
                ComponentKind::OddPath
            } else {
                ComponentKind::EvenPath
            },
        }
    }

    fn make_cycle(len: usize) -> Component {
        assert!(len >= 4 && len.is_multiple_of(2));
        let vertices = (0..len)
            .map(|i| {
                if i % 2 == 0 {
                    LocalVertex::left((i / 2) as u32)
                } else {
                    LocalVertex::right((i / 2) as u32)
                }
            })
            .collect();
        Component {
            vertices,
            kind: ComponentKind::Cycle,
        }
    }

    /// Exhaustive maximal (left, right) instances of a component: a chosen
    /// set is feasible iff it is an independent set of the path/cycle.
    fn brute_instances(c: &Component) -> Vec<(usize, usize)> {
        let m = c.vertices.len();
        let mut feasible = std::collections::HashSet::new();
        for mask in 0u32..(1 << m) {
            let mut independent = true;
            for i in 0..m {
                if mask >> i & 1 == 0 {
                    continue;
                }
                let next = (i + 1) % m;
                let adjacent_wrap = c.kind == ComponentKind::Cycle || i + 1 < m;
                if i + 1 < m || (c.kind == ComponentKind::Cycle && m > 1) {
                    let _ = adjacent_wrap;
                }
                // Path adjacency.
                if i + 1 < m && mask >> (i + 1) & 1 == 1 {
                    independent = false;
                    break;
                }
                // Cycle wrap adjacency.
                if c.kind == ComponentKind::Cycle && i == m - 1 && mask & 1 == 1 && m > 2 {
                    independent = false;
                    break;
                }
                let _ = next;
            }
            if !independent {
                continue;
            }
            let mut l = 0;
            let mut r = 0;
            for i in 0..m {
                if mask >> i & 1 == 1 {
                    if c.vertices[i].left {
                        l += 1;
                    } else {
                        r += 1;
                    }
                }
            }
            feasible.insert((l, r));
        }
        // Keep only maximal pairs.
        feasible
            .iter()
            .copied()
            .filter(|&(a, b)| {
                !feasible
                    .iter()
                    .any(|&(a2, b2)| (a2, b2) != (a, b) && a2 >= a && b2 >= b)
            })
            .collect()
    }

    fn sorted(mut v: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn odd_path_instances_match_brute_force() {
        for len in [2usize, 4, 6, 8, 10] {
            let sides: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
            let c = make_path(&sides);
            assert_eq!(c.kind, ComponentKind::OddPath);
            assert_eq!(
                sorted(maximal_instances(&c)),
                sorted(brute_instances(&c)),
                "length {len}"
            );
        }
    }

    #[test]
    fn even_path_instances_match_brute_force() {
        for len in [3usize, 5, 7, 9] {
            // Endpoints on the left.
            let sides: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
            let c = make_path(&sides);
            assert_eq!(c.kind, ComponentKind::EvenPath);
            assert_eq!(
                sorted(maximal_instances(&c)),
                sorted(brute_instances(&c)),
                "length {len} endpoints-left"
            );
            // Endpoints on the right.
            let sides: Vec<bool> = (0..len).map(|i| i % 2 == 1).collect();
            let c = make_path(&sides);
            assert_eq!(
                sorted(maximal_instances(&c)),
                sorted(brute_instances(&c)),
                "length {len} endpoints-right"
            );
        }
    }

    #[test]
    fn cycle_instances_match_brute_force() {
        for len in [4usize, 6, 8, 10, 12] {
            let c = make_cycle(len);
            assert_eq!(
                sorted(maximal_instances(&c)),
                sorted(brute_instances(&c)),
                "cycle {len}"
            );
        }
    }

    #[test]
    fn single_complement_edge() {
        // Path of length 1: instances (1,0) and (0,1).
        let c = make_path(&[true, false]);
        assert_eq!(sorted(maximal_instances(&c)), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn realize_yields_independent_sets() {
        let check = |c: &Component| {
            for (a, b) in maximal_instances(c) {
                let mut left = Vec::new();
                let mut right = Vec::new();
                realize_instance(c, a, b, &mut left, &mut right);
                assert_eq!(left.len(), a, "{:?} ({a},{b})", c.kind);
                assert_eq!(right.len(), b, "{:?} ({a},{b})", c.kind);
                // Chosen vertices must form an independent set: no two
                // consecutive component positions chosen.
                let chosen: Vec<bool> = c
                    .vertices
                    .iter()
                    .map(|v| {
                        if v.left {
                            left.contains(&v.index)
                        } else {
                            right.contains(&v.index)
                        }
                    })
                    .collect();
                let m = chosen.len();
                for i in 0..m - 1 {
                    assert!(
                        !(chosen[i] && chosen[i + 1]),
                        "{:?} ({a},{b}) pos {i}",
                        c.kind
                    );
                }
                if c.kind == ComponentKind::Cycle {
                    assert!(!(chosen[m - 1] && chosen[0]), "{:?} wrap ({a},{b})", c.kind);
                }
            }
        };
        for len in [2usize, 3, 4, 5, 6, 7, 8, 9, 10] {
            let sides: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
            check(&make_path(&sides));
            let sides: Vec<bool> = (0..len).map(|i| i % 2 == 1).collect();
            check(&make_path(&sides));
        }
        for len in [4usize, 6, 8, 10] {
            check(&make_cycle(len));
        }
    }

    /// Brute-force optimum over a candidate LocalGraph: for every subset of
    /// CA, pick all CB vertices adjacent to the whole subset.
    fn brute_candidate_optimum(
        g: &LocalGraph,
        ca: &BitSet,
        cb: &BitSet,
        base_left: usize,
        base_right: usize,
    ) -> usize {
        let ca_list = ca.to_vec();
        let mut best = 0usize;
        for mask in 0u32..(1 << ca_list.len()) {
            let mut common = cb.clone();
            let mut size_a = 0usize;
            for (idx, &u) in ca_list.iter().enumerate() {
                if mask >> idx & 1 == 1 {
                    common.intersect_with(&g.left_row(u));
                    size_a += 1;
                }
            }
            let half = (base_left + size_a).min(base_right + common.len());
            best = best.max(half);
        }
        best
    }

    #[test]
    fn dynamic_mbb_matches_brute_force_on_near_complete_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nl = rng.gen_range(1..=7usize);
            let nr = rng.gen_range(1..=7usize);
            // Start complete, remove ≤ 2 per row/column.
            let mut g = LocalGraph::new(nl, nr);
            for u in 0..nl {
                for v in 0..nr {
                    g.add_edge(u as u32, v as u32);
                }
            }
            // Remove a random near-perfect matching-ish set of edges so
            // each vertex misses at most 2.
            let mut missing_l = vec![0usize; nl];
            let mut missing_r = vec![0usize; nr];
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for u in 0..nl {
                for v in 0..nr {
                    edges.push((u as u32, v as u32));
                }
            }
            let mut removed = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(0..=nl * nr / 2) {
                let &(u, v) = &edges[rng.gen_range(0..edges.len())];
                if missing_l[u as usize] < 2 && missing_r[v as usize] < 2 && removed.insert((u, v))
                {
                    missing_l[u as usize] += 1;
                    missing_r[v as usize] += 1;
                }
            }
            let mut g = LocalGraph::new(nl, nr);
            for u in 0..nl as u32 {
                for v in 0..nr as u32 {
                    if !removed.contains(&(u, v)) {
                        g.add_edge(u, v);
                    }
                }
            }
            let ca = BitSet::full(nl);
            let cb = BitSet::full(nr);
            let mut stats = SearchStats::default();
            let solution = dynamic_mbb(&g, &ca, &cb, 0, 0, &mut stats)
                .expect("graph satisfies Lemma 3 by construction");
            let brute = brute_candidate_optimum(&g, &ca, &cb, 0, 0);
            assert_eq!(solution.half(), brute, "seed {seed}");
            // The returned witness must be a biclique of the right size.
            assert!(
                g.is_biclique(&solution.chosen_left, &solution.chosen_right),
                "seed {seed}: witness not a biclique"
            );
            assert_eq!(solution.chosen_left.len(), solution.left_total);
            assert_eq!(solution.chosen_right.len(), solution.right_total);
        }
    }

    #[test]
    fn dynamic_mbb_with_base_offsets() {
        // Complete 2x2 candidates with |A| = 3, |B| = 1 already fixed.
        let mut g = LocalGraph::new(2, 2);
        for u in 0..2 {
            for v in 0..2 {
                g.add_edge(u, v);
            }
        }
        let ca = BitSet::full(2);
        let cb = BitSet::full(2);
        let mut stats = SearchStats::default();
        let s = dynamic_mbb(&g, &ca, &cb, 3, 1, &mut stats).unwrap();
        // Everything is trivial: totals are (3+2, 1+2) → half 3.
        assert_eq!(s.left_total, 5);
        assert_eq!(s.right_total, 3);
        assert_eq!(s.half(), 3);
    }

    #[test]
    fn dynamic_mbb_rejects_sparse_candidates() {
        let g = LocalGraph::new(3, 3); // empty: every vertex misses 3
        let ca = BitSet::full(3);
        let cb = BitSet::full(3);
        let mut stats = SearchStats::default();
        assert!(dynamic_mbb(&g, &ca, &cb, 0, 0, &mut stats).is_none());
    }

    #[test]
    fn dynamic_mbb_empty_candidates() {
        let g = LocalGraph::new(2, 2);
        let ca = BitSet::new(2);
        let cb = BitSet::new(2);
        let mut stats = SearchStats::default();
        let s = dynamic_mbb(&g, &ca, &cb, 4, 2, &mut stats).unwrap();
        assert_eq!(s.left_total, 4);
        assert_eq!(s.right_total, 2);
        assert!(s.chosen_left.is_empty());
    }
}
