//! `hMBB` — Algorithm 5: fast heuristics plus graph reduction.
//!
//! As §5.2 stresses, these heuristics exist to *prune*, not to be clever:
//! they must run in near-linear time and produce a large enough incumbent
//! that the Lemma 4 core reduction collapses the graph. Two greedy passes
//! are made — one prioritised by degree, one by core number — each followed
//! by a reduction to the `(|A*|+1)`-core, with the Lemma 5 early-termination
//! check (`half == δ` proves optimality) in between.

use mbb_bigraph::core_decomp::{core_decomposition, k_core_mask};
use mbb_bigraph::graph::{BipartiteGraph, Side, Vertex};
use mbb_bigraph::subgraph::{induce_by_mask, InducedSubgraph};

use crate::biclique::Biclique;

/// How many high-score vertices each greedy pass grows from.
pub const DEFAULT_SEEDS: usize = 8;

/// Per-step cap on candidate-scoring work inside the greedy growth; keeps
/// `hMBB` near-linear on hub-heavy graphs.
const SCAN_CAP: usize = 4_000;

/// Grows a balanced biclique greedily from `seed`, guided by `score`
/// (higher = grown first).
///
/// Maintains `(A, C)` with `A × C` complete; each step adds the same-side
/// vertex whose neighbourhood keeps `C` largest, recording the best
/// `min(|A|, |C|)` snapshot seen.
pub fn grow_from_seed(graph: &BipartiteGraph, seed: Vertex, score: &[u64]) -> Biclique {
    let mut a: Vec<u32> = vec![seed.index];
    let mut c: Vec<u32> = graph.neighbors(seed).to_vec();
    let seed_side = seed.side;

    let mut best = snapshot(&a, &c, seed_side);
    let same_side_count = match seed_side {
        Side::Left => graph.num_left(),
        Side::Right => graph.num_right(),
    };
    let mut counter: Vec<u32> = vec![0; same_side_count];
    let mut in_a: Vec<bool> = vec![false; same_side_count];
    in_a[seed.index as usize] = true;

    loop {
        if c.is_empty() {
            break;
        }
        // Score same-side extension candidates by |N(w) ∩ C| over a capped
        // scan of C (counts are a guide only; the C update below is exact).
        let mut touched: Vec<u32> = Vec::new();
        let mut scanned = 0usize;
        for &mid in &c {
            let mid_v = Vertex {
                side: seed_side.opposite(),
                index: mid,
            };
            for &w in graph.neighbors(mid_v) {
                if in_a[w as usize] {
                    continue;
                }
                if counter[w as usize] == 0 {
                    touched.push(w);
                }
                counter[w as usize] += 1;
                scanned += 1;
            }
            if scanned > SCAN_CAP {
                break;
            }
        }
        let target = a.len() + 1;
        let choice = touched
            .iter()
            .copied()
            .max_by_key(|&w| {
                let count = counter[w as usize] as usize;
                (count.min(target), count, score[global(graph, seed_side, w)])
            })
            .filter(|&w| counter[w as usize] > 0);
        for &w in &touched {
            counter[w as usize] = 0;
        }
        let Some(w) = choice else { break };

        // Exact update: C ← C ∩ N(w).
        let w_v = Vertex {
            side: seed_side,
            index: w,
        };
        let wn = graph.neighbors(w_v);
        let new_c = mbb_bigraph::graph::sorted_intersection(&c, wn);
        if new_c.is_empty() {
            break;
        }
        a.push(w);
        in_a[w as usize] = true;
        c = new_c;
        let cur = snapshot(&a, &c, seed_side);
        if cur.half_size() > best.half_size() {
            best = cur;
        }
        // Once |C| ≤ |A|, further growth can only shrink min(|A|, |C|).
        if c.len() <= a.len() {
            break;
        }
    }
    best
}

fn global(graph: &BipartiteGraph, side: Side, index: u32) -> usize {
    graph.global_id(Vertex { side, index })
}

fn snapshot(a: &[u32], c: &[u32], a_side: Side) -> Biclique {
    let (left, right) = match a_side {
        Side::Left => (a.to_vec(), c.to_vec()),
        Side::Right => (c.to_vec(), a.to_vec()),
    };
    Biclique::balanced(left, right)
}

/// One greedy pass: grow from the `seeds` highest-score vertices and keep
/// the best result.
pub fn greedy_balanced(graph: &BipartiteGraph, score: &[u64], seeds: usize) -> Biclique {
    let mut order: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(score[g as usize]));
    let mut best = Biclique::empty();
    for &g in order.iter().take(seeds.max(1)) {
        let v = graph.vertex_of_global(g as usize);
        if graph.degree(v) <= best.half_size() {
            continue; // cannot beat the incumbent from this seed
        }
        let found = grow_from_seed(graph, v, score);
        if found.half_size() > best.half_size() {
            best = found;
        }
    }
    best
}

/// Result of the `hMBB` stage.
#[derive(Debug, Clone)]
pub struct HmbbOutcome {
    /// Best balanced biclique found, in the *input graph's* vertex ids.
    pub best: Biclique,
    /// The Lemma 4-reduced graph with maps back to the input graph.
    pub reduced: InducedSubgraph,
    /// Degeneracy of the reduced graph.
    pub degeneracy: u32,
    /// True when Lemma 5 proved `best` optimal (early termination).
    pub proven_optimal: bool,
}

/// Algorithm 5. `seeds` controls both greedy passes; `use_reduction`
/// disables Lemma 4/5 for the `bd2` ablation (the returned "reduced" graph
/// is then the input itself).
///
/// ```
/// use mbb_bigraph::generators::complete;
/// use mbb_core::heuristic::hmbb;
/// let outcome = hmbb(&complete(5, 5), 4, true);
/// assert_eq!(outcome.best.half_size(), 5);
/// assert!(outcome.proven_optimal); // Lemma 5: δ of the reduced graph ≤ 5
/// ```
pub fn hmbb(graph: &BipartiteGraph, seeds: usize, use_reduction: bool) -> HmbbOutcome {
    // Pass 1: maximum-degree-based greedy.
    let degree_score: Vec<u64> = graph.vertices().map(|v| graph.degree(v) as u64).collect();
    let mut best = greedy_balanced(graph, &degree_score, seeds);

    if !use_reduction {
        return HmbbOutcome {
            best,
            reduced: InducedSubgraph::identity(graph),
            degeneracy: core_decomposition(graph).degeneracy,
            proven_optimal: false,
        };
    }

    // Reduction to the (|A*|+1)-core, then the Lemma 5 check.
    let cores = core_decomposition(graph);
    let reduced = reduce_to_core(graph, &cores, best.half_size() as u32 + 1);
    let cores_reduced = core_decomposition(&reduced.graph);
    // Lemma 5 (strengthened): any balanced biclique strictly larger than
    // the incumbent survives the reduction as a (half+1)-core, so
    // δ(G') ≤ half proves optimality. The paper's `2δ = |A*|+|B*|` check is
    // the equality special case.
    if cores_reduced.degeneracy as usize <= best.half_size() {
        return HmbbOutcome {
            best,
            degeneracy: cores_reduced.degeneracy,
            reduced,
            proven_optimal: true,
        };
    }

    // Pass 2: core-number-based greedy on the reduced graph.
    let core_score: Vec<u64> = cores_reduced.core.iter().map(|&c| c as u64).collect();
    let local_best = greedy_balanced(&reduced.graph, &core_score, seeds);
    if local_best.half_size() > best.half_size() {
        best = map_to_parent(&local_best, &reduced);
        let rereduced = reduce_to_core(&reduced.graph, &cores_reduced, best.half_size() as u32 + 1);
        // Compose the two reductions' id maps.
        let composed = InducedSubgraph {
            left_ids: rereduced
                .left_ids
                .iter()
                .map(|&l| reduced.left_ids[l as usize])
                .collect(),
            right_ids: rereduced
                .right_ids
                .iter()
                .map(|&r| reduced.right_ids[r as usize])
                .collect(),
            graph: rereduced.graph,
        };
        let degeneracy = core_decomposition(&composed.graph).degeneracy;
        let proven_optimal = degeneracy as usize <= best.half_size();
        return HmbbOutcome {
            best,
            reduced: composed,
            degeneracy,
            proven_optimal,
        };
    }

    HmbbOutcome {
        best,
        degeneracy: cores_reduced.degeneracy,
        reduced,
        proven_optimal: false,
    }
}

/// Lemma 4: keep only the `k`-core.
fn reduce_to_core(
    graph: &BipartiteGraph,
    cores: &mbb_bigraph::core_decomp::CoreDecomposition,
    k: u32,
) -> InducedSubgraph {
    let mask = k_core_mask(cores, k);
    let nl = graph.num_left();
    let keep_left = &mask[..nl];
    let keep_right = &mask[nl..];
    induce_by_mask(graph, keep_left, keep_right)
}

/// Translates a biclique from subgraph-local ids to the parent graph's ids.
pub fn map_to_parent(biclique: &Biclique, subgraph: &InducedSubgraph) -> Biclique {
    Biclique::balanced(
        biclique
            .left
            .iter()
            .map(|&l| subgraph.parent_left(l))
            .collect(),
        biclique
            .right
            .iter()
            .map(|&r| subgraph.parent_right(r))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    #[test]
    fn greedy_finds_full_biclique_on_complete_graph() {
        let g = generators::complete(5, 5);
        let score: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
        let b = greedy_balanced(&g, &score, 4);
        assert_eq!(b.half_size(), 5);
        assert!(b.is_valid(&g));
    }

    #[test]
    fn greedy_on_empty_graph() {
        let g = BipartiteGraph::from_edges(3, 3, []).unwrap();
        let score = vec![0u64; 6];
        let b = greedy_balanced(&g, &score, 4);
        assert_eq!(b.half_size(), 0);
    }

    #[test]
    fn greedy_finds_planted_biclique() {
        for seed in 0..5 {
            let g = generators::chung_lu_bipartite(
                &generators::ChungLuParams {
                    num_left: 300,
                    num_right: 300,
                    num_edges: 1200,
                    left_exponent: 0.8,
                    right_exponent: 0.8,
                },
                seed,
            );
            let (planted, _, _) = generators::plant_balanced_biclique(&g, 6);
            let score: Vec<u64> = planted
                .vertices()
                .map(|v| planted.degree(v) as u64)
                .collect();
            let b = greedy_balanced(&planted, &score, 8);
            assert!(b.is_valid(&planted), "seed {seed}");
            assert!(
                b.half_size() >= 5,
                "seed {seed}: found only {} of planted 6",
                b.half_size()
            );
        }
    }

    #[test]
    fn hmbb_terminates_early_on_planted_core() {
        // A clean complete 6x6 planted into a very sparse background has
        // degeneracy exactly 6, so Lemma 5 fires as soon as greedy finds it.
        let g = generators::chung_lu_bipartite(
            &generators::ChungLuParams {
                num_left: 400,
                num_right: 400,
                num_edges: 800,
                left_exponent: 0.6,
                right_exponent: 0.6,
            },
            3,
        );
        let (planted, _, _) = generators::plant_balanced_biclique(&g, 6);
        let outcome = hmbb(&planted, 8, true);
        assert!(outcome.best.is_valid(&planted));
        assert!(outcome.best.half_size() >= 5);
        if outcome.proven_optimal {
            // Strengthened Lemma 5: δ of the reduced graph cannot exceed
            // the incumbent half-size.
            assert!(outcome.degeneracy as usize <= outcome.best.half_size());
        }
    }

    #[test]
    fn hmbb_reduction_keeps_better_bicliques() {
        // Any biclique strictly larger than the incumbent survives the
        // (|A*|+1)-core reduction: check the planted one is intact when
        // the heuristic undershoots.
        let g = generators::uniform_edges(60, 60, 240, 7);
        let (planted, left, right) = generators::plant_balanced_biclique(&g, 8);
        let outcome = hmbb(&planted, 8, true);
        if outcome.best.half_size() < 8 {
            // Planted vertices must still be present in the reduced graph.
            for &u in &left {
                assert!(
                    outcome.reduced.left_ids.contains(&u),
                    "planted L{u} was reduced away"
                );
            }
            for &v in &right {
                assert!(outcome.reduced.right_ids.contains(&v));
            }
        }
    }

    #[test]
    fn hmbb_without_reduction_returns_identity() {
        let g = generators::uniform_edges(20, 20, 80, 1);
        let outcome = hmbb(&g, 4, false);
        assert_eq!(outcome.reduced.graph.num_edges(), g.num_edges());
        assert!(!outcome.proven_optimal);
    }

    #[test]
    fn map_to_parent_translates_ids() {
        let g = generators::uniform_edges(10, 10, 50, 2);
        let sub = mbb_bigraph::subgraph::induce_by_ids(&g, vec![2, 4, 6], vec![1, 3, 5]);
        let local = Biclique::balanced(vec![0, 2], vec![1, 2]);
        let mapped = map_to_parent(&local, &sub);
        assert_eq!(mapped.left, vec![2, 6]);
        assert_eq!(mapped.right, vec![3, 5]);
    }

    #[test]
    fn grow_from_seed_respects_biclique_property() {
        let g = generators::uniform_edges(30, 30, 250, 9);
        let score: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
        for seed_idx in 0..5u32 {
            let b = grow_from_seed(&g, Vertex::left(seed_idx), &score);
            assert!(b.is_valid(&g), "seed L{seed_idx}");
        }
    }
}
