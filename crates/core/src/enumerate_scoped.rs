//! A second, independent maximal-biclique enumerator in the FMBE style
//! (Das & Tirthapura 2019, \[9\] in the paper): per-vertex, 2-hop-scoped
//! enumeration under a fixed total order.
//!
//! FMBE's key idea — before enumerating the bicliques through a vertex,
//! restrict the scope to its 2-hop neighbourhood — is exactly the paper's
//! Observation 4, the same fact behind vertex-centred subgraphs. Each
//! root `r` (a left vertex) owns the maximal bicliques whose left side
//! has `r` as its minimum-rank member; within a root the enumeration is
//! consensus expansion over left candidates restricted to higher-ranked
//! 2-hop neighbours.
//!
//! The module exists for two reasons: it is the natural enumerator when
//! only bicliques through a few vertices are needed (the per-root entry
//! point is public), and it cross-validates [`crate::enumerate`] — two
//! structurally different enumerators must produce identical sets, which
//! the tests and the integration suite check.

use std::ops::ControlFlow;

use mbb_bigraph::graph::{sorted_contains_all, sorted_intersection, BipartiteGraph, Vertex};
use mbb_bigraph::two_hop::n2_neighbors;

use crate::budget::SearchBudget;
use crate::enumerate::{EnumConfig, EnumOutcome, MaximalBiclique};

/// Enumerates every maximal biclique (both sides non-empty) exactly once,
/// routing each through the minimum-degree-rank vertex of its left side.
/// Functionally identical to
/// [`crate::enumerate::enumerate_maximal_bicliques`]; prefer this variant
/// on sparse graphs with small 2-hop neighbourhoods.
pub fn enumerate_maximal_bicliques_scoped<F>(
    graph: &BipartiteGraph,
    config: &EnumConfig,
    mut visit: F,
) -> EnumOutcome
where
    F: FnMut(&MaximalBiclique) -> ControlFlow<()>,
{
    let budget = config
        .budget
        .map_or_else(SearchBudget::unlimited, SearchBudget::with_deadline);
    let nl = graph.num_left();

    // Fixed total order: non-decreasing degree (small scopes first), ties
    // by index. rank[u] = position of u in the order.
    let mut roots: Vec<u32> = (0..nl as u32).collect();
    roots.sort_by_key(|&u| (graph.degree_left(u), u));
    let mut rank = vec![0u32; nl];
    for (i, &u) in roots.iter().enumerate() {
        rank[u as usize] = i as u32;
    }

    let mut state = ScopedState {
        graph,
        config: *config,
        rank: &rank,
        reported: 0,
        visited: 0,
        stopped: false,
        budget,
    };
    for &root in &roots {
        if state.stopped {
            break;
        }
        if graph.degree_left(root) == 0 {
            continue;
        }
        state.enumerate_root(root, &mut visit);
    }
    EnumOutcome {
        reported: state.reported,
        visited: state.visited,
        complete: !state.stopped,
    }
}

/// Enumerates the maximal bicliques whose left side *contains* `root`
/// (not only those where it is minimal): scope = `{root} ∪ N2(root)`,
/// right side ⊆ `N(root)`. Useful for per-entity reports without paying
/// for the whole graph.
pub fn enumerate_through_vertex<F>(
    graph: &BipartiteGraph,
    root: u32,
    config: &EnumConfig,
    mut visit: F,
) -> EnumOutcome
where
    F: FnMut(&MaximalBiclique) -> ControlFlow<()>,
{
    let budget = config
        .budget
        .map_or_else(SearchBudget::unlimited, SearchBudget::with_deadline);
    // Rank everything above the root so no candidate is filtered: the
    // "minimal member" restriction disappears and every biclique through
    // the root is enumerated once (consensus expansion stays duplicate-free
    // within a single root call).
    let mut rank = vec![1u32; graph.num_left()];
    rank[root as usize] = 0;
    let mut state = ScopedState {
        graph,
        config: *config,
        rank: &rank,
        reported: 0,
        visited: 0,
        stopped: false,
        budget,
    };
    if graph.degree_left(root) > 0 {
        state.enumerate_root(root, &mut visit);
    }
    EnumOutcome {
        reported: state.reported,
        visited: state.visited,
        complete: !state.stopped,
    }
}

struct ScopedState<'g> {
    graph: &'g BipartiteGraph,
    config: EnumConfig,
    rank: &'g [u32],
    reported: u64,
    visited: u64,
    stopped: bool,
    /// The per-call [`EnumConfig::budget`] cap, carried as a sampled
    /// [`SearchBudget`] so the hot loop never reads the raw wall clock.
    budget: SearchBudget,
}

impl ScopedState<'_> {
    fn out_of_time(&mut self) -> bool {
        if self.budget.is_exhausted() {
            self.stopped = true;
        }
        self.stopped
    }

    /// Enumerates the maximal bicliques whose left side contains `root`
    /// and otherwise only vertices ranked strictly above it.
    fn enumerate_root<F>(&mut self, root: u32, visit: &mut F)
    where
        F: FnMut(&MaximalBiclique) -> ControlFlow<()>,
    {
        // Scope: higher-ranked left 2-hop neighbours of the root.
        let root_rank = self.rank[root as usize];
        let scope: Vec<u32> = n2_neighbors(self.graph, Vertex::left(root))
            .into_iter()
            .filter(|&w| self.rank[w as usize] > root_rank)
            .collect();

        // Within the root's scope, run consensus expansion over *left*
        // candidates: left = {root} (+ chosen), right = common
        // neighbourhood. Lower-ranked outside-scope vertices may still
        // appear in a closure; the maximality check handles them via the
        // full-graph closure test below.
        let right0: Vec<u32> = self.graph.neighbors_left(root).to_vec();
        self.expand(root, vec![root], right0, &scope, &[], visit);
    }

    /// `left` is the chosen left set (root first), `right` its exact
    /// common neighbourhood. `cand`/`excluded` partition the scope
    /// vertices that can still shrink `right` without emptying it.
    #[allow(clippy::too_many_arguments)]
    fn expand<F>(
        &mut self,
        root: u32,
        left: Vec<u32>,
        right: Vec<u32>,
        cand: &[u32],
        excluded: &[u32],
        visit: &mut F,
    ) where
        F: FnMut(&MaximalBiclique) -> ControlFlow<()>,
    {
        if self.out_of_time() {
            return;
        }

        // Close the left side over the whole graph: every left vertex
        // adjacent to all of `right`. The closure decides both maximality
        // and ownership (the root must be the scope's representative:
        // no closure member may outrank... i.e. underrank the root).
        let closure: Vec<u32> = (0..self.graph.num_left() as u32)
            .filter(|&u| sorted_contains_all(self.graph.neighbors_left(u), &right))
            .collect();
        let owned = closure
            .iter()
            .all(|&u| self.rank[u as usize] >= self.rank[root as usize]);

        if owned {
            // (closure, right) is left-closed; it is a maximal biclique iff
            // no right vertex outside `right` is adjacent to all of the
            // closure — equivalently, no excluded/candidate/other vertex
            // survives. Check against the whole right side for safety.
            let right_closed = (0..self.graph.num_right() as u32)
                .filter(|v| right.binary_search(v).is_err())
                .all(|v| !sorted_contains_all(self.graph.neighbors_right(v), &closure));
            if right_closed {
                self.visited += 1;
                if closure.len() >= self.config.min_left && right.len() >= self.config.min_right {
                    let found = MaximalBiclique {
                        left: closure.clone(),
                        right: right.clone(),
                    };
                    self.reported += 1;
                    if visit(&found) == ControlFlow::Break(())
                        || self
                            .config
                            .max_results
                            .is_some_and(|limit| self.reported >= limit)
                    {
                        self.stopped = true;
                        return;
                    }
                }
            }
        }

        // Branch: add each scope candidate in turn (consensus expansion
        // over the left side; shrinking `right` de-duplicates via the
        // excluded check).
        let mut excluded = excluded.to_vec();
        for (i, &w) in cand.iter().enumerate() {
            if self.stopped {
                return;
            }
            let new_right = sorted_intersection(&right, self.graph.neighbors_left(w));
            if new_right.is_empty() || new_right.len() == right.len() {
                // Same closure (w is already in it) or empty: no new
                // biclique below this branch.
                continue;
            }
            // Duplicate suppression: if an excluded vertex keeps its full
            // adjacency under new_right, this sub-biclique was enumerated
            // when that vertex was chosen.
            let dominated = excluded
                .iter()
                .any(|&q| sorted_contains_all(self.graph.neighbors_left(q), &new_right));
            if dominated {
                excluded.push(w);
                continue;
            }
            let mut new_left = left.clone();
            new_left.push(w);
            let rest: Vec<u32> = cand[i + 1..].to_vec();
            self.expand(root, new_left, new_right, &rest, &excluded, visit);
            excluded.push(w);
        }
    }
}

/// Convenience wrapper mirroring [`crate::enumerate::all_maximal_bicliques`].
pub fn all_maximal_bicliques_scoped(
    graph: &BipartiteGraph,
    config: &EnumConfig,
) -> (Vec<MaximalBiclique>, bool) {
    let mut out = Vec::new();
    let outcome = enumerate_maximal_bicliques_scoped(graph, config, |b| {
        out.push(b.clone());
        ControlFlow::Continue(())
    });
    (out, outcome.complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_maximal_bicliques;
    use mbb_bigraph::generators;
    use std::collections::HashSet;

    fn as_set(bicliques: &[MaximalBiclique]) -> HashSet<(Vec<u32>, Vec<u32>)> {
        bicliques
            .iter()
            .map(|b| (b.left.clone(), b.right.clone()))
            .collect()
    }

    #[test]
    fn agrees_with_consensus_enumerator_on_random_graphs() {
        for seed in 0..25u64 {
            let g = generators::uniform_edges(9, 9, 32, seed);
            let (consensus, c1) = all_maximal_bicliques(&g, &EnumConfig::default());
            let (scoped, c2) = all_maximal_bicliques_scoped(&g, &EnumConfig::default());
            assert!(c1 && c2);
            assert_eq!(scoped.len(), consensus.len(), "count mismatch, seed {seed}");
            assert_eq!(as_set(&scoped), as_set(&consensus), "seed {seed}");
        }
    }

    #[test]
    fn agrees_on_asymmetric_and_dense_graphs() {
        for seed in 0..8u64 {
            let g = generators::uniform_edges(4, 12, 30, seed ^ 0x9);
            let (a, _) = all_maximal_bicliques(&g, &EnumConfig::default());
            let (b, _) = all_maximal_bicliques_scoped(&g, &EnumConfig::default());
            assert_eq!(as_set(&a), as_set(&b), "seed {seed}");
            let g = generators::dense_uniform(7, 7, 0.75, seed);
            let (a, _) = all_maximal_bicliques(&g, &EnumConfig::default());
            let (b, _) = all_maximal_bicliques_scoped(&g, &EnumConfig::default());
            assert_eq!(as_set(&a), as_set(&b), "dense seed {seed}");
        }
    }

    #[test]
    fn no_duplicates() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(10, 10, 45, seed);
            let (scoped, _) = all_maximal_bicliques_scoped(&g, &EnumConfig::default());
            assert_eq!(as_set(&scoped).len(), scoped.len(), "seed {seed}");
        }
    }

    #[test]
    fn through_vertex_finds_all_bicliques_containing_it() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(8, 8, 30, seed);
            let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
            for root in 0..8u32 {
                let mut through = Vec::new();
                enumerate_through_vertex(&g, root, &EnumConfig::default(), |b| {
                    through.push(b.clone());
                    ControlFlow::Continue(())
                });
                let expected: HashSet<_> = all
                    .iter()
                    .filter(|b| b.left.contains(&root))
                    .map(|b| (b.left.clone(), b.right.clone()))
                    .collect();
                assert_eq!(as_set(&through), expected, "seed {seed} root {root}");
            }
        }
    }

    #[test]
    fn size_filters_and_limits_apply() {
        let g = generators::uniform_edges(9, 9, 36, 4);
        let config = EnumConfig {
            min_left: 2,
            min_right: 2,
            ..EnumConfig::default()
        };
        let (filtered, _) = all_maximal_bicliques_scoped(&g, &config);
        assert!(filtered
            .iter()
            .all(|b| b.left.len() >= 2 && b.right.len() >= 2));
        let config = EnumConfig {
            max_results: Some(2),
            ..EnumConfig::default()
        };
        let (some, complete) = all_maximal_bicliques_scoped(&g, &config);
        assert_eq!(some.len(), 2);
        assert!(!complete);
    }

    #[test]
    fn empty_and_star_graphs() {
        let g = mbb_bigraph::graph::BipartiteGraph::from_edges(3, 3, []).unwrap();
        let (all, _) = all_maximal_bicliques_scoped(&g, &EnumConfig::default());
        assert!(all.is_empty());
        let star =
            mbb_bigraph::graph::BipartiteGraph::from_edges(1, 5, (0..5).map(|v| (0, v))).unwrap();
        let (all, _) = all_maximal_bicliques_scoped(&star, &EnumConfig::default());
        assert_eq!(all.len(), 1);
    }
}
