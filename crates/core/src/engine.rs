//! `MbbEngine` — the unified query session over one bipartite graph.
//!
//! The paper's `hbvMBB` is one algorithm, but this crate grew ~10 sibling
//! workloads (top-k, anchored, weighted, MEB, frontier, size-constrained,
//! enumeration, incremental). As free functions they each re-derived the
//! expensive per-graph structure — peel orders, the bicore decomposition,
//! two-hop neighbourhoods — on every call. A service answering many
//! queries against one graph wants the opposite: build once, query many
//! times (the progressive-query amortisation argument of Lyu et al.,
//! PVLDB 2020).
//!
//! [`MbbEngine`] owns the CSR graph plus that shared state, computed
//! lazily on first use and cached for the session:
//!
//! * the total **search order** for the configured [`SearchOrder`]
//!   (projected onto each solve's reduced residual instead of re-peeled);
//! * the **bicore decomposition** (bidegeneracy order + δ̈);
//! * the **two-hop index** (materialised once anchored queries repeat).
//!
//! Every query goes through one builder with shared budget plumbing:
//!
//! ```
//! use std::time::Duration;
//! use mbb_core::engine::MbbEngine;
//!
//! let graph = mbb_bigraph::generators::uniform_edges(50, 50, 300, 7);
//! let engine = MbbEngine::new(graph);
//! let result = engine
//!     .query()
//!     .deadline(Duration::from_secs(5))
//!     .threads(2)
//!     .solve();
//! assert!(result.termination.is_complete());
//! assert!(result.value.is_valid(engine.graph()));
//! // A second query reuses the cached order instead of recomputing it.
//! let again = engine.query().solve();
//! assert_eq!(again.stats.index.orders_computed, 1);
//! assert!(again.stats.index.orders_reused >= 1);
//! ```
//!
//! All nine query kinds return a [`QueryResult`]: the typed payload, a
//! consolidated [`SolveStats`] (including session index-reuse counters),
//! and a [`Termination`] that replaces the old scattered `complete: bool`
//! flags — `DeadlineExceeded` and `Cancelled` results carry the best
//! answer found so far (anytime semantics), never a silent truncation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use mbb_bigraph::bicore::{bicore_decomposition, BicoreDecomposition};
use mbb_bigraph::graph::{BipartiteGraph, Vertex};
use mbb_bigraph::order::{compute_order, SearchOrder};
use mbb_bigraph::two_hop::TwoHopIndex;

use crate::anchored::{anchored_budgeted, anchored_edge_budgeted};
use crate::biclique::Biclique;
use crate::budget::{CancelToken, SearchBudget, Termination};
use crate::enumerate::{enumerate_budgeted, EnumConfig, EnumOutcome, MaximalBiclique};
use crate::frontier::SizeFrontier;
use crate::meb::{maximum_edge_biclique_budgeted, EdgeBiclique};
use crate::size_constrained::{find_size_constrained_budgeted, SizeConstrainedBiclique};
use crate::solver::{MbbSolver, SessionOrder, SolverConfig};
use crate::stats::{IndexStats, SolveStats};
use crate::topk::topk_budgeted;
use crate::verify::ParallelMode;
use crate::weighted::{weighted_mbb_budgeted, WeightedBiclique};

/// The outcome of any engine query: a typed payload, consolidated solver
/// statistics (with session index-reuse counters), and how the query
/// ended. Non-`Complete` terminations still carry the best answer found
/// before the budget ran out.
#[derive(Debug, Clone)]
pub struct QueryResult<T> {
    /// The query's typed payload.
    pub value: T,
    /// Solver + session statistics.
    pub stats: SolveStats,
    /// Whether the answer is exact (`Complete`) or best-so-far.
    pub termination: Termination,
}

/// The collected output of an enumeration query.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// The maximal bicliques reported under the configured filters.
    pub bicliques: Vec<MaximalBiclique>,
    /// The enumerator's own outcome (visited/reported counts; `complete`
    /// is false for *any* early stop, including `max_results`).
    pub outcome: EnumOutcome,
}

/// Cached session order: the permutation, its rank table, and the session
/// graph's bidegeneracy when the order is [`SearchOrder::Bidegeneracy`].
#[derive(Debug)]
struct OrderIndex {
    rank: Vec<u32>,
    bidegeneracy: u32,
}

#[derive(Debug, Default)]
struct Counters {
    orders_computed: AtomicU64,
    orders_reused: AtomicU64,
    bicores_computed: AtomicU64,
    bicores_reused: AtomicU64,
    two_hops_computed: AtomicU64,
    two_hops_reused: AtomicU64,
    preprocess_nanos: AtomicU64,
    anchored_queries: AtomicU64,
}

/// A query session over one bipartite graph. Build once per graph, run
/// any number of queries; see the [module docs](self) for the full story.
///
/// The engine is `Sync`: queries take `&self`, so one engine can serve
/// concurrent readers (each query may additionally parallelise its own
/// verification stage via [`QueryBuilder::threads`]). Services that want
/// per-session counters without re-preprocessing can [`fork`](Self::fork)
/// an engine: the cached indices are `Arc`-shared, so a fork is a few
/// pointer copies.
#[derive(Debug)]
pub struct MbbEngine {
    graph: Arc<BipartiteGraph>,
    config: SolverConfig,
    // Each cached index is Arc-wrapped so `fork` can share an already
    // materialised index across sessions without re-deriving it.
    order: OnceLock<Arc<OrderIndex>>,
    bicore: OnceLock<Arc<BicoreDecomposition>>,
    two_hop: OnceLock<Arc<TwoHopIndex>>,
    counters: Counters,
}

impl MbbEngine {
    /// An engine with the paper's default solver configuration.
    pub fn new(graph: BipartiteGraph) -> MbbEngine {
        MbbEngine::with_config(graph, SolverConfig::default())
    }

    /// An engine with an explicit solver configuration (search order,
    /// ablations, default verification threads).
    pub fn with_config(graph: BipartiteGraph, config: SolverConfig) -> MbbEngine {
        MbbEngine::from_arc(Arc::new(graph), config)
    }

    /// An engine sharing an already-`Arc`ed graph (for services that keep
    /// the graph alive across many engines or hand it to other readers).
    pub fn from_arc(graph: Arc<BipartiteGraph>, config: SolverConfig) -> MbbEngine {
        MbbEngine {
            graph,
            config,
            order: OnceLock::new(),
            bicore: OnceLock::new(),
            two_hop: OnceLock::new(),
            counters: Counters::default(),
        }
    }

    /// A new engine session over the same graph, sharing every index the
    /// parent has already materialised (the caches are `Arc`-shared, so
    /// this is a few pointer copies — no re-peeling, no re-indexing) but
    /// with fresh index-reuse counters. This is the cheap per-session
    /// clone a batching service wants: one warm parent per graph shard,
    /// one fork per client session whose `IndexStats` should start at
    /// zero.
    ///
    /// Indices the parent has *not* yet computed stay lazy in the fork
    /// and are built on first use there. A pre-built index served to the
    /// fork counts as a reuse (never a compute) in the fork's counters.
    ///
    /// ```
    /// use mbb_core::engine::MbbEngine;
    /// let graph = mbb_bigraph::generators::uniform_edges(30, 30, 140, 5);
    /// let parent = MbbEngine::new(graph);
    /// let warm = parent.solve();
    /// let fork = parent.fork();
    /// let again = fork.solve();
    /// assert_eq!(again.value.half_size(), warm.value.half_size());
    /// // The fork never recomputed the order: it arrived pre-built.
    /// assert_eq!(again.stats.index.orders_computed, 0);
    /// assert!(again.stats.index.orders_reused >= 1);
    /// ```
    pub fn fork(&self) -> MbbEngine {
        let fork = MbbEngine::from_arc(Arc::clone(&self.graph), self.config);
        if let Some(cached) = self.order.get() {
            let _ = fork.order.set(Arc::clone(cached));
        }
        if let Some(cached) = self.bicore.get() {
            let _ = fork.bicore.set(Arc::clone(cached));
        }
        if let Some(cached) = self.two_hop.get() {
            let _ = fork.two_hop.set(Arc::clone(cached));
        }
        fork
    }

    /// The session graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The session graph's shared handle, for callers that keep the graph
    /// alive beyond the engine (or hand it to other readers).
    pub fn graph_arc(&self) -> Arc<BipartiteGraph> {
        Arc::clone(&self.graph)
    }

    /// The session solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Snapshot of the cumulative session index-reuse counters.
    pub fn index_stats(&self) -> IndexStats {
        // relaxed: monotonic statistics counters, loaded for reporting
        // only; the snapshot carries no cross-field consistency promise.
        IndexStats {
            orders_computed: self.counters.orders_computed.load(Ordering::Relaxed),
            orders_reused: self.counters.orders_reused.load(Ordering::Relaxed),
            bicores_computed: self.counters.bicores_computed.load(Ordering::Relaxed),
            bicores_reused: self.counters.bicores_reused.load(Ordering::Relaxed),
            two_hops_computed: self.counters.two_hops_computed.load(Ordering::Relaxed),
            two_hops_reused: self.counters.two_hops_reused.load(Ordering::Relaxed),
            preprocess_seconds: self.counters.preprocess_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Starts a query: chain budget/thread options, then call one of the
    /// terminal methods (`solve`, `topk(k)`, `anchored(v)`, …).
    pub fn query(&self) -> QueryBuilder<'_> {
        QueryBuilder {
            engine: self,
            deadline: None,
            cancel: None,
            threads: None,
            parallel_mode: None,
            incumbent: Biclique::empty(),
        }
    }

    // ---- Convenience one-liners (default budget/threads). ----

    /// The maximum balanced biclique (Algorithm 4 over the session state).
    pub fn solve(&self) -> QueryResult<Biclique> {
        self.query().solve()
    }

    /// The `k` best balanced bicliques.
    pub fn topk(&self, k: usize) -> QueryResult<Vec<MaximalBiclique>> {
        self.query().topk(k)
    }

    /// The largest balanced biclique through `anchor`.
    pub fn anchored(&self, anchor: Vertex) -> QueryResult<Biclique> {
        self.query().anchored(anchor)
    }

    /// The largest balanced biclique through edge `(u, v)`, or `None` when
    /// the edge is absent.
    pub fn anchored_edge(&self, u: u32, v: u32) -> QueryResult<Option<Biclique>> {
        self.query().anchored_edge(u, v)
    }

    /// The heaviest balanced biclique under per-vertex weights.
    pub fn weighted(&self, weights: &[u64]) -> QueryResult<WeightedBiclique> {
        self.query().weighted(weights)
    }

    /// The maximum edge biclique.
    pub fn meb(&self) -> QueryResult<EdgeBiclique> {
        self.query().meb()
    }

    /// The Pareto frontier of feasible biclique sizes.
    pub fn frontier(&self) -> QueryResult<SizeFrontier> {
        self.query().frontier()
    }

    /// A witness for the `(a, b)`-biclique problem, if one exists.
    pub fn size_constrained(
        &self,
        a: usize,
        b: usize,
    ) -> QueryResult<Option<SizeConstrainedBiclique>> {
        self.query().size_constrained(a, b)
    }

    /// All maximal bicliques under `config`'s filters.
    pub fn enumerate(&self, config: EnumConfig) -> QueryResult<Enumeration> {
        self.query().enumerate(config)
    }

    // ---- Cached index accessors. ----

    fn bicore(&self) -> &BicoreDecomposition {
        if let Some(cached) = self.bicore.get() {
            // relaxed: monotonic statistics counter; nothing reads it for
            // synchronisation (the index itself synchronises via OnceLock).
            self.counters.bicores_reused.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.bicore.get_or_init(|| {
            let _span = mbb_obs::span(mbb_obs::Stage::PreprocessBicore);
            let start = Instant::now();
            let decomposition = bicore_decomposition(&self.graph);
            self.note_preprocess(start);
            // relaxed: monotonic statistics counter (see above).
            self.counters
                .bicores_computed
                .fetch_add(1, Ordering::Relaxed);
            Arc::new(decomposition)
        })
    }

    fn order_index(&self) -> &OrderIndex {
        if let Some(cached) = self.order.get() {
            // relaxed: monotonic statistics counter; the cached index is
            // published by OnceLock, not by this increment.
            self.counters.orders_reused.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.order.get_or_init(|| {
            let _span = mbb_obs::span(mbb_obs::Stage::PreprocessOrder);
            // The bidegeneracy order *is* the bicore peel order: derive it
            // from the cached decomposition instead of re-peeling. Timing
            // starts after that call — bicore() records its own build.
            let (order, bidegeneracy) = match self.config.order {
                SearchOrder::Bidegeneracy => {
                    let bicore = self.bicore();
                    (bicore.order.clone(), bicore.bidegeneracy)
                }
                other => {
                    let start = Instant::now();
                    let order = compute_order(&self.graph, other);
                    self.note_preprocess(start);
                    (order, 0)
                }
            };
            let start = Instant::now();
            let mut rank = vec![0u32; order.len()];
            for (i, &g) in order.iter().enumerate() {
                rank[g as usize] = i as u32;
            }
            self.note_preprocess(start);
            // relaxed: monotonic statistics counter (see above).
            self.counters
                .orders_computed
                .fetch_add(1, Ordering::Relaxed);
            Arc::new(OrderIndex { rank, bidegeneracy })
        })
    }

    /// The two-hop index, materialised adaptively: the first anchored
    /// query walks `N≤2` directly (an index for a single anchor would cost
    /// more than it saves); from the second anchored query on, the session
    /// clearly serves an anchored workload and the full index pays for
    /// itself.
    fn two_hop_for_anchored(&self) -> Option<&TwoHopIndex> {
        // relaxed: the anchored-query tally only gates an *advisory*
        // build-now-or-later heuristic; a racing duplicate build is
        // resolved (and published) by OnceLock either way.
        let prior = self
            .counters
            .anchored_queries
            .fetch_add(1, Ordering::Relaxed);
        if let Some(cached) = self.two_hop.get() {
            // relaxed: monotonic statistics counter.
            self.counters
                .two_hops_reused
                .fetch_add(1, Ordering::Relaxed);
            return Some(&**cached);
        }
        if prior == 0 {
            return None;
        }
        Some(&**self.two_hop.get_or_init(|| {
            let _span = mbb_obs::span(mbb_obs::Stage::PreprocessTwoHop);
            let start = Instant::now();
            let index = TwoHopIndex::build(&self.graph);
            self.note_preprocess(start);
            // relaxed: monotonic statistics counter.
            self.counters
                .two_hops_computed
                .fetch_add(1, Ordering::Relaxed);
            Arc::new(index)
        }))
    }

    fn note_preprocess(&self, start: Instant) {
        // relaxed: monotonic nanosecond tally, read only by index_stats
        // reporting; no ordering contract with the work it timed.
        self.counters
            .preprocess_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn finish<T>(&self, value: T, mut stats: SolveStats, budget: &SearchBudget) -> QueryResult<T> {
        stats.index = self.index_stats();
        QueryResult {
            value,
            stats,
            termination: budget.termination(),
        }
    }
}

/// Builder for one engine query: budget and thread options first, then a
/// terminal method naming the query kind.
#[derive(Debug)]
pub struct QueryBuilder<'e> {
    engine: &'e MbbEngine,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    threads: Option<usize>,
    parallel_mode: Option<ParallelMode>,
    incumbent: Biclique,
}

impl<'e> QueryBuilder<'e> {
    /// Abandon the search `limit` from now, returning the best so far
    /// with [`Termination::DeadlineExceeded`]. The budget is checked per
    /// search node inside the exponential phases; polynomial
    /// preprocessing (the stage-1 heuristic, cached-index builds) is not
    /// interrupted, so the worst-case overshoot includes one such pass.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Like [`deadline`](Self::deadline) with an absolute instant.
    pub fn deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attach a [`CancelToken`]; calling
    /// [`cancel`](CancelToken::cancel) on any clone stops the query at its
    /// next budget check with [`Termination::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Worker threads for this query's parallel stages — the bridging
    /// generation loop and the verification search: `0` = one per
    /// available core, unset = the engine config's default (`1`, the
    /// paper's sequential algorithm). How verification spends the workers
    /// is set by [`parallel_mode`](Self::parallel_mode).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// How a multi-threaded verification spends its workers: across
    /// vertex-centred subgraphs ([`ParallelMode::Subgraph`]), inside
    /// each subgraph's branch-and-bound
    /// ([`ParallelMode::IntraSubgraph`]), or picked per solve from the
    /// bridge stage's skew statistics ([`ParallelMode::Auto`], the
    /// default). No effect unless [`threads`](Self::threads) resolves to
    /// more than one worker.
    pub fn parallel_mode(mut self, mode: ParallelMode) -> Self {
        self.parallel_mode = Some(mode);
        self
    }

    /// Warm-start `solve` with a known balanced biclique of the session
    /// graph (e.g. the previous optimum in an incremental setting); it
    /// seeds every pruning bound.
    pub fn warm_start(mut self, incumbent: Biclique) -> Self {
        self.incumbent = incumbent;
        self
    }

    fn budget(&self) -> SearchBudget {
        SearchBudget::new(self.deadline, self.cancel.clone())
    }

    // ---- Terminal methods: the nine query kinds. ----

    /// The maximum balanced biclique of the session graph (the `hbvMBB`
    /// framework, Algorithm 4), reusing the session's cached order.
    pub fn solve(self) -> QueryResult<Biclique> {
        let engine = self.engine;
        let budget = self.budget();
        let mut config = engine.config;
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        if let Some(mode) = self.parallel_mode {
            config.parallel_mode = mode;
        }
        let order = engine.order_index();
        let session = SessionOrder {
            rank: &order.rank,
            bidegeneracy: order.bidegeneracy,
        };
        let result = MbbSolver::with_config(config).solve_session(
            &engine.graph,
            self.incumbent,
            &budget,
            Some(session),
        );
        engine.finish(result.biclique, result.stats, &budget)
    }

    /// The `k` maximal bicliques with the largest balanced size, best
    /// first.
    pub fn topk(self, k: usize) -> QueryResult<Vec<MaximalBiclique>> {
        let budget = self.budget();
        let outcome = topk_budgeted(&self.engine.graph, k, &budget);
        self.engine
            .finish(outcome.bicliques, SolveStats::default(), &budget)
    }

    /// The largest balanced biclique containing `anchor` (empty only when
    /// the anchor has no incident edge).
    ///
    /// # Panics
    ///
    /// Panics when `anchor` is out of range for the session graph.
    pub fn anchored(self, anchor: Vertex) -> QueryResult<Biclique> {
        let budget = self.budget();
        let index = self.engine.two_hop_for_anchored();
        let (biclique, search) = anchored_budgeted(&self.engine.graph, anchor, index, &budget);
        let stats = SolveStats {
            search,
            optimum_half: biclique.half_size(),
            ..SolveStats::default()
        };
        self.engine.finish(biclique, stats, &budget)
    }

    /// The largest balanced biclique containing edge `(u, v)` (left `u`,
    /// right `v`), or `None` when the edge is absent from the graph.
    pub fn anchored_edge(self, u: u32, v: u32) -> QueryResult<Option<Biclique>> {
        let budget = self.budget();
        let index = self.engine.two_hop_for_anchored();
        let found = anchored_edge_budgeted(&self.engine.graph, u, v, index, &budget);
        let (value, search) = match found {
            Some((biclique, search)) => (Some(biclique), search),
            None => (None, Default::default()),
        };
        let stats = SolveStats {
            search,
            optimum_half: value.as_ref().map_or(0, Biclique::half_size),
            ..SolveStats::default()
        };
        self.engine.finish(value, stats, &budget)
    }

    /// The heaviest balanced biclique under per-vertex `weights` (indexed
    /// by global id: left vertices first, then right).
    ///
    /// # Panics
    ///
    /// Panics when `weights.len() != graph.num_vertices()`.
    pub fn weighted(self, weights: &[u64]) -> QueryResult<WeightedBiclique> {
        let budget = self.budget();
        let (found, search) = weighted_mbb_budgeted(&self.engine.graph, weights, &budget);
        let stats = SolveStats {
            search,
            optimum_half: found.left.len(),
            ..SolveStats::default()
        };
        self.engine.finish(found, stats, &budget)
    }

    /// The maximum **edge** biclique (`max |A| · |B|`).
    pub fn meb(self) -> QueryResult<EdgeBiclique> {
        let budget = self.budget();
        let found = maximum_edge_biclique_budgeted(&self.engine.graph, &budget);
        self.engine.finish(found, SolveStats::default(), &budget)
    }

    /// The Pareto frontier of feasible biclique sizes. On a
    /// non-`Complete` termination the frontier is a lower-bound
    /// approximation (its `complete` field mirrors the termination).
    pub fn frontier(self) -> QueryResult<SizeFrontier> {
        let budget = self.budget();
        let frontier = SizeFrontier::budgeted(&self.engine.graph, &budget);
        self.engine.finish(frontier, SolveStats::default(), &budget)
    }

    /// A witness for the size-constrained `(a, b)`-biclique problem.
    /// `None` under a non-`Complete` termination means "not found in
    /// time", not certified infeasibility.
    pub fn size_constrained(
        self,
        a: usize,
        b: usize,
    ) -> QueryResult<Option<SizeConstrainedBiclique>> {
        let budget = self.budget();
        let witness = find_size_constrained_budgeted(&self.engine.graph, a, b, &budget);
        self.engine.finish(witness, SolveStats::default(), &budget)
    }

    /// Collects every maximal biclique passing `config`'s filters. For
    /// streams too large to materialise, use
    /// [`enumerate_budgeted`] directly with a callback.
    pub fn enumerate(self, config: EnumConfig) -> QueryResult<Enumeration> {
        let budget = self.budget();
        let mut bicliques = Vec::new();
        let outcome = enumerate_budgeted(&self.engine.graph, &config, &budget, |b| {
            bicliques.push(b.clone());
            std::ops::ControlFlow::Continue(())
        });
        self.engine.finish(
            Enumeration { bicliques, outcome },
            SolveStats::default(),
            &budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    #[test]
    fn shared_indices_are_computed_exactly_once() {
        let g = generators::uniform_edges(30, 30, 140, 5);
        let engine = MbbEngine::new(g);
        let solved = engine.solve();
        let top = engine.topk(3);
        let anchored = engine.anchored(Vertex::left(0));
        assert!(solved.termination.is_complete());
        assert!(top.termination.is_complete());
        assert!(anchored.termination.is_complete());
        // The acceptance bar: one order, one bicore for the whole session.
        let index = anchored.stats.index;
        assert_eq!(index.orders_computed, 1);
        assert_eq!(index.bicores_computed, 1);
        // A second solve reuses the cached order.
        let again = engine.solve();
        assert_eq!(again.stats.index.orders_computed, 1);
        assert!(again.stats.index.orders_reused >= 1);
        assert_eq!(solved.value.half_size(), again.value.half_size());
    }

    #[test]
    fn two_hop_index_materialises_on_second_anchored_query() {
        let g = generators::uniform_edges(20, 20, 90, 2);
        let engine = MbbEngine::new(g);
        let first = engine.anchored(Vertex::left(1));
        assert_eq!(first.stats.index.two_hops_computed, 0);
        let second = engine.anchored(Vertex::left(2));
        assert_eq!(second.stats.index.two_hops_computed, 1);
        let third = engine.anchored(Vertex::right(3));
        assert_eq!(third.stats.index.two_hops_computed, 1);
        assert!(third.stats.index.two_hops_reused >= 1);
    }

    #[test]
    fn fork_shares_materialised_indices() {
        let g = generators::uniform_edges(25, 25, 120, 4);
        let engine = MbbEngine::new(g);
        let warm = engine.solve();
        let _ = engine.anchored(Vertex::left(0));
        let _ = engine.anchored(Vertex::left(1)); // materialises two-hop

        let fork = engine.fork();
        assert!(Arc::ptr_eq(&engine.graph_arc(), &fork.graph_arc()));
        let again = fork.solve();
        assert_eq!(again.value.half_size(), warm.value.half_size());
        // The fork's counters are fresh, and everything it needed arrived
        // pre-built from the parent: reuse only, zero computes.
        let index = fork.index_stats();
        assert_eq!(index.orders_computed, 0);
        assert!(index.orders_reused >= 1);
        assert_eq!(index.two_hops_computed, 0);
        let anchored = fork.anchored(Vertex::left(2));
        assert!(anchored.stats.index.two_hops_reused >= 1);
        // The parent's counters are unaffected by the fork's queries.
        assert_eq!(engine.index_stats().orders_computed, 1);
    }

    #[test]
    fn fork_of_cold_engine_stays_lazy() {
        let g = generators::uniform_edges(15, 15, 70, 8);
        let engine = MbbEngine::new(g);
        let fork = engine.fork();
        let solved = fork.solve();
        // Nothing was materialised in the parent, so the fork computes
        // its own order exactly once.
        assert_eq!(solved.stats.index.orders_computed, 1);
        assert_eq!(engine.index_stats().orders_computed, 0);
    }

    #[test]
    fn session_solve_matches_fresh_solver_on_random_graphs() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(14, 14, 75, seed);
            let fresh = MbbSolver::new().solve(&g);
            let engine = MbbEngine::new(g);
            let session = engine.solve();
            assert_eq!(
                session.value.half_size(),
                fresh.biclique.half_size(),
                "seed {seed}"
            );
            assert!(session.value.is_valid(engine.graph()));
        }
    }

    #[test]
    fn ablation_configs_run_through_the_session_path() {
        for config in [
            SolverConfig::bd2(),
            SolverConfig::bd4(),
            SolverConfig::bd5(),
        ] {
            for seed in 0..4u64 {
                let g = generators::uniform_edges(11, 11, 55, seed);
                let fresh = MbbSolver::with_config(config).solve(&g);
                let engine = MbbEngine::with_config(g, config);
                let session = engine.solve();
                assert_eq!(session.value.half_size(), fresh.biclique.half_size());
            }
        }
    }

    #[test]
    fn cancelled_token_terminates_immediately() {
        let g = generators::dense_uniform(40, 40, 0.8, 3);
        let engine = MbbEngine::new(g);
        let token = CancelToken::new();
        token.cancel();
        let result = engine.query().cancel_token(token).solve();
        assert_eq!(result.termination, Termination::Cancelled);
    }

    #[test]
    fn warm_start_solves_through_the_builder() {
        let g = generators::complete(4, 4);
        let engine = MbbEngine::new(g);
        let incumbent = Biclique::balanced(vec![0], vec![0]);
        let result = engine.query().warm_start(incumbent).solve();
        assert_eq!(result.value.half_size(), 4);
    }

    #[test]
    fn every_query_kind_answers_on_one_session() {
        let g = generators::uniform_edges(12, 12, 55, 9);
        let engine = MbbEngine::new(g);
        let solve = engine.solve();
        assert!(solve.termination.is_complete());
        assert_eq!(engine.topk(2).value.len().min(2), 2);
        let (u, v) = engine.graph().edges().next().expect("has edges");
        assert!(engine.anchored(Vertex::left(u)).value.left.contains(&u));
        assert!(engine.anchored_edge(u, v).value.is_some());
        let weights = vec![1u64; engine.graph().num_vertices()];
        assert_eq!(
            engine.weighted(&weights).value.weight as usize,
            2 * solve.value.half_size()
        );
        assert!(engine.meb().value.edges() >= solve.value.half_size().pow(2));
        let frontier = engine.frontier();
        assert_eq!(frontier.value.mbb_half(), solve.value.half_size());
        let half = solve.value.half_size();
        assert!(engine.size_constrained(half, half).value.is_some());
        assert!(engine.size_constrained(13, 13).value.is_none());
        let enumeration = engine.enumerate(EnumConfig::default());
        assert!(enumeration.value.outcome.complete);
        assert_eq!(
            enumeration
                .value
                .bicliques
                .iter()
                .map(MaximalBiclique::balanced_size)
                .max()
                .unwrap_or(0),
            solve.value.half_size()
        );
    }
}
