//! `bridgeMBB` — Algorithm 6: vertex-centred subgraph generation and
//! pruning ("bridging to maximality", §5.3).
//!
//! Given a total search order `o`, the subgraph centred at `v_i` is induced
//! by `{v_i} ∪ (N≤2(v_i) ∩ {v_{i+1}, …})` (Definition 6). By Observations
//! 4–5 every biclique strictly larger than the incumbent is contained in the
//! subgraph centred at its order-earliest vertex, so searching each centred
//! subgraph for bicliques *containing its centre* is complete and
//! duplicate-free.
//!
//! Each generated subgraph is pruned by side size and degeneracy against the
//! incumbent, and a local core-greedy heuristic tries to grow the incumbent
//! before the expensive verification stage.

use std::sync::atomic::{AtomicUsize, Ordering};

use mbb_obs as obs;

use mbb_bigraph::core_decomp::core_decomposition;
use mbb_bigraph::graph::{BipartiteGraph, Side, Vertex};
use mbb_bigraph::subgraph::induce_by_ids;
use mbb_bigraph::two_hop::n2_neighbors;
use parking_lot::Mutex;

use crate::biclique::Biclique;
use crate::budget::SearchBudget;
use crate::heuristic::{greedy_balanced, map_to_parent};

/// A surviving vertex-centred subgraph, in the ids of the graph the bridge
/// ran on.
#[derive(Debug, Clone)]
pub struct CenteredSubgraph {
    /// The centre vertex.
    pub center: Vertex,
    /// Left-side vertex ids of the subgraph (includes the centre when it is
    /// a left vertex).
    pub left_ids: Vec<u32>,
    /// Right-side vertex ids.
    pub right_ids: Vec<u32>,
}

/// Aggregates of the bridging stage (feed Figures 5 and 6).
#[derive(Debug, Clone, Default)]
pub struct BridgeStats {
    /// Subgraphs generated (before pruning).
    pub generated: usize,
    /// Subgraphs pruned by the side-size test.
    pub pruned_size: usize,
    /// Subgraphs pruned by the degeneracy test.
    pub pruned_degeneracy: usize,
    /// Σ density over generated subgraphs with both sides non-empty.
    pub density_sum: f64,
    /// Count behind `density_sum`.
    pub density_count: usize,
    /// Σ vertex count over generated subgraphs.
    pub size_sum: usize,
    /// Largest generated subgraph (vertex count). Under bidegeneracy order
    /// this is bounded by δ̈ + 1 (Lemma 8); under degree order it can reach
    /// d_max² — the quantity Figure 6 actually separates on.
    pub max_size: usize,
}

impl BridgeStats {
    /// Mean density of generated vertex-centred subgraphs (Figure 6).
    pub fn average_density(&self) -> f64 {
        if self.density_count == 0 {
            0.0
        } else {
            self.density_sum / self.density_count as f64
        }
    }

    /// Mean vertex count of generated subgraphs.
    pub fn average_size(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.size_sum as f64 / self.generated as f64
        }
    }

    /// Accumulates another worker's counters into this one (sums, except
    /// `max_size` which takes the max).
    pub fn merge(&mut self, other: &BridgeStats) {
        self.generated += other.generated;
        self.pruned_size += other.pruned_size;
        self.pruned_degeneracy += other.pruned_degeneracy;
        self.density_sum += other.density_sum;
        self.density_count += other.density_count;
        self.size_sum += other.size_sum;
        self.max_size = self.max_size.max(other.max_size);
    }
}

/// Outcome of [`bridge_mbb`].
#[derive(Debug)]
pub struct BridgeOutcome {
    /// Best biclique known after local heuristics (ids of the bridged
    /// graph).
    pub best: Biclique,
    /// Subgraphs that survived every prune, in generation order.
    pub survivors: Vec<CenteredSubgraph>,
    /// Aggregated statistics.
    pub stats: BridgeStats,
}

/// Knobs for [`bridge_mbb`].
#[derive(Debug, Clone, Copy)]
pub struct BridgeConfig {
    /// Apply the degeneracy prune and the local core-greedy heuristic
    /// (off in the `bd2` ablation).
    pub use_core_pruning: bool,
    /// Seeds for the local heuristic.
    pub heuristic_seeds: usize,
    /// Worker threads for the per-centre generation loop: `1` = the
    /// paper's sequential Algorithm 6, `0` = one worker per available
    /// core ([`crate::solver::resolve_threads`]). Graphs with fewer than
    /// [`PARALLEL_MIN_CENTERS`] vertices always run serially — the scope
    /// spawn would cost more than the loop.
    pub threads: usize,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            use_core_pruning: true,
            heuristic_seeds: 4,
            threads: 1,
        }
    }
}

/// Below this many centres the parallel generation loop falls back to the
/// serial one: spawning a `std::thread::scope` pool costs tens of
/// microseconds, more than generating a few hundred small subgraphs.
pub const PARALLEL_MIN_CENTERS: usize = 256;

/// Centres claimed per cursor increment in the parallel loop — coarse
/// enough to keep cursor contention negligible, fine enough that the tail
/// imbalance stays under a chunk per worker.
const CENTER_CHUNK: usize = 64;

/// Algorithm 6. `order` is a permutation of the graph's global ids;
/// `incumbent` is the best biclique so far (in the same graph's ids).
pub fn bridge_mbb(
    graph: &BipartiteGraph,
    order: &[u32],
    incumbent: Biclique,
    config: BridgeConfig,
) -> BridgeOutcome {
    bridge_mbb_budgeted(graph, order, incumbent, config, &SearchBudget::unlimited())
}

/// [`bridge_mbb`] under a [`SearchBudget`]: the per-centre generation loop
/// stops once the budget is exhausted, returning the survivors admitted so
/// far (the caller's termination state records that the decomposition is
/// partial).
pub fn bridge_mbb_budgeted(
    graph: &BipartiteGraph,
    order: &[u32],
    incumbent: Biclique,
    config: BridgeConfig,
    budget: &SearchBudget,
) -> BridgeOutcome {
    let n = graph.num_vertices();
    debug_assert_eq!(order.len(), n);
    let mut rank = vec![0u32; n];
    for (i, &g) in order.iter().enumerate() {
        rank[g as usize] = i as u32;
    }

    let threads = crate::solver::resolve_threads(config.threads);
    if threads > 1 && n >= PARALLEL_MIN_CENTERS {
        return bridge_parallel(graph, order, &rank, incumbent, config, budget, threads);
    }

    let mut best = incumbent;
    let mut stats = BridgeStats::default();
    let mut survivors = Vec::new();

    for (i, &center_global) in order.iter().enumerate() {
        // Per-centre work (induction, core decomposition, heuristic) is
        // orders of magnitude above a wall-clock read, so pay the
        // unsampled probe for prompt deadline detection.
        if budget.probe() {
            break;
        }
        // One span per centre: cheap next to the per-centre induction
        // work, and the per-centre cost profile is exactly what the
        // bridging-stage analysis needs (dropped on overflow, never
        // blocking — see mbb_obs::ring).
        let span = obs::span(obs::Stage::BridgeCentre);
        let (survivor, improvement) = process_center(
            graph,
            &rank,
            i,
            center_global,
            best.half_size(),
            config,
            &mut stats,
        );
        drop(span);
        if let Some(better) = improvement {
            if better.half_size() > best.half_size() {
                best = better;
            }
        }
        survivors.extend(survivor);
    }

    finish_bridge(best, survivors, stats)
}

/// The per-centre generation loop split across `threads` workers.
///
/// Workers claim chunks of [`CENTER_CHUNK`] consecutive centres from an
/// atomic cursor; subgraph generation for a centre depends only on the
/// (immutable) order ranks, so centres are embarrassingly parallel. The
/// incumbent half-size is shared through an atomic — an improvement found
/// by the local heuristic on any worker immediately strengthens every
/// other worker's size and degeneracy prunes. Survivors are re-assembled
/// in generation order, so downstream verification sees the same layout
/// as the serial loop.
fn bridge_parallel(
    graph: &BipartiteGraph,
    order: &[u32],
    rank: &[u32],
    incumbent: Biclique,
    config: BridgeConfig,
    budget: &SearchBudget,
    threads: usize,
) -> BridgeOutcome {
    let best_half = AtomicUsize::new(incumbent.half_size());
    let best = Mutex::new(incumbent);
    let cursor = AtomicUsize::new(0);

    let merged: Vec<(BridgeStats, Vec<(usize, CenteredSubgraph)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let best = &best;
                let best_half = &best_half;
                let cursor = &cursor;
                scope.spawn(move || {
                    let budget = budget.clone();
                    let mut stats = BridgeStats::default();
                    let mut survivors: Vec<(usize, CenteredSubgraph)> = Vec::new();
                    'pool: loop {
                        // relaxed: the fetch_add's atomicity alone hands
                        // each chunk to exactly one worker; the centres it
                        // indexes are immutable shared slices.
                        let start = cursor.fetch_add(CENTER_CHUNK, Ordering::Relaxed);
                        if start >= order.len() {
                            break;
                        }
                        let end = (start + CENTER_CHUNK).min(order.len());
                        for (i, &center_global) in order.iter().enumerate().take(end).skip(start) {
                            // Unsampled: per-centre work dwarfs the probe,
                            // and one worker's probe stops the whole pool.
                            if budget.probe() {
                                break 'pool;
                            }
                            // relaxed: advisory read of the monotonic
                            // incumbent bound; a stale value only prunes
                            // less. Results flow through `best`'s mutex.
                            let bound = best_half.load(Ordering::Relaxed);
                            // Per-centre span, as in the serial loop.
                            let span = obs::span(obs::Stage::BridgeCentre);
                            let (survivor, improvement) = process_center(
                                graph,
                                rank,
                                i,
                                center_global,
                                bound,
                                config,
                                &mut stats,
                            );
                            drop(span);
                            if let Some(better) = improvement {
                                let mut guard = best.lock();
                                if better.half_size() > guard.half_size() {
                                    // relaxed: monotonic advisory bound.
                                    // fetch_max (not store) keeps the cell
                                    // non-decreasing on its own, rather
                                    // than by grace of the mutex around
                                    // this block — a plain store would
                                    // silently regress the bound if the
                                    // locking discipline ever changed.
                                    best_half.fetch_max(better.half_size(), Ordering::Relaxed);
                                    *guard = better;
                                }
                            }
                            if let Some(s) = survivor {
                                survivors.push((i, s));
                            }
                        }
                    }
                    (stats, survivors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bridge worker panicked"))
            .collect()
    });

    let mut stats = BridgeStats::default();
    let mut indexed: Vec<(usize, CenteredSubgraph)> = Vec::new();
    for (worker_stats, worker_survivors) in merged {
        stats.merge(&worker_stats);
        indexed.extend(worker_survivors);
    }
    indexed.sort_by_key(|&(i, _)| i);
    let survivors = indexed.into_iter().map(|(_, s)| s).collect();
    finish_bridge(best.into_inner(), survivors, stats)
}

/// Generates, measures and prunes the subgraph centred at `order[i]`
/// against `best_half`, updating `stats` in place. Returns the surviving
/// subgraph (if not pruned) and any incumbent improvement the local
/// heuristic found.
#[allow(clippy::too_many_arguments)] // internal: serial + parallel loops share it
fn process_center(
    graph: &BipartiteGraph,
    rank: &[u32],
    i: usize,
    center_global: u32,
    best_half: usize,
    config: BridgeConfig,
    stats: &mut BridgeStats,
) -> (Option<CenteredSubgraph>, Option<Biclique>) {
    let center = graph.vertex_of_global(center_global as usize);
    // Assemble {centre} ∪ (N≤2(centre) ∩ later).
    let later = |side: Side, idx: u32| -> bool {
        rank[graph.global_id(Vertex { side, index: idx })] as usize > i
    };
    let opposite: Vec<u32> = graph
        .neighbors(center)
        .iter()
        .copied()
        .filter(|&w| later(center.side.opposite(), w))
        .collect();
    let mut same: Vec<u32> = n2_neighbors(graph, center)
        .into_iter()
        .filter(|&w| later(center.side, w))
        .collect();
    same.push(center.index);

    let (left_ids, right_ids) = match center.side {
        Side::Left => (same, opposite),
        Side::Right => (opposite, same),
    };

    stats.generated += 1;
    stats.size_sum += left_ids.len() + right_ids.len();
    stats.max_size = stats.max_size.max(left_ids.len() + right_ids.len());
    let min_side = left_ids.len().min(right_ids.len());

    // Size prune: a strictly larger balanced biclique needs
    // best_half + 1 vertices on each side.
    if min_side <= best_half {
        stats.pruned_size += 1;
        return (None, None);
    }

    let sub = induce_by_ids(graph, left_ids, right_ids);
    let denom = sub.graph.num_left() * sub.graph.num_right();
    if denom > 0 {
        stats.density_sum += sub.graph.num_edges() as f64 / denom as f64;
        stats.density_count += 1;
    }

    let mut improvement = None;
    if config.use_core_pruning {
        let cores = core_decomposition(&sub.graph);
        if cores.degeneracy as usize <= best_half {
            stats.pruned_degeneracy += 1;
            return (None, None);
        }
        // Local heuristic (maximum core-number greedy).
        let score: Vec<u64> = cores.core.iter().map(|&c| c as u64).collect();
        let local = greedy_balanced(&sub.graph, &score, config.heuristic_seeds);
        if local.half_size() > best_half {
            improvement = Some(map_to_parent(&local, &sub));
        }
    }

    (
        Some(CenteredSubgraph {
            center,
            left_ids: sub.left_ids,
            right_ids: sub.right_ids,
        }),
        improvement,
    )
}

/// A final sweep shared by both loops: subgraphs admitted before later
/// best-improvements may now be prunable by size.
fn finish_bridge(
    best: Biclique,
    mut survivors: Vec<CenteredSubgraph>,
    stats: BridgeStats,
) -> BridgeOutcome {
    let best_half = best.half_size();
    survivors.retain(|s| s.left_ids.len().min(s.right_ids.len()) > best_half);
    BridgeOutcome {
        best,
        survivors,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;
    use mbb_bigraph::order::{compute_order, SearchOrder};

    fn run(graph: &BipartiteGraph, incumbent_half: usize) -> BridgeOutcome {
        let order = compute_order(graph, SearchOrder::Bidegeneracy);
        // Fabricate an incumbent of the requested half-size on a complete
        // sub-block if possible, else empty.
        let incumbent = if incumbent_half == 0 {
            Biclique::empty()
        } else {
            Biclique::balanced(
                (0..incumbent_half as u32).collect(),
                (0..incumbent_half as u32).collect(),
            )
        };
        bridge_mbb(graph, &order, incumbent, BridgeConfig::default())
    }

    #[test]
    fn complete_graph_survivors_contain_biclique_space() {
        let g = generators::complete(4, 4);
        let out = run(&g, 0);
        // With an empty incumbent nothing is pruned by size except empty
        // sides; survivors must be non-empty and the local heuristic should
        // already find the 4x4 optimum.
        assert_eq!(out.best.half_size(), 4);
        assert!(out.stats.generated == 8);
    }

    #[test]
    fn survivors_cover_planted_biclique() {
        // If the incumbent is smaller than the planted biclique, the
        // earliest planted vertex's subgraph must contain the whole plant —
        // unless the local heuristic already found it.
        let g = generators::uniform_edges(40, 40, 160, 3);
        let (planted, left, right) = generators::plant_balanced_biclique(&g, 6);
        let order = compute_order(&planted, SearchOrder::Bidegeneracy);
        let out = bridge_mbb(&planted, &order, Biclique::empty(), BridgeConfig::default());
        if out.best.half_size() < 6 {
            let mut rank = vec![0u32; planted.num_vertices()];
            for (i, &gid) in order.iter().enumerate() {
                rank[gid as usize] = i as u32;
            }
            let earliest = left
                .iter()
                .map(|&u| planted.global_id(Vertex::left(u)))
                .chain(right.iter().map(|&v| planted.global_id(Vertex::right(v))))
                .min_by_key(|&gid| rank[gid])
                .unwrap();
            let center = planted.vertex_of_global(earliest);
            let hit = out.survivors.iter().any(|s| {
                s.center == center
                    && left
                        .iter()
                        .all(|u| s.left_ids.contains(u) || s.center == Vertex::left(*u))
                    && right
                        .iter()
                        .all(|v| s.right_ids.contains(v) || s.center == Vertex::right(*v))
            });
            assert!(hit, "no survivor covers the planted biclique");
        }
    }

    #[test]
    fn high_incumbent_prunes_everything_on_sparse_graph() {
        let g = generators::uniform_edges(50, 50, 100, 8);
        let out = run(&g, 10); // no 11x11 biclique in 100 random edges
        assert!(out.survivors.is_empty());
        assert!(out.stats.pruned_size + out.stats.pruned_degeneracy > 0);
    }

    #[test]
    fn stats_average_density_is_sane() {
        let g = generators::uniform_edges(30, 30, 200, 4);
        let out = run(&g, 0);
        let d = out.stats.average_density();
        assert!((0.0..=1.0).contains(&d), "density {d}");
        assert!(out.stats.average_size() >= 1.0);
    }

    #[test]
    fn parallel_generation_is_exact_after_verification() {
        use crate::verify::{verify_mbb, VerifyConfig};
        // Big enough to clear PARALLEL_MIN_CENTERS so the pool really
        // runs. Survivor lists and incumbents may differ from the serial
        // loop (heuristic improvements race, so prune timing differs) —
        // the guaranteed property is that verification over the parallel
        // survivors reaches the same optimum.
        for seed in 0..3u64 {
            let g = generators::uniform_edges(220, 220, 1400, seed);
            assert!(g.num_vertices() >= PARALLEL_MIN_CENTERS);
            let order = compute_order(&g, SearchOrder::Bidegeneracy);
            let serial = bridge_mbb(&g, &order, Biclique::empty(), BridgeConfig::default());
            let parallel = bridge_mbb(
                &g,
                &order,
                Biclique::empty(),
                BridgeConfig {
                    threads: 4,
                    ..BridgeConfig::default()
                },
            );
            // Every centre is processed in both loops.
            assert_eq!(
                parallel.stats.generated, serial.stats.generated,
                "seed {seed}"
            );
            assert!(parallel.best.is_valid(&g), "seed {seed}");
            let finish = |out: BridgeOutcome| {
                verify_mbb(&g, &out.survivors, out.best, VerifyConfig::default())
                    .0
                    .half_size()
            };
            assert_eq!(finish(parallel), finish(serial), "seed {seed}");
        }
    }

    #[test]
    fn best_is_always_valid() {
        for seed in 0..5 {
            let g = generators::uniform_edges(25, 25, 170, seed);
            let out = run(&g, 0);
            assert!(out.best.is_valid(&g), "seed {seed}");
        }
    }
}
