//! Shared brute-force oracles for unit tests.

use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::local::LocalGraph;

/// Brute-force optimum half-size of a [`LocalGraph`]: every subset of the
/// left side paired with all its common neighbours.
pub(crate) fn brute_force_half_local(g: &LocalGraph) -> usize {
    let nl = g.num_left();
    assert!(nl <= 20, "brute force limited to small graphs");
    let mut best = 0usize;
    for mask in 0u32..(1u32 << nl) {
        let chosen: Vec<u32> = (0..nl as u32).filter(|u| mask >> u & 1 == 1).collect();
        let common = g.common_neighbors_of_left(&chosen);
        best = best.max(chosen.len().min(common.len()));
    }
    best
}

/// Brute-force optimum half-size of a [`BipartiteGraph`].
pub(crate) fn brute_force_half_graph(g: &BipartiteGraph) -> usize {
    let nl = g.num_left();
    assert!(nl <= 20, "brute force limited to small graphs");
    let mut best = 0usize;
    for mask in 0u32..(1u32 << nl) {
        let mut common: Option<Vec<u32>> = None;
        let mut size = 0usize;
        for u in 0..nl as u32 {
            if mask >> u & 1 == 1 {
                size += 1;
                let n = g.neighbors_left(u);
                common = Some(match common {
                    None => n.to_vec(),
                    Some(c) => mbb_bigraph::graph::sorted_intersection(&c, n),
                });
            }
        }
        best = best.max(size.min(common.map_or(0, |c| c.len())));
    }
    best
}
