//! `basicBB` — Algorithm 1 of the paper.
//!
//! The O*(2ⁿ) alternating enumeration that both the correctness proofs and
//! the complexity analysis of `denseMBB` build on. Each include-branch swaps
//! the roles of the two sides, so enumerated partial bicliques are always
//! near-balanced (`|A| − |B| ∈ {0, 1}` along any root path), and the simple
//! bounding condition `2·min(|A|+|CA|, |B|+|CB|) ≤ best` prunes.
//!
//! Exposed mainly as a baseline and as a reference oracle for `denseMBB`
//! (the `bd3` ablation also swaps it in for the verification stage).

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::local::LocalGraph;

use crate::stats::SearchStats;

/// A biclique in local indices.
#[derive(Debug, Clone, Default)]
pub struct LocalBiclique {
    /// Left local indices.
    pub left: Vec<u32>,
    /// Right local indices.
    pub right: Vec<u32>,
}

impl LocalBiclique {
    /// `min(|A|, |B|)` — the balanced half-size this witness certifies.
    pub fn half(&self) -> usize {
        self.left.len().min(self.right.len())
    }

    /// Trims both sides to the half-size.
    pub fn balance(mut self) -> LocalBiclique {
        let k = self.half();
        self.left.truncate(k);
        self.right.truncate(k);
        self
    }
}

struct Searcher<'g> {
    graph: &'g LocalGraph,
    best: LocalBiclique,
    best_half: usize,
    stats: SearchStats,
}

/// Runs Algorithm 1 on a whole local graph. `initial_half` seeds the bound
/// (pass 0 when no incumbent exists); the returned biclique is balanced and
/// strictly larger than `initial_half` if one exists, empty otherwise.
pub fn basic_bb(graph: &LocalGraph, initial_half: usize) -> (LocalBiclique, SearchStats) {
    let mut searcher = Searcher {
        graph,
        best: LocalBiclique::default(),
        best_half: initial_half,
        stats: SearchStats::default(),
    };
    let ca = BitSet::full(graph.num_left());
    let cb = BitSet::full(graph.num_right());
    // `a_is_left = true`: the (A, CA) slot starts on the left side.
    searcher.recurse(&mut Vec::new(), &mut Vec::new(), ca, cb, true, 0);
    let stats = searcher.stats;
    (searcher.best.balance(), stats)
}

impl Searcher<'_> {
    /// `a`/`ca` live on the left side iff `a_is_left`; the recursion swaps
    /// the pairs exactly as Algorithm 1 lines 7–8 do.
    fn recurse(
        &mut self,
        a: &mut Vec<u32>,
        b: &mut Vec<u32>,
        ca: BitSet,
        cb: BitSet,
        a_is_left: bool,
        depth: u64,
    ) {
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        // Bounding (line 1): the reachable half-size is capped by both
        // sides' remaining material.
        let cap = (a.len() + ca.len()).min(b.len() + cb.len());
        if cap <= self.best_half {
            self.stats.bound_prunes += 1;
            self.stats.leaf_depth_sum += depth;
            self.stats.leaf_count += 1;
            return;
        }

        // Maximality check (lines 2–5).
        let Some(u) = ca.first() else {
            let half = a.len().min(b.len());
            if half > self.best_half {
                self.best_half = half;
                let (left, right) = if a_is_left {
                    (a.clone(), b.clone())
                } else {
                    (b.clone(), a.clone())
                };
                self.best = LocalBiclique { left, right };
            }
            self.stats.leaf_depth_sum += depth;
            self.stats.leaf_count += 1;
            return;
        };
        let u = u as u32;

        // Include branch (line 7): swap sides, extend the old A with u and
        // restrict the old CB to u's neighbours.
        let neighbor_row = if a_is_left {
            self.graph.left_row(u)
        } else {
            self.graph.right_row(u)
        };
        let mut new_ca = cb.clone();
        new_ca.intersect_with(&neighbor_row);
        let mut new_cb = ca.clone();
        new_cb.remove(u as usize);
        a.push(u);
        // After the swap the b-slot is the old a (now containing u).
        self.recurse(b, a, new_ca, new_cb, !a_is_left, depth + 1);
        a.pop();

        // Exclude branch (line 8).
        let mut rest = ca;
        rest.remove(u as usize);
        self.recurse(a, b, rest, cb, a_is_left, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(nl: usize, nr: usize) -> LocalGraph {
        let mut g = LocalGraph::new(nl, nr);
        for u in 0..nl as u32 {
            for v in 0..nr as u32 {
                g.add_edge(u, v);
            }
        }
        g
    }

    use crate::testutil::brute_force_half_local as brute_force_half;

    #[test]
    fn complete_graph_full_half() {
        let g = complete(4, 6);
        let (b, _) = basic_bb(&g, 0);
        assert_eq!(b.half(), 4);
        assert!(g.is_biclique(&b.left, &b.right));
    }

    #[test]
    fn empty_graph_has_empty_result() {
        let g = LocalGraph::new(3, 3);
        let (b, _) = basic_bb(&g, 0);
        assert_eq!(b.half(), 0);
    }

    #[test]
    fn single_edge() {
        let g = LocalGraph::from_edges(2, 2, [(1, 1)]);
        let (b, _) = basic_bb(&g, 0);
        assert_eq!(b.half(), 1);
        assert_eq!(b.left, vec![1]);
        assert_eq!(b.right, vec![1]);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nl = rng.gen_range(1..=8usize);
            let nr = rng.gen_range(1..=8usize);
            let mut g = LocalGraph::new(nl, nr);
            for u in 0..nl as u32 {
                for v in 0..nr as u32 {
                    if rng.gen_bool(0.5) {
                        g.add_edge(u, v);
                    }
                }
            }
            let (found, _) = basic_bb(&g, 0);
            assert_eq!(found.half(), brute_force_half(&g), "seed {seed}");
            assert!(g.is_biclique(&found.left, &found.right), "seed {seed}");
        }
    }

    #[test]
    fn initial_bound_filters_non_improving_results() {
        let g = complete(2, 2);
        // The graph's optimum half is 2; with initial_half = 2 nothing
        // strictly better exists, so the result is empty.
        let (b, _) = basic_bb(&g, 2);
        assert_eq!(b.half(), 0);
        // With initial_half = 1 the full 2x2 is found.
        let (b, _) = basic_bb(&g, 1);
        assert_eq!(b.half(), 2);
    }

    #[test]
    fn stats_count_nodes() {
        let g = complete(3, 3);
        let (_, stats) = basic_bb(&g, 0);
        assert!(stats.nodes > 0);
        assert!(stats.leaf_count > 0);
        assert!(stats.max_depth > 0);
    }
}
