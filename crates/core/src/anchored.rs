//! Anchored MBB search: the largest balanced biclique *containing a given
//! vertex or edge*.
//!
//! Observation 4 of the paper: every biclique through a vertex `v` lives
//! inside the subgraph induced by `{v} ∪ N≤2(v)`. Anchored search is
//! therefore a single vertex-centred problem — extract that subgraph,
//! pin the anchor into the partial result, and run `denseMBB` seeded the
//! same way Algorithm 8 seeds its verification calls. This is the
//! building block for "why is this vertex (not) in the MBB" queries and
//! per-entity bicluster reports.

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::graph::{BipartiteGraph, Side, Vertex};
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::two_hop::{n_le2, TwoHopIndex};

use crate::biclique::Biclique;
use crate::budget::SearchBudget;
use crate::dense::{dense_mbb_budgeted, DenseConfig};
use crate::stats::SearchStats;

/// The largest balanced biclique containing `anchor`, and the search
/// statistics of the underlying `denseMBB` run.
///
/// Returns the empty biclique only when `anchor` has no incident edge.
///
/// Deprecated one-shot form; prefer
/// [`MbbEngine::anchored`](crate::engine::MbbEngine::anchored), which
/// caches the two-hop index across anchored queries:
///
/// ```
/// use mbb_bigraph::graph::{BipartiteGraph, Vertex};
/// use mbb_core::engine::MbbEngine;
///
/// // L0 is pendant; the 2×2 block lives on {1,2}×{1,2}.
/// let g = BipartiteGraph::from_edges(
///     3, 3,
///     [(0, 0), (1, 1), (1, 2), (2, 1), (2, 2)],
/// )?;
/// let engine = MbbEngine::new(g);
/// let through_pendant = engine.anchored(Vertex::left(0)).value;
/// assert_eq!(through_pendant.half_size(), 1);
/// assert_eq!(through_pendant.left, vec![0]);
/// let through_block = engine.anchored(Vertex::left(1)).value;
/// assert_eq!(through_block.half_size(), 2);
/// # Ok::<(), mbb_bigraph::graph::GraphError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use MbbEngine::anchored / engine.query().anchored(v) instead"
)]
pub fn anchored_mbb(graph: &BipartiteGraph, anchor: Vertex) -> (Biclique, SearchStats) {
    anchored_budgeted(graph, anchor, None, &SearchBudget::unlimited())
}

/// The budgeted, index-aware anchored search behind
/// [`MbbEngine::anchored`](crate::engine::MbbEngine::anchored): an
/// optional cached [`TwoHopIndex`] replaces the per-query `N≤2` walk, and
/// the seeded `denseMBB` run honours the [`SearchBudget`] (best-so-far on
/// exhaustion).
pub fn anchored_budgeted(
    graph: &BipartiteGraph,
    anchor: Vertex,
    index: Option<&TwoHopIndex>,
    budget: &SearchBudget,
) -> (Biclique, SearchStats) {
    let (neighbors, two_hop) = match index {
        Some(index) => {
            let (n1, n2) = index.n_le2(graph, anchor);
            (n1.to_vec(), n2.to_vec())
        }
        None => n_le2(graph, anchor),
    };
    if neighbors.is_empty() {
        return (Biclique::empty(), SearchStats::default());
    }

    // Local index 0 on the anchor's side is the anchor itself.
    let mut same_side = Vec::with_capacity(two_hop.len() + 1);
    same_side.push(anchor.index);
    same_side.extend_from_slice(&two_hop);

    let mut same_cands = BitSet::new(same_side.len());
    for i in 1..same_side.len() {
        same_cands.insert(i);
    }
    let other_cands = BitSet::full(neighbors.len());

    let (local_result, stats) = match anchor.side {
        Side::Left => {
            let local = LocalGraph::induced(graph, &same_side, &neighbors);
            dense_mbb_budgeted(
                &local,
                vec![0],
                Vec::new(),
                same_cands,
                other_cands,
                0,
                DenseConfig::default(),
                budget,
            )
        }
        Side::Right => {
            let local = LocalGraph::induced(graph, &neighbors, &same_side);
            dense_mbb_budgeted(
                &local,
                Vec::new(),
                vec![0],
                other_cands,
                same_cands,
                0,
                DenseConfig::default(),
                budget,
            )
        }
    };

    // Map local indices back to the original graph. The anchor has at
    // least one neighbour, so the seeded search always finds half ≥ 1.
    let (left_ids, right_ids): (&[u32], &[u32]) = match anchor.side {
        Side::Left => (&same_side, &neighbors),
        Side::Right => (&neighbors, &same_side),
    };
    let left = local_result
        .left
        .iter()
        .map(|&i| left_ids[i as usize])
        .collect();
    let right = local_result
        .right
        .iter()
        .map(|&i| right_ids[i as usize])
        .collect();
    (Biclique::balanced(left, right), stats)
}

/// The largest balanced biclique containing the edge `(u, v)` (left `u`,
/// right `v`). Returns `None` when the edge is absent from the graph.
#[deprecated(
    since = "0.2.0",
    note = "use MbbEngine::anchored_edge / engine.query().anchored_edge(u, v) instead"
)]
pub fn anchored_mbb_edge(
    graph: &BipartiteGraph,
    u: u32,
    v: u32,
) -> Option<(Biclique, SearchStats)> {
    anchored_edge_budgeted(graph, u, v, None, &SearchBudget::unlimited())
}

/// The budgeted, index-aware edge-anchored search behind
/// [`MbbEngine::anchored_edge`](crate::engine::MbbEngine::anchored_edge).
pub fn anchored_edge_budgeted(
    graph: &BipartiteGraph,
    u: u32,
    v: u32,
    index: Option<&TwoHopIndex>,
    budget: &SearchBudget,
) -> Option<(Biclique, SearchStats)> {
    if !graph.has_edge(u, v) {
        return None;
    }
    let (u_neighbors, u_two_hop) = match index {
        Some(index) => {
            let (n1, n2) = index.n_le2(graph, Vertex::left(u));
            (n1.to_vec(), n2.to_vec())
        }
        None => n_le2(graph, Vertex::left(u)),
    };

    // Scope: left side {u} ∪ N2(u) restricted to N(v); right side N(u).
    // Every biclique through the edge has A ⊆ N(v) and B ⊆ N(u).
    let mut left_ids = Vec::with_capacity(u_two_hop.len() + 1);
    left_ids.push(u);
    left_ids.extend(u_two_hop.iter().copied().filter(|&w| graph.has_edge(w, v)));

    let right_ids = u_neighbors;
    let v_local = right_ids.binary_search(&v).expect("v is a neighbour of u") as u32;
    let local = LocalGraph::induced(graph, &left_ids, &right_ids);

    let mut ca = BitSet::new(left_ids.len());
    for i in 1..left_ids.len() {
        ca.insert(i);
    }
    // Right candidates must be adjacent to the pinned u; all of N(u) are.
    let mut cb = BitSet::full(right_ids.len());
    cb.remove(v_local as usize);

    let (local_result, stats) = dense_mbb_budgeted(
        &local,
        vec![0],
        vec![v_local],
        ca,
        cb,
        0,
        DenseConfig::default(),
        budget,
    );
    let left = local_result
        .left
        .iter()
        .map(|&i| left_ids[i as usize])
        .collect();
    let right = local_result
        .right
        .iter()
        .map(|&i| right_ids[i as usize])
        .collect();
    Some((Biclique::balanced(left, right), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;
    use mbb_bigraph::graph::sorted_intersection;

    /// Brute force: best balanced biclique whose left (right) side contains
    /// the anchor, by enumerating left subsets.
    fn brute_anchored(graph: &BipartiteGraph, anchor: Vertex) -> usize {
        let nl = graph.num_left();
        assert!(nl <= 14);
        let mut best = 0;
        for mask in 1u32..(1 << nl) {
            let a: Vec<u32> = (0..nl as u32).filter(|u| mask >> u & 1 == 1).collect();
            let mut common: Option<Vec<u32>> = None;
            for &u in &a {
                let n = graph.neighbors_left(u);
                common = Some(match common {
                    None => n.to_vec(),
                    Some(c) => sorted_intersection(&c, n),
                });
            }
            let common = common.unwrap_or_default();
            let ok = match anchor.side {
                Side::Left => a.contains(&anchor.index),
                Side::Right => common.contains(&anchor.index),
            };
            if ok {
                best = best.max(a.len().min(common.len()));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_left_anchors() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(8, 8, 30, seed);
            for u in 0..8u32 {
                let anchor = Vertex::left(u);
                let (b, _) = anchored_budgeted(&g, anchor, None, &SearchBudget::unlimited());
                assert_eq!(
                    b.half_size(),
                    brute_anchored(&g, anchor),
                    "seed {seed} anchor L{u}"
                );
                if !b.is_empty() {
                    assert!(b.is_valid(&g));
                    assert!(b.left.contains(&u));
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_right_anchors() {
        for seed in 20..30u64 {
            let g = generators::uniform_edges(8, 8, 30, seed);
            for v in 0..8u32 {
                let anchor = Vertex::right(v);
                let (b, _) = anchored_budgeted(&g, anchor, None, &SearchBudget::unlimited());
                assert_eq!(
                    b.half_size(),
                    brute_anchored(&g, anchor),
                    "seed {seed} anchor R{v}"
                );
                if !b.is_empty() {
                    assert!(b.right.contains(&v));
                }
            }
        }
    }

    #[test]
    fn isolated_anchor_returns_empty() {
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0)]).unwrap();
        let (b, _) = anchored_budgeted(&g, Vertex::left(2), None, &SearchBudget::unlimited());
        assert!(b.is_empty());
        let (b, _) = anchored_budgeted(&g, Vertex::right(1), None, &SearchBudget::unlimited());
        assert!(b.is_empty());
    }

    #[test]
    fn anchored_never_exceeds_global_mbb() {
        let g = generators::uniform_edges(10, 10, 40, 3);
        let global = crate::solver::MbbSolver::new()
            .solve(&g)
            .biclique
            .half_size();
        let mut best_anchored = 0;
        for u in 0..10u32 {
            best_anchored = best_anchored.max(
                anchored_budgeted(&g, Vertex::left(u), None, &SearchBudget::unlimited())
                    .0
                    .half_size(),
            );
        }
        // Some anchor lies inside the MBB, so the max over anchors equals it.
        assert_eq!(best_anchored, global);
    }

    #[test]
    fn edge_anchor_contains_the_edge() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(8, 8, 28, seed ^ 0x44);
            for (u, v) in g.edges().take(10) {
                let (b, _) = anchored_edge_budgeted(&g, u, v, None, &SearchBudget::unlimited())
                    .expect("edge exists");
                assert!(b.left.contains(&u), "seed {seed} edge ({u},{v})");
                assert!(b.right.contains(&v));
                assert!(b.is_valid(&g));
                assert!(b.half_size() >= 1);
            }
        }
    }

    #[test]
    fn edge_anchor_missing_edge_is_none() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 1)]).unwrap();
        assert!(anchored_edge_budgeted(&g, 0, 1, None, &SearchBudget::unlimited()).is_none());
    }

    #[test]
    fn edge_anchor_matches_vertex_anchor_on_blocks() {
        // In a complete block the edge anchor finds the whole block.
        let g = generators::complete(4, 5);
        let (b, _) = anchored_edge_budgeted(&g, 1, 2, None, &SearchBudget::unlimited()).unwrap();
        assert_eq!(b.half_size(), 4);
    }

    #[test]
    fn pendant_edge_is_its_own_mbb() {
        let mut edges: Vec<(u32, u32)> = (0..3).flat_map(|u| (0..3).map(move |v| (u, v))).collect();
        edges.push((3, 3));
        let g = BipartiteGraph::from_edges(4, 4, edges).unwrap();
        let (b, _) = anchored_budgeted(&g, Vertex::left(3), None, &SearchBudget::unlimited());
        assert_eq!(b.half_size(), 1);
        assert_eq!(b.left, vec![3]);
        assert_eq!(b.right, vec![3]);
    }
}
