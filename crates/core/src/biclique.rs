//! The balanced-biclique result type.

use mbb_bigraph::graph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// A balanced biclique `(A ⊆ L, B ⊆ R)` with `|A| = |B|`, in original
/// graph indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Biclique {
    /// Left-side vertex indices, sorted.
    pub left: Vec<u32>,
    /// Right-side vertex indices, sorted; same length as `left`.
    pub right: Vec<u32>,
}

impl Biclique {
    /// The empty biclique.
    pub fn empty() -> Biclique {
        Biclique::default()
    }

    /// Builds a balanced biclique from possibly unbalanced sides by
    /// trimming the larger side ("make (A, B) balance" in the paper's
    /// Algorithms 1 and 2).
    pub fn balanced(mut left: Vec<u32>, mut right: Vec<u32>) -> Biclique {
        let k = left.len().min(right.len());
        left.truncate(k);
        right.truncate(k);
        left.sort_unstable();
        right.sort_unstable();
        Biclique { left, right }
    }

    /// The half size `|A| (= |B|)`.
    #[inline]
    pub fn half_size(&self) -> usize {
        debug_assert_eq!(self.left.len(), self.right.len());
        self.left.len()
    }

    /// The total size `|A| + |B|`.
    #[inline]
    pub fn total_size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// True when the biclique is empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// Validates balance and completeness against a graph.
    pub fn is_valid(&self, graph: &BipartiteGraph) -> bool {
        self.left.len() == self.right.len() && graph.is_biclique(&self.left, &self.right)
    }
}

impl std::fmt::Display for Biclique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:?}, {:?})", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_biclique() {
        let b = Biclique::empty();
        assert!(b.is_empty());
        assert_eq!(b.half_size(), 0);
        assert_eq!(b.total_size(), 0);
    }

    #[test]
    fn balanced_trims_larger_side() {
        let b = Biclique::balanced(vec![3, 1, 2], vec![5, 4]);
        assert_eq!(b.half_size(), 2);
        // Truncation happens before sorting: the first two collected left
        // vertices are kept.
        assert_eq!(b.left.len(), 2);
        assert_eq!(b.right, vec![4, 5]);
    }

    #[test]
    fn validity_against_graph() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let b = Biclique::balanced(vec![0, 1], vec![0, 1]);
        assert!(b.is_valid(&g));
        let g2 = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 1)]).unwrap();
        assert!(!b.is_valid(&g2));
    }

    #[test]
    fn unbalanced_is_invalid() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (0, 1)]).unwrap();
        let b = Biclique {
            left: vec![0],
            right: vec![0, 1],
        };
        assert!(!b.is_valid(&g));
    }
}
