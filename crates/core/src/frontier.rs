//! The biclique size frontier — the paper's "maximal instances of the
//! (a, b) biclique problem" (§4.2), lifted from paths/cycles to whole
//! graphs.
//!
//! A size pair `(a, b)` is *feasible* when the graph contains a biclique
//! with `|A| ≥ a` and `|B| ≥ b`; the frontier is the set of feasible
//! pairs not dominated by any other (the Pareto-maximal pairs). The
//! frontier answers every size-constrained existence query at once, and
//! its balanced corner `max min(a, b)` is the MBB half-size.

use std::ops::ControlFlow;
use std::time::Duration;

use mbb_bigraph::graph::BipartiteGraph;

use crate::budget::SearchBudget;
use crate::enumerate::{enumerate_budgeted, EnumConfig};

/// The biclique size frontier of a graph.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SizeFrontier {
    /// Pareto-maximal `(a, b)` pairs, sorted by `a` ascending (so `b`
    /// descends). Excludes the degenerate all-of-one-side pairs with an
    /// empty other side.
    pub pairs: Vec<(usize, usize)>,
    /// False when the underlying enumeration hit its budget — the
    /// frontier is then a lower-bound approximation.
    pub complete: bool,
}

impl SizeFrontier {
    /// Computes the frontier by enumerating maximal bicliques. Worst-case
    /// exponential (the frontier itself can have at most `min(|L|, |R|)`
    /// points, but certifying it needs all maximal bicliques); pass a
    /// budget on large dense graphs.
    ///
    /// Legacy one-shot form whose `Option<Duration>` budget truncates
    /// silently (`complete: false` cannot say why); prefer
    /// [`MbbEngine::frontier`](crate::engine::MbbEngine::frontier), which
    /// reports a typed [`Termination`](crate::budget::Termination).
    #[deprecated(
        since = "0.2.0",
        note = "use MbbEngine::frontier / engine.query().frontier() instead"
    )]
    pub fn of(graph: &BipartiteGraph, budget: Option<Duration>) -> SizeFrontier {
        let budget = budget.map_or_else(SearchBudget::unlimited, SearchBudget::with_deadline);
        SizeFrontier::budgeted(graph, &budget)
    }

    /// Computes the frontier under a shared [`SearchBudget`] — the entry
    /// point behind [`MbbEngine::frontier`](crate::engine::MbbEngine::frontier),
    /// whose [`Termination`](crate::budget::Termination) replaces the bare
    /// `complete` flag with the reason the enumeration stopped.
    ///
    /// ```
    /// use mbb_bigraph::graph::BipartiteGraph;
    /// use mbb_core::budget::SearchBudget;
    /// use mbb_core::frontier::SizeFrontier;
    ///
    /// // A 1×3 star plus a 2×2 block sharing no vertices.
    /// let g = BipartiteGraph::from_edges(
    ///     3, 5,
    ///     [(0, 0), (0, 1), (0, 2), (1, 3), (1, 4), (2, 3), (2, 4)],
    /// )?;
    /// let frontier = SizeFrontier::budgeted(&g, &SearchBudget::unlimited());
    /// assert_eq!(frontier.pairs, vec![(1, 3), (2, 2)]);
    /// assert_eq!(frontier.mbb_half(), 2);
    /// # Ok::<(), mbb_bigraph::graph::GraphError>(())
    /// ```
    pub fn budgeted(graph: &BipartiteGraph, budget: &SearchBudget) -> SizeFrontier {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let outcome = enumerate_budgeted(graph, &EnumConfig::default(), budget, |b| {
            pairs.push((b.left.len(), b.right.len()));
            ControlFlow::Continue(())
        });
        let complete = outcome.complete;
        pairs.sort_unstable();
        pairs.dedup();
        // Pareto filter: sorted by (a, b) ascending, scan from the right
        // keeping pairs whose b strictly exceeds every later-kept b.
        let mut frontier: Vec<(usize, usize)> = Vec::new();
        let mut best_b = 0usize;
        for &(a, b) in pairs.iter().rev() {
            if b > best_b {
                frontier.push((a, b));
                best_b = b;
            }
        }
        frontier.reverse();
        SizeFrontier {
            pairs: frontier,
            complete,
        }
    }

    /// True when a biclique with `|A| ≥ a` and `|B| ≥ b` exists (for a
    /// complete frontier; a lower bound otherwise). Pairs with a zero
    /// component are feasible iff the respective side has that many
    /// non-isolated vertices covered by some frontier point.
    pub fn is_feasible(&self, a: usize, b: usize) -> bool {
        self.pairs.iter().any(|&(fa, fb)| fa >= a && fb >= b)
    }

    /// The MBB half-size: the balanced corner `max min(a, b)`.
    pub fn mbb_half(&self) -> usize {
        self.pairs.iter().map(|&(a, b)| a.min(b)).max().unwrap_or(0)
    }

    /// The maximum-edge corner `max a·b` (the MEB objective).
    pub fn meb_edges(&self) -> usize {
        self.pairs.iter().map(|&(a, b)| a * b).max().unwrap_or(0)
    }

    /// The maximum-vertex corner `max a+b` (the MVB objective).
    pub fn mvb_total(&self) -> usize {
        self.pairs.iter().map(|&(a, b)| a + b).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meb::maximum_edge_biclique;
    use crate::solver::MbbSolver;
    use mbb_bigraph::generators;
    use mbb_bigraph::matching::maximum_vertex_biclique;

    #[test]
    fn frontier_is_antichain_and_sorted() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(9, 9, 35, seed);
            let f = SizeFrontier::budgeted(&g, &SearchBudget::unlimited());
            assert!(f.complete);
            for w in f.pairs.windows(2) {
                assert!(w[0].0 < w[1].0, "a ascending: {:?}", f.pairs);
                assert!(w[0].1 > w[1].1, "b descending: {:?}", f.pairs);
            }
        }
    }

    #[test]
    fn corners_match_dedicated_solvers() {
        for seed in 0..12u64 {
            let g = generators::uniform_edges(8, 8, 30, seed ^ 0x20);
            let f = SizeFrontier::budgeted(&g, &SearchBudget::unlimited());
            assert_eq!(
                f.mbb_half(),
                MbbSolver::new().solve(&g).biclique.half_size(),
                "seed {seed}"
            );
            let meb = maximum_edge_biclique(&g);
            assert_eq!(
                f.meb_edges(),
                meb.left.len() * meb.right.len(),
                "seed {seed}"
            );
            let (mvb_a, mvb_b) = maximum_vertex_biclique(&g);
            // MVB allows empty sides; the frontier excludes them, so it
            // can only be smaller or equal.
            assert!(f.mvb_total() <= mvb_a.len() + mvb_b.len(), "seed {seed}");
        }
    }

    #[test]
    fn feasibility_queries() {
        let g = generators::complete(3, 4);
        let f = SizeFrontier::budgeted(&g, &SearchBudget::unlimited());
        assert_eq!(f.pairs, vec![(3, 4)]);
        assert!(f.is_feasible(2, 2));
        assert!(f.is_feasible(3, 4));
        assert!(!f.is_feasible(4, 1));
        assert!(!f.is_feasible(1, 5));
    }

    #[test]
    fn empty_graph_has_empty_frontier() {
        let g = BipartiteGraph::from_edges(3, 3, []).unwrap();
        let f = SizeFrontier::budgeted(&g, &SearchBudget::unlimited());
        assert!(f.pairs.is_empty());
        assert_eq!(f.mbb_half(), 0);
        assert!(!f.is_feasible(1, 1));
    }

    #[test]
    fn frontier_points_are_realizable() {
        use crate::size_constrained::find_size_constrained;
        let g = generators::uniform_edges(8, 8, 30, 3);
        let f = SizeFrontier::budgeted(&g, &SearchBudget::unlimited());
        for &(a, b) in &f.pairs {
            let witness = find_size_constrained(&g, a, b);
            assert!(witness.is_some(), "({a}, {b}) should be realizable");
        }
    }

    #[test]
    fn dominated_points_are_infeasible_beyond_frontier() {
        use crate::size_constrained::find_size_constrained;
        let g = generators::uniform_edges(8, 8, 30, 7);
        let f = SizeFrontier::budgeted(&g, &SearchBudget::unlimited());
        // One past the frontier in each coordinate must be infeasible.
        for &(a, b) in &f.pairs {
            if !f.is_feasible(a + 1, b) {
                assert!(
                    find_size_constrained(&g, a + 1, b).is_none(),
                    "({},{b})",
                    a + 1
                );
            }
            if !f.is_feasible(a, b + 1) {
                assert!(
                    find_size_constrained(&g, a, b + 1).is_none(),
                    "({a},{})",
                    b + 1
                );
            }
        }
    }
}
