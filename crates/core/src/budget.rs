//! Shared time budgets and cooperative cancellation for every solver
//! entry point.
//!
//! The search kernels in this crate ([`crate::dense`], [`crate::bridge`],
//! [`crate::enumerate`], …) are exponential in the worst case, so a
//! production service needs two things the paper's offline experiments do
//! not: a **deadline** ("answer in 50 ms with the best you have") and
//! **cancellation** ("the client hung up, stop burning CPU"). Both are
//! carried by [`SearchBudget`], a tiny value threaded through the hot
//! loops:
//!
//! * the exhausted state is a single shared atomic, so once one worker
//!   observes the deadline every other thread sees it on its next check;
//! * wall-clock probes ([`std::time::Instant::now`]) are sampled — one
//!   probe every [`PROBE_INTERVAL`] checks — keeping the per-node cost of
//!   an armed budget to one relaxed atomic load;
//! * an **unlimited** budget (the default) is a `None` and costs one
//!   branch per check.
//!
//! How a search ended is reported as a [`Termination`] — the replacement
//! for the old scattered `complete: bool` flags, which could not say *why*
//! a run stopped.
//!
//! # Sampling cadence and overshoot bound
//!
//! The per-node check [`SearchBudget::is_exhausted`] is *sampled*: it
//! reads the shared state every call but consults the wall clock and the
//! cancel token only once per [`PROBE_INTERVAL`] (= 256) calls. The
//! contract that follows:
//!
//! * after a deadline expires or a token fires, a worker keeps searching
//!   for **at most `PROBE_INTERVAL − 1` further nodes** before its own
//!   probe notices (worst case, if no other clone probes first) — at
//!   microseconds per node, sub-millisecond overshoot per worker;
//! * once *any* clone's probe notices, the shared state flips and **every**
//!   clone stops at its next check — one relaxed load, no probe needed;
//! * coarse boundaries (stage transitions, per-centre and per-subgraph
//!   loops, parallel-pool entry) call [`SearchBudget::probe`] directly,
//!   which is unsampled, so expiry between stages is detected immediately;
//! * polynomial passes (the stage-1 heuristic, index builds, per-subgraph
//!   core reductions) do not check at all and run to completion — the
//!   worst-case overshoot of a whole query adds one such pass.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often an armed [`SearchBudget`] pays for a wall-clock probe: one
/// [`Instant::now`] every this many [`SearchBudget::is_exhausted`] calls.
/// Search nodes cost microseconds, so the deadline overshoot stays in the
/// sub-millisecond range while the common-case check is a relaxed load.
pub const PROBE_INTERVAL: u64 = 256;

const RUNNING: u8 = 0;
const DEADLINE: u8 = 1;
const CANCELLED: u8 = 2;

/// A shareable cancellation handle: clone it, hand one clone to the query
/// and keep the other, then call [`cancel`](CancelToken::cancel) from any
/// thread to stop the search at its next budget check.
///
/// ```
/// use mbb_core::budget::CancelToken;
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        // relaxed: monotonic advisory flag (false→true once). It carries
        // no data: searches that observe it stop and return results via
        // their own join/channel happens-before edges. A delayed
        // observation only extends the search by the sampling latency.
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once any clone called [`cancel`](Self::cancel).
    pub fn is_cancelled(&self) -> bool {
        // relaxed: advisory read of the monotonic flag (see cancel()).
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a query stopped. `Complete` results are exact; the other two carry
/// the best answer found before the budget ran out (anytime semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The search ran to completion; the result is exact.
    Complete,
    /// The wall-clock deadline expired; the result is the best so far.
    DeadlineExceeded,
    /// A [`CancelToken`] fired; the result is the best so far.
    Cancelled,
}

impl Termination {
    /// True for [`Termination::Complete`].
    #[inline]
    pub fn is_complete(self) -> bool {
        self == Termination::Complete
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Termination::Complete => write!(f, "complete"),
            Termination::DeadlineExceeded => write!(f, "deadline-exceeded"),
            Termination::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::str::FromStr for Termination {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) form back — the wire
    /// representation used by JSON outputs (`"complete"`,
    /// `"deadline-exceeded"`, `"cancelled"`).
    ///
    /// ```
    /// use mbb_core::budget::Termination;
    /// let t: Termination = "deadline-exceeded".parse().unwrap();
    /// assert_eq!(t, Termination::DeadlineExceeded);
    /// assert_eq!(t.to_string().parse::<Termination>().unwrap(), t);
    /// ```
    fn from_str(s: &str) -> Result<Termination, String> {
        match s {
            "complete" => Ok(Termination::Complete),
            "deadline-exceeded" => Ok(Termination::DeadlineExceeded),
            "cancelled" => Ok(Termination::Cancelled),
            other => Err(format!("unknown termination {other:?}")),
        }
    }
}

/// The budget itself. Cheap to clone (two `Arc`s); clones share the same
/// exhausted state, so one clone per worker thread is the intended use.
/// The per-clone `ticks` counter is deliberately local — it only staggers
/// the wall-clock probes.
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// `None` = unlimited. Shared across clones so expiry is sticky.
    state: Option<Arc<AtomicU8>>,
    ticks: u64,
}

impl SearchBudget {
    /// A budget that never expires (the default).
    pub fn unlimited() -> SearchBudget {
        SearchBudget::default()
    }

    /// Builds a budget from an optional deadline and an optional token.
    /// `None`/`None` yields an unlimited budget.
    pub fn new(deadline: Option<Instant>, cancel: Option<CancelToken>) -> SearchBudget {
        let armed = deadline.is_some() || cancel.is_some();
        SearchBudget {
            deadline,
            cancel,
            state: armed.then(|| Arc::new(AtomicU8::new(RUNNING))),
            ticks: 0,
        }
    }

    /// A budget expiring `limit` from now.
    pub fn with_deadline(limit: Duration) -> SearchBudget {
        SearchBudget::new(Some(Instant::now() + limit), None)
    }

    /// A budget controlled only by a cancellation token.
    pub fn with_cancel_token(token: CancelToken) -> SearchBudget {
        SearchBudget::new(None, Some(token))
    }

    /// True when the budget can actually expire (deadline or token armed).
    pub fn is_limited(&self) -> bool {
        self.state.is_some()
    }

    /// The hot-loop check: true once the deadline passed or the token
    /// fired. Unlimited budgets return false after one branch; armed
    /// budgets pay one relaxed atomic load, plus a wall-clock probe every
    /// [`PROBE_INTERVAL`] calls. Once true, it stays true for every clone.
    #[inline]
    pub fn is_exhausted(&mut self) -> bool {
        let Some(state) = &self.state else {
            return false;
        };
        // relaxed: sticky RUNNING→{DEADLINE,CANCELLED} state machine; the
        // transition is monotonic and guards no data, so a stale RUNNING
        // read only delays the stop by one probe interval.
        if state.load(Ordering::Relaxed) != RUNNING {
            return true;
        }
        self.ticks = self.ticks.wrapping_add(1);
        if !self.ticks.is_multiple_of(PROBE_INTERVAL) {
            return false;
        }
        self.probe()
    }

    /// An immediate (unsampled) probe of the clock and the token. Use at
    /// coarse boundaries — stage transitions, per-subgraph loops — where
    /// the probe cost is irrelevant but prompt detection matters.
    pub fn probe(&self) -> bool {
        let Some(state) = &self.state else {
            return false;
        };
        // relaxed: sticky-state fast path, same contract as is_exhausted.
        if state.load(Ordering::Relaxed) != RUNNING {
            return true;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            // relaxed: CANCELLED is terminal, so racing stores agree on
            // the value; readers treat the state as advisory only.
            state.store(CANCELLED, Ordering::Relaxed);
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            // Never overwrite a concurrent CANCELLED: cancellation is the
            // stronger (caller-initiated) signal.
            // relaxed: the CAS's atomicity alone decides the transition;
            // no data is published through this cell.
            let _ = state.compare_exchange(RUNNING, DEADLINE, Ordering::Relaxed, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// How the budgeted run ended, as the search itself observed it: this
    /// reads the sticky state and deliberately does **not** probe the
    /// clock again. A search that finished its whole tree before any
    /// check saw the deadline is exact, so it reports `Complete` even if
    /// the deadline has since passed — keeping `termination()` consistent
    /// with the payload's own completeness flags.
    pub fn termination(&self) -> Termination {
        let Some(state) = &self.state else {
            return Termination::Complete;
        };
        // relaxed: read after the search's own checks observed (or never
        // observed) the sticky state; callers joining worker threads get
        // their happens-before edge from the join, not from this load.
        match state.load(Ordering::Relaxed) {
            DEADLINE => Termination::DeadlineExceeded,
            CANCELLED => Termination::Cancelled,
            _ => Termination::Complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut b = SearchBudget::unlimited();
        for _ in 0..10_000 {
            assert!(!b.is_exhausted());
        }
        assert!(!b.is_limited());
        assert_eq!(b.termination(), Termination::Complete);
    }

    #[test]
    fn expired_deadline_is_detected_and_sticky() {
        let mut b = SearchBudget::with_deadline(Duration::from_millis(0));
        assert!(b.is_limited());
        // Within PROBE_INTERVAL ticks the probe must fire.
        let mut exhausted = false;
        for _ in 0..=PROBE_INTERVAL {
            if b.is_exhausted() {
                exhausted = true;
                break;
            }
        }
        assert!(exhausted);
        assert!(b.is_exhausted(), "sticky");
        assert_eq!(b.termination(), Termination::DeadlineExceeded);
    }

    #[test]
    fn cancellation_wins_and_propagates_to_clones() {
        let token = CancelToken::new();
        let mut a = SearchBudget::with_cancel_token(token.clone());
        let mut b = a.clone();
        assert!(!a.probe());
        token.cancel();
        assert!(a.probe());
        assert!(a.is_exhausted());
        // The clone sees the shared sticky state without its own probe.
        assert!(b.is_exhausted());
        assert_eq!(b.termination(), Termination::Cancelled);
        assert_eq!(a.termination(), Termination::Cancelled);
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let mut b = SearchBudget::with_deadline(Duration::from_secs(3600));
        for _ in 0..(4 * PROBE_INTERVAL) {
            assert!(!b.is_exhausted());
        }
        assert_eq!(b.termination(), Termination::Complete);
    }

    #[test]
    fn termination_display() {
        assert_eq!(Termination::Complete.to_string(), "complete");
        assert_eq!(
            Termination::DeadlineExceeded.to_string(),
            "deadline-exceeded"
        );
        assert_eq!(Termination::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn termination_round_trips_through_from_str() {
        for t in [
            Termination::Complete,
            Termination::DeadlineExceeded,
            Termination::Cancelled,
        ] {
            assert_eq!(t.to_string().parse::<Termination>().unwrap(), t);
        }
        assert!("done".parse::<Termination>().is_err());
    }
}
