//! Maximal biclique enumeration (MBE) with proper maximality checking.
//!
//! The paper's baselines strip maximality checking out of MBE engines
//! because MBB search only needs the best balanced biclique. A library
//! user, however, often wants the maximal bicliques themselves (biological
//! biclustering enumerates them directly), so this module exposes a real
//! enumerator: the consensus-expansion algorithm of iMBEA / MBEA
//! (Zhang et al. 2014, \[29\] in the paper), which reports every maximal
//! biclique `(A, B)` with `A, B ≠ ∅` exactly once.
//!
//! The enumerator is callback-driven ([`enumerate_maximal_bicliques`]) so
//! results can be streamed without materialising what may be an
//! exponential-size output; [`all_maximal_bicliques`] and
//! [`count_maximal_bicliques`] are convenience wrappers.

use std::cell::Cell;
use std::ops::ControlFlow;
use std::rc::Rc;
use std::time::Duration;

use mbb_bigraph::graph::{
    sorted_contains_all, sorted_intersection, sorted_intersects, sorted_overlap_with,
    BipartiteGraph, SortedOverlap,
};

use crate::budget::SearchBudget;

/// A maximal biclique in original graph indices: no vertex of either side
/// can be added without breaking completeness. Unlike
/// [`crate::Biclique`], the sides may have different sizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MaximalBiclique {
    /// Left-side vertex indices, sorted.
    pub left: Vec<u32>,
    /// Right-side vertex indices, sorted.
    pub right: Vec<u32>,
}

impl MaximalBiclique {
    /// The balanced size `min(|A|, |B|)` — the half-size of the largest
    /// balanced biclique contained in this maximal biclique.
    #[inline]
    pub fn balanced_size(&self) -> usize {
        self.left.len().min(self.right.len())
    }

    /// Total vertex count `|A| + |B|`.
    #[inline]
    pub fn total_size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Edge count `|A| · |B|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.left.len() * self.right.len()
    }

    /// Checks completeness and maximality against `graph`.
    pub fn is_maximal(&self, graph: &BipartiteGraph) -> bool {
        if self.left.is_empty() || self.right.is_empty() {
            return false;
        }
        if !graph.is_biclique(&self.left, &self.right) {
            return false;
        }
        // No left vertex outside `left` is adjacent to all of `right` …
        let extendable_left = (0..graph.num_left() as u32)
            .filter(|u| self.left.binary_search(u).is_err())
            .any(|u| sorted_contains_all(graph.neighbors_left(u), &self.right));
        // … and symmetrically for the right side.
        let extendable_right = (0..graph.num_right() as u32)
            .filter(|v| self.right.binary_search(v).is_err())
            .any(|v| sorted_contains_all(graph.neighbors_right(v), &self.left));
        !extendable_left && !extendable_right
    }
}

/// Filters and limits for the enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EnumConfig {
    /// Report only bicliques with `|A| ≥ min_left`.
    pub min_left: usize,
    /// Report only bicliques with `|B| ≥ min_right`.
    pub min_right: usize,
    /// Stop after reporting this many bicliques.
    pub max_results: Option<u64>,
    /// Wall-clock budget; the enumeration stops (incomplete) when it
    /// expires.
    pub budget: Option<Duration>,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            min_left: 1,
            min_right: 1,
            max_results: None,
            budget: None,
        }
    }
}

/// Summary of an enumeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumOutcome {
    /// Number of maximal bicliques reported to the callback.
    pub reported: u64,
    /// Number of maximal bicliques visited (including ones filtered out by
    /// the size thresholds).
    pub visited: u64,
    /// False when the run stopped early (budget, `max_results`, or the
    /// callback returning [`ControlFlow::Break`]).
    pub complete: bool,
}

struct Enumerator<'g, F> {
    graph: &'g BipartiteGraph,
    config: EnumConfig,
    visit: F,
    reported: u64,
    visited: u64,
    stopped: bool,
    /// The per-call [`EnumConfig::budget`] cap, carried as a sampled
    /// [`SearchBudget`] so the hot loop never reads the raw wall clock.
    call_budget: SearchBudget,
    /// Session budget (deadline/cancellation shared with the caller), as
    /// opposed to the per-call `call_budget` above.
    budget: SearchBudget,
    /// Dynamic balanced-size lower bound: branches whose best possible
    /// `min(|A|, |B|)` is strictly below the floor are skipped entirely.
    /// The top-k searcher raises it as its heap fills; `0` disables it.
    floor: Option<Rc<Cell<usize>>>,
}

impl<F: FnMut(&MaximalBiclique) -> ControlFlow<()>> Enumerator<'_, F> {
    fn out_of_time(&mut self) -> bool {
        if self.call_budget.is_exhausted() || self.budget.is_exhausted() {
            self.stopped = true;
        }
        self.stopped
    }

    /// Consensus expansion. Invariant: `left` is exactly the set of left
    /// vertices adjacent to all of `right`; `cand`/`excluded` partition the
    /// right vertices that can still shrink `left` without emptying it.
    /// Every pair in `excluded` has been tried before (any extension of
    /// `right` absorbing one would be a duplicate).
    fn expand(&mut self, left: &[u32], right: &[u32], cand: &[u32], excluded: &[u32]) {
        let mut cand = cand.to_vec();
        let mut excluded = excluded.to_vec();
        while let Some(&x) = cand.first() {
            if self.out_of_time() {
                return;
            }
            cand.remove(0);

            // Tentatively add x: the left side shrinks to its x-neighbours.
            let new_left = sorted_intersection(left, self.graph.neighbors_right(x));
            if new_left.is_empty() {
                excluded.insert(excluded.binary_search(&x).unwrap_err(), x);
                continue;
            }

            // Floor prune: everything below this node has left ⊆ new_left
            // and right ⊆ {x} ∪ right ∪ cand, so its balanced size is at
            // most this bound. Anything pruned here (and anything a later
            // excluded-set check suppresses on its behalf) is strictly
            // below the floor, which only ever rises.
            if let Some(floor) = &self.floor {
                let bound = new_left.len().min(right.len() + 1 + cand.len());
                if bound < floor.get() {
                    excluded.insert(excluded.binary_search(&x).unwrap_err(), x);
                    continue;
                }
            }

            // Maximality check against the excluded set: if some excluded
            // right vertex is adjacent to all of new_left, this biclique
            // (and everything below it) has already been reported from the
            // branch that included that vertex.
            let dominated = excluded
                .iter()
                .any(|&q| sorted_contains_all(self.graph.neighbors_right(q), &new_left));
            if dominated {
                excluded.insert(excluded.binary_search(&x).unwrap_err(), x);
                continue;
            }

            // Expand the right side with every remaining candidate fully
            // adjacent to new_left; the rest stay candidates.
            let mut new_right = right.to_vec();
            new_right.insert(new_right.binary_search(&x).unwrap_err(), x);
            let mut new_cand = Vec::with_capacity(cand.len());
            for &v in &cand {
                match sorted_overlap_with(self.graph.neighbors_right(v), &new_left) {
                    SortedOverlap::All => {
                        new_right.insert(new_right.binary_search(&v).unwrap_err(), v);
                    }
                    SortedOverlap::Partial => new_cand.push(v),
                    SortedOverlap::Disjoint => {}
                }
            }

            // (new_left, new_right) is maximal: right-maximal by the
            // expansion above plus the excluded-set check, left-maximal
            // because new_left already holds *all* common neighbours.
            self.visited += 1;
            if new_left.len() >= self.config.min_left && new_right.len() >= self.config.min_right {
                let found = MaximalBiclique {
                    left: new_left.clone(),
                    right: new_right.clone(),
                };
                self.reported += 1;
                if (self.visit)(&found) == ControlFlow::Break(())
                    || self
                        .config
                        .max_results
                        .is_some_and(|limit| self.reported >= limit)
                {
                    self.stopped = true;
                    return;
                }
            }

            let new_excluded: Vec<u32> = excluded
                .iter()
                .copied()
                .filter(|&q| sorted_intersects(self.graph.neighbors_right(q), &new_left))
                .collect();
            if !new_cand.is_empty() {
                self.expand(&new_left, &new_right, &new_cand, &new_excluded);
                if self.stopped {
                    return;
                }
            }

            excluded.insert(excluded.binary_search(&x).unwrap_err(), x);
        }
    }
}

/// Enumerates every maximal biclique of `graph` (both sides non-empty),
/// each exactly once, streaming them to `visit`. Return
/// [`ControlFlow::Break`] from the callback to stop early.
///
/// ```
/// use std::ops::ControlFlow;
/// use mbb_bigraph::graph::BipartiteGraph;
/// use mbb_core::enumerate::{enumerate_maximal_bicliques, EnumConfig};
///
/// // Two overlapping blocks: {0,1}×{0,1} and {1,2}×{1,2} minus (2,1).
/// let g = BipartiteGraph::from_edges(
///     3, 3,
///     [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 2)],
/// )?;
/// let mut found = Vec::new();
/// let outcome = enumerate_maximal_bicliques(&g, &EnumConfig::default(), |b| {
///     found.push((b.left.clone(), b.right.clone()));
///     ControlFlow::Continue(())
/// });
/// assert!(outcome.complete);
/// assert!(found.contains(&(vec![0, 1], vec![0, 1])));
/// assert!(found.contains(&(vec![1, 2], vec![2])));
/// # Ok::<(), mbb_bigraph::graph::GraphError>(())
/// ```
pub fn enumerate_maximal_bicliques<F>(
    graph: &BipartiteGraph,
    config: &EnumConfig,
    visit: F,
) -> EnumOutcome
where
    F: FnMut(&MaximalBiclique) -> ControlFlow<()>,
{
    enumerate_budgeted(graph, config, &SearchBudget::unlimited(), visit)
}

/// [`enumerate_maximal_bicliques`] under a session [`SearchBudget`]: the
/// enumeration additionally stops (incomplete) once the budget's deadline
/// passes or its cancel token fires. `EnumConfig::budget` still applies as
/// an independent per-call cap.
pub fn enumerate_budgeted<F>(
    graph: &BipartiteGraph,
    config: &EnumConfig,
    budget: &SearchBudget,
    visit: F,
) -> EnumOutcome
where
    F: FnMut(&MaximalBiclique) -> ControlFlow<()>,
{
    enumerate_with_floor(graph, config, budget, None, visit)
}

/// Enumeration with an optional dynamic balanced-size floor (used by the
/// top-k searcher, which raises the floor as its heap fills). With a
/// floor, branches that cannot reach `min(|A|, |B|) ≥ floor` are skipped,
/// so the stream is no longer the complete set of maximal bicliques — only
/// those at or above the floor are guaranteed to appear.
pub(crate) fn enumerate_with_floor<F>(
    graph: &BipartiteGraph,
    config: &EnumConfig,
    budget: &SearchBudget,
    floor: Option<Rc<Cell<usize>>>,
    visit: F,
) -> EnumOutcome
where
    F: FnMut(&MaximalBiclique) -> ControlFlow<()>,
{
    let call_budget = config
        .budget
        .map_or_else(SearchBudget::unlimited, SearchBudget::with_deadline);
    let mut enumerator = Enumerator {
        graph,
        config: *config,
        visit,
        reported: 0,
        visited: 0,
        stopped: false,
        call_budget,
        budget: budget.clone(),
        floor,
    };
    // Root: right side empty, left side = all non-isolated left vertices
    // (isolated ones can never survive an intersection and only slow the
    // root row down), all non-isolated right vertices candidates.
    let left_all: Vec<u32> = (0..graph.num_left() as u32)
        .filter(|&u| graph.degree_left(u) > 0)
        .collect();
    let cand: Vec<u32> = (0..graph.num_right() as u32)
        .filter(|&v| graph.degree_right(v) > 0)
        .collect();
    if !left_all.is_empty() && !cand.is_empty() {
        enumerator.expand(&left_all, &[], &cand, &[]);
    }
    EnumOutcome {
        reported: enumerator.reported,
        visited: enumerator.visited,
        complete: !enumerator.stopped,
    }
}

/// Collects all maximal bicliques into a vector. The boolean is `true`
/// when the enumeration ran to completion.
pub fn all_maximal_bicliques(
    graph: &BipartiteGraph,
    config: &EnumConfig,
) -> (Vec<MaximalBiclique>, bool) {
    let mut out = Vec::new();
    let outcome = enumerate_maximal_bicliques(graph, config, |b| {
        out.push(b.clone());
        ControlFlow::Continue(())
    });
    (out, outcome.complete)
}

/// Counts maximal bicliques (both sides non-empty) without storing them.
pub fn count_maximal_bicliques(graph: &BipartiteGraph) -> u64 {
    enumerate_maximal_bicliques(graph, &EnumConfig::default(), |_| ControlFlow::Continue(()))
        .reported
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;
    use std::collections::HashSet;

    /// Brute-force reference: every closed pair (A = Γ(B), B = Γ(A)) with
    /// both sides non-empty, found by closing every right subset.
    fn brute_force_maximal(graph: &BipartiteGraph) -> HashSet<(Vec<u32>, Vec<u32>)> {
        let nr = graph.num_right();
        assert!(nr <= 16);
        let mut out = HashSet::new();
        for mask in 1u32..(1 << nr) {
            let b: Vec<u32> = (0..nr as u32).filter(|v| mask >> v & 1 == 1).collect();
            let mut a: Option<Vec<u32>> = None;
            for &v in &b {
                let n = graph.neighbors_right(v);
                a = Some(match a {
                    None => n.to_vec(),
                    Some(c) => sorted_intersection(&c, n),
                });
            }
            let a = a.unwrap_or_default();
            if a.is_empty() {
                continue;
            }
            // Close the right side: all right vertices adjacent to all of a.
            let closed_b: Vec<u32> = (0..nr as u32)
                .filter(|&v| sorted_contains_all(graph.neighbors_right(v), &a))
                .collect();
            out.insert((a, closed_b));
        }
        out
    }

    fn enumerated_set(graph: &BipartiteGraph) -> Vec<(Vec<u32>, Vec<u32>)> {
        let (all, complete) = all_maximal_bicliques(graph, &EnumConfig::default());
        assert!(complete);
        all.into_iter().map(|b| (b.left, b.right)).collect()
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..25u64 {
            let g = generators::uniform_edges(8, 8, 28, seed);
            let got = enumerated_set(&g);
            let got_set: HashSet<_> = got.iter().cloned().collect();
            assert_eq!(got_set.len(), got.len(), "duplicates, seed {seed}");
            assert_eq!(got_set, brute_force_maximal(&g), "seed {seed}");
        }
    }

    #[test]
    fn every_result_is_maximal() {
        let g = generators::uniform_edges(10, 10, 45, 3);
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        for b in &all {
            assert!(b.is_maximal(&g), "{b:?}");
        }
    }

    #[test]
    fn complete_graph_has_one_maximal_biclique() {
        let g = generators::complete(4, 6);
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].left.len(), 4);
        assert_eq!(all[0].right.len(), 6);
        assert_eq!(all[0].balanced_size(), 4);
        assert_eq!(all[0].edge_count(), 24);
    }

    #[test]
    fn perfect_matching_has_one_per_edge() {
        let g = BipartiteGraph::from_edges(4, 4, (0..4).map(|i| (i, i))).unwrap();
        assert_eq!(count_maximal_bicliques(&g), 4);
    }

    #[test]
    fn crown_graph_counts() {
        // Complete 3×3 minus the perfect matching: maximal bicliques are
        // exactly {u} × (R \ {u}) and (L \ {v}) × {v}... actually each pair
        // ({i,j}, {k}) with k ∉ {i,j}: enumerate and cross-check brute force.
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = BipartiteGraph::from_edges(3, 3, edges).unwrap();
        let got: HashSet<_> = enumerated_set(&g).into_iter().collect();
        assert_eq!(got, brute_force_maximal(&g));
    }

    #[test]
    fn size_filters_apply() {
        let g = generators::uniform_edges(8, 8, 30, 11);
        let config = EnumConfig {
            min_left: 2,
            min_right: 2,
            ..EnumConfig::default()
        };
        let (filtered, complete) = all_maximal_bicliques(&g, &config);
        assert!(complete);
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        let expected = all
            .iter()
            .filter(|b| b.left.len() >= 2 && b.right.len() >= 2)
            .count();
        assert_eq!(filtered.len(), expected);
        assert!(filtered
            .iter()
            .all(|b| b.left.len() >= 2 && b.right.len() >= 2));
    }

    #[test]
    fn max_results_stops_early() {
        let g = generators::uniform_edges(10, 10, 50, 2);
        let total = count_maximal_bicliques(&g);
        assert!(total > 3);
        let config = EnumConfig {
            max_results: Some(3),
            ..EnumConfig::default()
        };
        let (some, complete) = all_maximal_bicliques(&g, &config);
        assert_eq!(some.len(), 3);
        assert!(!complete);
    }

    #[test]
    fn callback_break_stops_early() {
        let g = generators::uniform_edges(10, 10, 50, 2);
        let mut seen = 0u64;
        let outcome = enumerate_maximal_bicliques(&g, &EnumConfig::default(), |_| {
            seen += 1;
            if seen == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 2);
        assert!(!outcome.complete);
        assert_eq!(outcome.reported, 2);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(count_maximal_bicliques(&g), 0);
        let g = BipartiteGraph::from_edges(3, 3, []).unwrap();
        assert_eq!(count_maximal_bicliques(&g), 0);
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 1)]).unwrap();
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].left, vec![0]);
        assert_eq!(all[0].right, vec![1]);
    }

    #[test]
    fn star_graph() {
        // L0 adjacent to every right vertex: single maximal biclique.
        let g = BipartiteGraph::from_edges(1, 5, (0..5).map(|v| (0, v))).unwrap();
        let (all, _) = all_maximal_bicliques(&g, &EnumConfig::default());
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].right.len(), 5);
    }

    #[test]
    fn is_maximal_rejects_non_maximal() {
        let g = generators::complete(3, 3);
        let sub = MaximalBiclique {
            left: vec![0, 1],
            right: vec![0, 1, 2],
        };
        assert!(!sub.is_maximal(&g)); // vertex L2 extends it
        let full = MaximalBiclique {
            left: vec![0, 1, 2],
            right: vec![0, 1, 2],
        };
        assert!(full.is_maximal(&g));
    }

    #[test]
    fn is_maximal_rejects_incomplete() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0), (1, 1)]).unwrap();
        let not_biclique = MaximalBiclique {
            left: vec![0, 1],
            right: vec![0, 1],
        };
        assert!(!not_biclique.is_maximal(&g));
    }

    #[test]
    fn figure_1b_maximal_bicliques() {
        // The paper's sparse example (0-based): MBB is ({2,3},{2,3}) here;
        // ({2,3,4},{2,3}) is the maximal biclique containing it.
        let g = BipartiteGraph::from_edges(
            6,
            6,
            [
                (0, 0),
                (1, 0),
                (1, 1),
                (2, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
                (4, 2),
                (4, 3),
                (5, 4),
                (5, 5),
            ],
        )
        .unwrap();
        let got = enumerated_set(&g);
        assert!(got.contains(&(vec![2, 3, 4], vec![2, 3])));
        let best = got.iter().map(|(a, b)| a.len().min(b.len())).max().unwrap();
        assert_eq!(best, 2);
    }
}
