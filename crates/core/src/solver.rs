//! `hbvMBB` — Algorithm 4: the heuristic / bridge / verify framework for
//! large sparse bipartite graphs, with every ablation of Table 3 exposed
//! through [`SolverConfig`].

use std::time::Instant;

use mbb_obs as obs;

use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::order::{compute_order, SearchOrder};
use mbb_bigraph::subgraph::{project_order, InducedSubgraph};

use crate::biclique::Biclique;
use crate::bridge::{bridge_mbb_budgeted, BridgeConfig};
use crate::budget::SearchBudget;
use crate::dense::{dense_mbb_seeded, DenseConfig};
use crate::heuristic::{greedy_balanced, hmbb, map_to_parent, DEFAULT_SEEDS};
use crate::stats::{SolveStats, Stage};
use crate::verify::{verify_mbb_budgeted, ParallelMode, VerifyConfig};

/// Resolves a thread-count knob: `0` means "one worker per available
/// core" ([`std::thread::available_parallelism`]), anything else is taken
/// literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// A cached search order shared by an engine session: the rank of every
/// session-graph global id under the session's total order, plus the
/// session graph's bidegeneracy. The solver projects the rank onto the
/// Lemma 4-reduced residual instead of recomputing a peel order — vertex-
/// centred decomposition is correct under any total order, so this trades
/// nothing but the (re-)peeling cost.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionOrder<'a> {
    /// `rank[g]` = position of session global id `g` in the cached order.
    pub rank: &'a [u32],
    /// δ̈ of the session graph (0 unless the order is bidegeneracy).
    pub bidegeneracy: u32,
}

/// Configuration of the `hbvMBB` framework. The defaults are the paper's
/// full algorithm; each `bd*` constructor disables one ingredient for the
/// §6.3 breaking-down experiments.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Run the `hMBB` heuristic-and-reduce stage (off = `bd1`).
    pub use_heuristic_stage: bool,
    /// Use core/bicore machinery: Lemma 4 reductions, degeneracy pruning,
    /// Lemma 5 early termination (off = `bd2`; the order falls back to
    /// degree order since bidegeneracy is itself a bicore optimisation).
    pub use_core_optimizations: bool,
    /// Use the §4 branching technique (polynomial case + triviality-last
    /// branching) in verification (off = `bd3`).
    pub use_dense_branching: bool,
    /// Total search order for the vertex-centred decomposition
    /// (`bd4` = degree, `bd5` = degeneracy, default bidegeneracy).
    pub order: SearchOrder,
    /// Seeds for the global and local greedy heuristics.
    pub heuristic_seeds: usize,
    /// Worker threads for the parallel stages (bridging's per-centre
    /// generation loop and the verification search): `1` = the paper's
    /// sequential algorithm, `0` = one worker per available core (see
    /// [`resolve_threads`]).
    pub threads: usize,
    /// How verification spends those threads — across vertex-centred
    /// subgraphs, inside each subgraph's branch-and-bound, or (the
    /// default, [`ParallelMode::Auto`]) picked per solve from the bridge
    /// skew statistics. Irrelevant when `threads` resolves to 1. See
    /// [`ParallelMode`] for the trade-off.
    pub parallel_mode: ParallelMode,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            use_heuristic_stage: true,
            use_core_optimizations: true,
            use_dense_branching: true,
            order: SearchOrder::Bidegeneracy,
            heuristic_seeds: DEFAULT_SEEDS,
            threads: 1,
            parallel_mode: ParallelMode::Auto,
        }
    }
}

impl SolverConfig {
    /// `bd1`: framework without step 1 (no global heuristic/reduction).
    pub fn bd1() -> Self {
        SolverConfig {
            use_heuristic_stage: false,
            ..Default::default()
        }
    }

    /// `bd2`: without core and bicore based optimisations.
    pub fn bd2() -> Self {
        SolverConfig {
            use_core_optimizations: false,
            order: SearchOrder::Degree,
            ..Default::default()
        }
    }

    /// `bd3`: without the §4 branching technique.
    pub fn bd3() -> Self {
        SolverConfig {
            use_dense_branching: false,
            ..Default::default()
        }
    }

    /// `bd4`: degree order instead of bidegeneracy order.
    pub fn bd4() -> Self {
        SolverConfig {
            order: SearchOrder::Degree,
            ..Default::default()
        }
    }

    /// `bd5`: degeneracy order instead of bidegeneracy order.
    pub fn bd5() -> Self {
        SolverConfig {
            order: SearchOrder::Degeneracy,
            ..Default::default()
        }
    }
}

/// Result of a solve: the optimum balanced biclique plus instrumentation.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The maximum balanced biclique, in input-graph ids.
    pub biclique: Biclique,
    /// Statistics (stage, heuristic gaps, search depths, …).
    pub stats: SolveStats,
}

/// The `hbvMBB` solver.
#[derive(Debug, Clone, Default)]
pub struct MbbSolver {
    /// Configuration used by [`solve`](Self::solve).
    pub config: SolverConfig,
}

impl MbbSolver {
    /// A solver with the paper's default configuration.
    pub fn new() -> MbbSolver {
        MbbSolver::default()
    }

    /// A solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> MbbSolver {
        MbbSolver { config }
    }

    /// Finds a maximum balanced biclique of `graph` (Algorithm 4).
    ///
    /// ```
    /// use mbb_core::MbbSolver;
    /// let g = mbb_bigraph::generators::uniform_edges(50, 50, 300, 7);
    /// let result = MbbSolver::new().solve(&g);
    /// assert!(result.biclique.is_valid(&g));
    /// assert_eq!(result.stats.optimum_half, result.biclique.half_size());
    /// ```
    pub fn solve(&self, graph: &BipartiteGraph) -> SolveResult {
        self.solve_with_incumbent(graph, Biclique::empty())
    }

    /// Like [`solve`](Self::solve), but warm-started with a known balanced
    /// biclique of `graph` (for instance the optimum of a previous version
    /// of the graph that is still valid — the incremental use case). The
    /// incumbent seeds every pruning bound, so re-solving after small
    /// changes is much cheaper than solving cold.
    ///
    /// # Panics
    ///
    /// Panics when `incumbent` is not a valid balanced biclique of
    /// `graph`.
    pub fn solve_with_incumbent(&self, graph: &BipartiteGraph, incumbent: Biclique) -> SolveResult {
        self.solve_session(graph, incumbent, &SearchBudget::unlimited(), None)
    }

    /// The full-control entry point behind the engine: warm start,
    /// [`SearchBudget`] (deadline / cancellation, checked at stage
    /// boundaries, per bridged centre and per `denseMBB` node), and an
    /// optional cached session order. With an unlimited budget and no
    /// session this is exactly [`solve_with_incumbent`](Self::solve_with_incumbent).
    pub(crate) fn solve_session(
        &self,
        graph: &BipartiteGraph,
        incumbent: Biclique,
        budget: &SearchBudget,
        session: Option<SessionOrder<'_>>,
    ) -> SolveResult {
        assert!(
            incumbent.is_empty() || incumbent.is_valid(graph),
            "warm-start incumbent must be a balanced biclique of the graph"
        );
        let config = self.config;
        let mut stats = SolveStats::default();

        // ---- Step 1: heuristic + reduction (Algorithm 5). ----
        // mbb-lint: allow(hot-clock) per-stage timing, taken once per solve outside the search loops
        let stage1_start = Instant::now();
        let (mut best, reduced) = if config.use_heuristic_stage {
            let outcome = hmbb(graph, config.heuristic_seeds, config.use_core_optimizations);
            stats.degeneracy = outcome.degeneracy;
            if outcome.proven_optimal
                && config.use_core_optimizations
                && outcome.best.half_size() >= incumbent.half_size()
            {
                stats.stage = Stage::S1;
                stats.heuristic_global_half = outcome.best.half_size();
                stats.heuristic_local_half = outcome.best.half_size();
                stats.optimum_half = outcome.best.half_size();
                // mbb-lint: allow(hot-clock) stage-boundary timestamp, shared by stats and the obs span
                let stage1_end = Instant::now();
                stats.stage_seconds[0] = (stage1_end - stage1_start).as_secs_f64();
                obs::record(obs::Stage::SolveHeuristic, stage1_start, stage1_end);
                return SolveResult {
                    biclique: outcome.best,
                    stats,
                };
            }
            let best = if incumbent.half_size() > outcome.best.half_size() {
                incumbent
            } else {
                outcome.best
            };
            (best, outcome.reduced)
        } else {
            (incumbent, InducedSubgraph::identity(graph))
        };
        stats.heuristic_global_half = best.half_size();
        // mbb-lint: allow(hot-clock) stage-boundary timestamp, shared by stats and the obs span
        let stage1_end = Instant::now();
        stats.stage_seconds[0] = (stage1_end - stage1_start).as_secs_f64();
        obs::record(obs::Stage::SolveHeuristic, stage1_start, stage1_end);

        // An empty reduced graph means the incumbent is optimal; an
        // exhausted budget means stage 1's best is all we may report.
        if reduced.graph.num_left() == 0 || reduced.graph.num_right() == 0 || budget.probe() {
            stats.stage = Stage::S1;
            stats.heuristic_local_half = best.half_size();
            stats.optimum_half = best.half_size();
            return SolveResult {
                biclique: best,
                stats,
            };
        }

        // ---- Step 2: bridge to maximality (Algorithms 6 and 7). ----
        // mbb-lint: allow(hot-clock) per-stage timing, taken once per solve outside the search loops
        let stage2_start = Instant::now();
        let order = match session {
            // Session path: restrict the cached full-graph order to the
            // residual instead of re-peeling it.
            Some(shared) => project_order(shared.rank, graph.num_left(), &reduced),
            None => compute_order(&reduced.graph, config.order),
        };
        if config.order == SearchOrder::Bidegeneracy {
            stats.bidegeneracy = match session {
                // The session δ̈ bounds the residual's δ̈ from above.
                Some(shared) => shared.bidegeneracy,
                None => bicore_decomposition(&reduced.graph).bidegeneracy,
            };
        }
        // Translate the incumbent into reduced-graph ids for local pruning;
        // its vertices may have been reduced away, but only its *size*
        // matters for pruning, so a placeholder of equal size suffices.
        let incumbent_local = Biclique {
            left: vec![u32::MAX; best.half_size()],
            right: vec![u32::MAX; best.half_size()],
        };
        let bridged = bridge_mbb_budgeted(
            &reduced.graph,
            &order,
            incumbent_local,
            BridgeConfig {
                use_core_pruning: config.use_core_optimizations,
                heuristic_seeds: config.heuristic_seeds.min(4),
                threads: config.threads,
            },
            budget,
        );
        stats.subgraphs_generated = bridged.stats.generated;
        stats.avg_subgraph_density = bridged.stats.average_density();
        stats.avg_subgraph_size = bridged.stats.average_size();
        stats.max_subgraph_size = bridged.stats.max_size;
        if bridged.best.half_size() > best.half_size() {
            best = map_to_parent(&bridged.best, &reduced);
        }
        stats.heuristic_local_half = best.half_size();
        stats.subgraphs_verified = bridged.survivors.len();
        // mbb-lint: allow(hot-clock) stage-boundary timestamp, shared by stats and the obs span
        let stage2_end = Instant::now();
        stats.stage_seconds[1] = (stage2_end - stage2_start).as_secs_f64();
        obs::record(obs::Stage::SolveBridge, stage2_start, stage2_end);

        if bridged.survivors.is_empty() || budget.probe() {
            stats.stage = Stage::S2;
            stats.optimum_half = best.half_size();
            return SolveResult {
                biclique: best,
                stats,
            };
        }

        // ---- Step 3: maximality verification (Algorithm 8). ----
        // mbb-lint: allow(hot-clock) per-stage timing, taken once per solve outside the search loops
        let stage3_start = Instant::now();
        let dense_config = DenseConfig {
            use_polynomial_case: config.use_dense_branching,
            branch_max_missing: config.use_dense_branching,
            use_reductions: true,
        };
        let incumbent_local = Biclique {
            left: vec![u32::MAX; best.half_size()],
            right: vec![u32::MAX; best.half_size()],
        };
        let (verified, search_stats) = verify_mbb_budgeted(
            &reduced.graph,
            &bridged.survivors,
            incumbent_local,
            VerifyConfig {
                use_core_reduction: config.use_core_optimizations,
                dense: dense_config,
                threads: config.threads,
                mode: config.parallel_mode,
            },
            budget,
        );
        stats.search = search_stats;
        if verified.half_size() > best.half_size() {
            best = map_to_parent(&verified, &reduced);
        }
        stats.stage = Stage::S3;
        stats.optimum_half = best.half_size();
        // mbb-lint: allow(hot-clock) stage-boundary timestamp, shared by stats and the obs span
        let stage3_end = Instant::now();
        stats.stage_seconds[2] = (stage3_end - stage3_start).as_secs_f64();
        obs::record(obs::Stage::SolveVerify, stage3_start, stage3_end);
        SolveResult {
            biclique: best,
            stats,
        }
    }
}

/// Convenience wrapper: solve with the default configuration.
///
/// Deprecated one-shot form; prefer
/// [`MbbEngine::solve`](crate::engine::MbbEngine::solve), which caches the
/// expensive per-graph indices for every follow-up query.
#[deprecated(
    since = "0.2.0",
    note = "use MbbEngine::solve / engine.query().solve() instead"
)]
pub fn solve_mbb(graph: &BipartiteGraph) -> Biclique {
    // Equivalent to a one-shot engine's solve(), minus the graph clone
    // and session bookkeeping legacy callers never asked for.
    MbbSolver::new().solve(graph).biclique
}

impl MbbSolver {
    /// Solves component-by-component: a biclique with both sides
    /// non-empty is connected, so the global optimum is the best
    /// per-component optimum. Components already smaller than the best
    /// half found so far are skipped outright, which makes graphs with a
    /// giant component plus many small ones cheaper than one monolithic
    /// solve. Statistics are merged across the solved components.
    pub fn solve_componentwise(&self, graph: &BipartiteGraph) -> SolveResult {
        let mut components = mbb_bigraph::components::split_components(graph);
        // Biggest first: a large early incumbent prunes the rest.
        components.sort_by_key(|c| std::cmp::Reverse(c.graph.num_edges()));
        let mut best = Biclique::empty();
        let mut stats = SolveStats::default();
        for component in &components {
            let cap = component.graph.num_left().min(component.graph.num_right());
            if cap <= best.half_size() {
                continue; // cannot beat the incumbent
            }
            let result = self.solve(&component.graph);
            stats.search.merge(&result.stats.search);
            stats.subgraphs_generated += result.stats.subgraphs_generated;
            stats.subgraphs_verified += result.stats.subgraphs_verified;
            stats.stage = result.stats.stage;
            stats.degeneracy = stats.degeneracy.max(result.stats.degeneracy);
            stats.bidegeneracy = stats.bidegeneracy.max(result.stats.bidegeneracy);
            if result.biclique.half_size() > best.half_size() {
                best = map_to_parent(&result.biclique, component);
            }
        }
        stats.optimum_half = best.half_size();
        stats.heuristic_global_half = stats.heuristic_global_half.min(best.half_size());
        SolveResult {
            biclique: best,
            stats,
        }
    }
}

/// Runs `denseMBB` (Algorithm 3) directly on a whole graph — the §6.1 dense
/// workload entry point. A degree-greedy warm start seeds the bound.
pub fn dense_mbb_graph(graph: &BipartiteGraph) -> SolveResult {
    // mbb-lint: allow(hot-clock) whole-call timing, taken once per solve outside the search loops
    let start = Instant::now();
    let mut stats = SolveStats::default();
    let score: Vec<u64> = graph.vertices().map(|v| graph.degree(v) as u64).collect();
    let warm = greedy_balanced(graph, &score, 16);
    stats.heuristic_global_half = warm.half_size();

    let local = LocalGraph::induced(
        graph,
        &(0..graph.num_left() as u32).collect::<Vec<_>>(),
        &(0..graph.num_right() as u32).collect::<Vec<_>>(),
    );
    let (found, search_stats) = dense_mbb_seeded(
        &local,
        Vec::new(),
        Vec::new(),
        mbb_bigraph::bitset::BitSet::full(local.num_left()),
        mbb_bigraph::bitset::BitSet::full(local.num_right()),
        warm.half_size(),
        DenseConfig::default(),
    );
    stats.search = search_stats;
    let best = if found.half() > warm.half_size() {
        Biclique::balanced(found.left, found.right)
    } else {
        warm
    };
    stats.optimum_half = best.half_size();
    stats.stage = Stage::S3;
    stats.stage_seconds[2] = start.elapsed().as_secs_f64();
    SolveResult {
        biclique: best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    use crate::testutil::brute_force_half_graph as brute_half;

    #[test]
    fn default_solver_is_exact() {
        for seed in 0..20u64 {
            let g = generators::uniform_edges(12, 12, 60, seed);
            let result = MbbSolver::new().solve(&g);
            assert_eq!(result.biclique.half_size(), brute_half(&g), "seed {seed}");
            assert!(result.biclique.is_valid(&g), "seed {seed}");
            assert_eq!(result.stats.optimum_half, result.biclique.half_size());
        }
    }

    #[test]
    fn all_ablations_are_exact() {
        let configs = [
            SolverConfig::bd1(),
            SolverConfig::bd2(),
            SolverConfig::bd3(),
            SolverConfig::bd4(),
            SolverConfig::bd5(),
        ];
        for seed in 0..6u64 {
            let g = generators::uniform_edges(11, 11, 55, seed);
            let expected = brute_half(&g);
            for (i, config) in configs.iter().enumerate() {
                let result = MbbSolver::with_config(*config).solve(&g);
                assert_eq!(
                    result.biclique.half_size(),
                    expected,
                    "bd{} seed {seed}",
                    i + 1
                );
                assert!(result.biclique.is_valid(&g));
            }
        }
    }

    #[test]
    fn dense_entry_point_is_exact() {
        for seed in 0..10u64 {
            let g = generators::dense_uniform(10, 10, 0.8, seed);
            let result = dense_mbb_graph(&g);
            assert_eq!(result.biclique.half_size(), brute_half(&g), "seed {seed}");
            assert!(result.biclique.is_valid(&g));
        }
    }

    #[test]
    fn solver_finds_planted_optimum() {
        let g = generators::chung_lu_bipartite(
            &generators::ChungLuParams {
                num_left: 500,
                num_right: 400,
                num_edges: 2000,
                left_exponent: 0.7,
                right_exponent: 0.7,
            },
            17,
        );
        let (planted, _, _) = generators::plant_balanced_biclique(&g, 7);
        let result = MbbSolver::new().solve(&planted);
        assert!(result.biclique.half_size() >= 7);
        assert!(result.biclique.is_valid(&planted));
    }

    #[test]
    fn empty_graph_solves_to_empty() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let result = MbbSolver::new().solve(&g);
        assert_eq!(result.biclique.half_size(), 0);
    }

    #[test]
    fn edgeless_graph_solves_to_empty() {
        let g = BipartiteGraph::from_edges(5, 5, []).unwrap();
        let result = MbbSolver::new().solve(&g);
        assert_eq!(result.biclique.half_size(), 0);
    }

    #[test]
    fn complete_graph_early_terminates() {
        let g = generators::complete(6, 6);
        let result = MbbSolver::new().solve(&g);
        assert_eq!(result.biclique.half_size(), 6);
        // δ(K6,6) = 6 = half: Lemma 5 fires in stage 1 as soon as the
        // greedy finds the full biclique.
        assert_eq!(result.stats.stage, Stage::S1);
    }

    #[test]
    fn parallel_verification_matches() {
        for seed in 0..5u64 {
            let g = generators::uniform_edges(14, 14, 95, seed);
            let sequential = MbbSolver::new().solve(&g);
            let parallel = MbbSolver::with_config(SolverConfig {
                threads: 4,
                ..Default::default()
            })
            .solve(&g);
            assert_eq!(
                sequential.biclique.half_size(),
                parallel.biclique.half_size(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn componentwise_matches_monolithic() {
        for seed in 0..12u64 {
            // Sparse enough to fragment into several components.
            let g = generators::uniform_edges(14, 14, 16, seed);
            let whole = MbbSolver::new().solve(&g);
            let parts = MbbSolver::new().solve_componentwise(&g);
            assert_eq!(
                parts.biclique.half_size(),
                whole.biclique.half_size(),
                "seed {seed}"
            );
            assert!(parts.biclique.is_empty() || parts.biclique.is_valid(&g));
        }
    }

    #[test]
    fn componentwise_on_disjoint_blocks() {
        // 2×2 and 3×3 blocks: the answer is the bigger block.
        let mut edges = Vec::new();
        for u in 0..2u32 {
            for v in 0..2u32 {
                edges.push((u, v));
            }
        }
        for u in 2..5u32 {
            for v in 2..5u32 {
                edges.push((u, v));
            }
        }
        let g = BipartiteGraph::from_edges(5, 5, edges).unwrap();
        let result = MbbSolver::new().solve_componentwise(&g);
        assert_eq!(result.biclique.half_size(), 3);
        assert!(result.biclique.left.iter().all(|&u| u >= 2));
    }

    #[test]
    fn componentwise_on_empty_graph() {
        let g = BipartiteGraph::from_edges(4, 4, []).unwrap();
        let result = MbbSolver::new().solve_componentwise(&g);
        assert_eq!(result.biclique.half_size(), 0);
    }

    #[test]
    fn warm_start_with_optimum_still_returns_optimum() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(12, 12, 60, seed ^ 0x31);
            let cold = MbbSolver::new().solve(&g);
            let warm = MbbSolver::new().solve_with_incumbent(&g, cold.biclique.clone());
            assert_eq!(warm.biclique.half_size(), cold.biclique.half_size());
            assert!(warm.biclique.is_valid(&g));
        }
    }

    #[test]
    fn warm_start_with_suboptimal_incumbent_improves() {
        let g = generators::complete(4, 4);
        let incumbent = Biclique::balanced(vec![0], vec![0]);
        let result = MbbSolver::new().solve_with_incumbent(&g, incumbent);
        assert_eq!(result.biclique.half_size(), 4);
    }

    #[test]
    #[should_panic(expected = "warm-start incumbent")]
    fn warm_start_rejects_invalid_incumbent() {
        let g = BipartiteGraph::from_edges(2, 2, [(0, 0)]).unwrap();
        let bogus = Biclique::balanced(vec![0, 1], vec![0, 1]);
        let _ = MbbSolver::new().solve_with_incumbent(&g, bogus);
    }

    #[test]
    fn warm_start_without_heuristic_stage() {
        for seed in 0..6u64 {
            let g = generators::uniform_edges(10, 10, 45, seed ^ 0x91);
            let cold = MbbSolver::with_config(SolverConfig::bd1()).solve(&g);
            let warm = MbbSolver::with_config(SolverConfig::bd1())
                .solve_with_incumbent(&g, cold.biclique.clone());
            assert_eq!(warm.biclique.half_size(), cold.biclique.half_size());
        }
    }

    #[test]
    fn stage_statistics_are_populated() {
        let g = generators::uniform_edges(20, 20, 140, 3);
        let result = MbbSolver::new().solve(&g);
        assert!(result.stats.stage_seconds[0] >= 0.0);
        if result.stats.stage == Stage::S3 {
            assert!(result.stats.subgraphs_generated > 0);
        }
    }
}
