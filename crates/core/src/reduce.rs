//! Candidate-set reductions — Lemmas 1 and 2 of the paper (§4.2).
//!
//! * **All-connection rule (Lemma 1)**: a candidate adjacent to *every*
//!   candidate on the other side can be moved into the partial result —
//!   any solution not containing it extends to one containing it, and
//!   `min(|A|, |B|)` never decreases.
//! * **Low-degree rule (Lemma 2)**: a candidate whose candidate-degree
//!   cannot lift its own side past the incumbent half-size can be dropped.
//!   We use the strict-improvement form: `u ∈ CA` is dropped when
//!   `|B| + deg(u, CB) ≤ best_half`, since only strictly larger balanced
//!   bicliques matter (the incumbent itself is already recorded).
//!
//! The rules are applied to fixpoint; each pass is `O((|CA| + |CB|) · n/64)`
//! bitset work.

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::local::LocalGraph;

use crate::stats::SearchStats;

/// Applies Lemmas 1 and 2 to fixpoint, mutating the partial result and the
/// candidate sets in place.
///
/// Invariants expected and preserved: every `u ∈ CA` is adjacent to all of
/// `B`, every `v ∈ CB` to all of `A`.
pub fn reduce_candidates(
    graph: &LocalGraph,
    a: &mut Vec<u32>,
    b: &mut Vec<u32>,
    ca: &mut BitSet,
    cb: &mut BitSet,
    best_half: usize,
    stats: &mut SearchStats,
) {
    loop {
        let mut changed = false;

        // Left side: drop low-degree candidates, promote all-connected ones.
        let cb_len = cb.len();
        for u in ca.to_vec() {
            let degree = graph.left_degree_in(u, cb);
            if b.len() + degree <= best_half {
                ca.remove(u as usize);
                stats.reduced_vertices += 1;
                changed = true;
            } else if degree == cb_len {
                // Adjacent to all of CB (and to all of B by invariant).
                ca.remove(u as usize);
                a.push(u);
                changed = true;
            }
        }

        let ca_len = ca.len();
        for v in cb.to_vec() {
            let degree = graph.right_degree_in(v, ca);
            if a.len() + degree <= best_half {
                cb.remove(v as usize);
                stats.reduced_vertices += 1;
                changed = true;
            } else if degree == ca_len {
                cb.remove(v as usize);
                b.push(v);
                changed = true;
            }
        }

        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(nl: usize, nr: usize) -> LocalGraph {
        let mut g = LocalGraph::new(nl, nr);
        for u in 0..nl as u32 {
            for v in 0..nr as u32 {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn all_connection_promotes_complete_graph() {
        let g = complete(3, 3);
        let mut a = vec![];
        let mut b = vec![];
        let mut ca = BitSet::full(3);
        let mut cb = BitSet::full(3);
        let mut stats = SearchStats::default();
        reduce_candidates(&g, &mut a, &mut b, &mut ca, &mut cb, 0, &mut stats);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        assert!(ca.is_empty());
        assert!(cb.is_empty());
    }

    #[test]
    fn low_degree_rule_removes_hopeless_candidates() {
        // L0 sees both rights, L1 sees only R0. With best_half = 1 and
        // empty (A, B), L1 needs |B| + deg = 0 + 1 ≤ 1 → dropped.
        let g = LocalGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0)]);
        let mut a = vec![];
        let mut b = vec![];
        let mut ca = BitSet::full(2);
        let mut cb = BitSet::full(2);
        let mut stats = SearchStats::default();
        reduce_candidates(&g, &mut a, &mut b, &mut ca, &mut cb, 1, &mut stats);
        assert!(!ca.contains(1), "L1 should be dropped");
        assert!(stats.reduced_vertices >= 1);
    }

    #[test]
    fn reduction_cascades_to_fixpoint() {
        // Path L0-R0-L1-R1: with best_half = 1 everything unravels, since
        // every vertex has candidate-degree ≤ ... after drops cascade.
        let g = LocalGraph::from_edges(2, 2, [(0, 0), (1, 0), (1, 1)]);
        let mut a = vec![];
        let mut b = vec![];
        let mut ca = BitSet::full(2);
        let mut cb = BitSet::full(2);
        let mut stats = SearchStats::default();
        reduce_candidates(&g, &mut a, &mut b, &mut ca, &mut cb, 1, &mut stats);
        // L0 (degree 1 ≤ best_half) is dropped; L1 connects to all of CB
        // and is promoted into A; both rights then fall below the degree
        // threshold and are dropped.
        assert!(ca.is_empty());
        assert!(cb.is_empty());
        assert_eq!(a, vec![1]);
        assert!(b.is_empty());
    }

    #[test]
    fn no_changes_when_rules_do_not_fire() {
        // 4-cycle: every candidate has degree 1 within... actually C4 as
        // bipartite graph: L0-R0, L0-R1, L1-R0, L1-R1 minus two edges.
        let g = LocalGraph::from_edges(2, 2, [(0, 0), (0, 1), (1, 0)]);
        let mut a = vec![];
        let mut b = vec![];
        let mut ca = BitSet::full(2);
        let mut cb = BitSet::full(2);
        let mut stats = SearchStats::default();
        // best_half = 0: low-degree rule fires only for degree-0 vertices.
        reduce_candidates(&g, &mut a, &mut b, &mut ca, &mut cb, 0, &mut stats);
        // L0 is adjacent to all of CB → promoted; then R0 adjacent to all
        // of remaining CA = {1} → promoted; L1 adjacent to remaining CB
        // {1}? L1-R1 missing → not promoted and degree 1 > 0 keeps it...
        // the cascade continues until fixpoint; just assert invariants.
        let total = a.len() + ca.len();
        assert!(total >= 1);
        for &u in &a {
            for &v in &b {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn promoted_vertices_keep_invariant() {
        // Every vertex in CA must stay adjacent to all of B after moves.
        let g = complete(4, 2);
        let mut a = vec![];
        let mut b = vec![];
        let mut ca = BitSet::full(4);
        let mut cb = BitSet::full(2);
        let mut stats = SearchStats::default();
        reduce_candidates(&g, &mut a, &mut b, &mut ca, &mut cb, 0, &mut stats);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2);
        assert!(g.is_biclique(&a, &b));
    }
}
