//! Vertex-weighted maximum balanced biclique (an extension beyond the
//! paper).
//!
//! Every vertex carries a non-negative weight and the objective becomes
//! the total weight of `A ∪ B` subject to `|A| = |B|` and completeness.
//! With unit weights this is exactly the MBB problem; with non-uniform
//! weights it models prioritised defect-tolerance (cells with different
//! yields) and scored biclustering (genes with differential expression
//! strength).
//!
//! The solver is a branch-and-bound over a [`LocalGraph`]: at every node
//! the best *balanced sub-selection* of the current biclique is scored
//! (take the `min(|A|, |B|)` heaviest vertices of each side — optimal
//! because weights are non-negative), and branches are pruned with an
//! edge-blind relaxation (the heaviest reachable balanced selection if
//! every remaining candidate were compatible). Exact, intended for the
//! same graph sizes as `denseMBB` (whole dense inputs or vertex-centred
//! subgraphs, up to a few hundred vertices per side).

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::local::LocalGraph;

use crate::biclique::Biclique;
use crate::budget::SearchBudget;
use crate::stats::SearchStats;

/// Result of a weighted search: the witness and its total weight. Indices
/// are in the ids of the graph the search ran on (local indices for
/// [`weighted_mbb_local`], original side ids for the graph-level entry
/// points — which induce the identity local graph, so the two coincide
/// there).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightedBiclique {
    /// Left vertex indices, sorted.
    pub left: Vec<u32>,
    /// Right vertex indices, sorted; same length as `left`.
    pub right: Vec<u32>,
    /// `Σ w(v)` over both sides.
    pub weight: u64,
}

/// Exact weighted MBB over a local graph. `left_weights` / `right_weights`
/// must match the side sizes.
///
/// ```
/// use mbb_bigraph::local::LocalGraph;
/// use mbb_core::weighted::weighted_mbb_local;
///
/// // Two disjoint edges: (0,0) weighs 1+1, (1,1) weighs 10+10.
/// let g = LocalGraph::from_edges(2, 2, [(0, 0), (1, 1)]);
/// let (best, _) = weighted_mbb_local(&g, &[1, 10], &[1, 10]);
/// assert_eq!(best.weight, 20);
/// assert_eq!(best.left, vec![1]);
/// ```
pub fn weighted_mbb_local(
    graph: &LocalGraph,
    left_weights: &[u64],
    right_weights: &[u64],
) -> (WeightedBiclique, SearchStats) {
    weighted_mbb_local_budgeted(
        graph,
        left_weights,
        right_weights,
        &SearchBudget::unlimited(),
    )
}

/// [`weighted_mbb_local`] under a [`SearchBudget`]: returns the heaviest
/// balanced biclique found before the budget expired.
pub fn weighted_mbb_local_budgeted(
    graph: &LocalGraph,
    left_weights: &[u64],
    right_weights: &[u64],
    budget: &SearchBudget,
) -> (WeightedBiclique, SearchStats) {
    assert_eq!(left_weights.len(), graph.num_left(), "left weight count");
    assert_eq!(right_weights.len(), graph.num_right(), "right weight count");
    let mut searcher = WeightedSearcher {
        graph,
        left_weights,
        right_weights,
        best: WeightedBiclique::default(),
        stats: SearchStats::default(),
        budget: budget.clone(),
    };
    searcher.recurse(
        &mut Vec::new(),
        &mut Vec::new(),
        BitSet::full(graph.num_left()),
        BitSet::full(graph.num_right()),
        0,
    );
    let stats = searcher.stats;
    (searcher.best, stats)
}

/// Weighted MBB over a whole [`BipartiteGraph`]. Weights are indexed by
/// global id (`graph.global_id`): left vertices first, then right.
///
/// Deprecated: the anonymous `(Biclique, u64)` tuple loses the search
/// statistics and conflates the witness with its score. Prefer
/// [`MbbEngine::weighted`](crate::engine::MbbEngine::weighted), which
/// returns a typed [`WeightedBiclique`].
#[deprecated(
    since = "0.2.0",
    note = "use MbbEngine::weighted / engine.query().weighted(&w); it returns a typed WeightedBiclique"
)]
pub fn weighted_mbb(graph: &BipartiteGraph, weights: &[u64]) -> (Biclique, u64) {
    // Equivalent to a one-shot engine's weighted(), minus the graph clone.
    let (found, _) = weighted_mbb_budgeted(graph, weights, &SearchBudget::unlimited());
    (Biclique::balanced(found.left, found.right), found.weight)
}

/// The graph-level weighted search behind
/// [`MbbEngine::weighted`](crate::engine::MbbEngine::weighted). Weights
/// are indexed by global id (left vertices first, then right); the
/// returned [`WeightedBiclique`] is in original side ids. Materialises
/// the full adjacency as a bitset local graph, so intended for graphs up
/// to a few thousand vertices per side.
pub fn weighted_mbb_budgeted(
    graph: &BipartiteGraph,
    weights: &[u64],
    budget: &SearchBudget,
) -> (WeightedBiclique, SearchStats) {
    assert_eq!(weights.len(), graph.num_vertices(), "one weight per vertex");
    let left_ids: Vec<u32> = (0..graph.num_left() as u32).collect();
    let right_ids: Vec<u32> = (0..graph.num_right() as u32).collect();
    let local = LocalGraph::induced(graph, &left_ids, &right_ids);
    let (lw, rw) = weights.split_at(graph.num_left());
    weighted_mbb_local_budgeted(&local, lw, rw, budget)
}

struct WeightedSearcher<'g> {
    graph: &'g LocalGraph,
    left_weights: &'g [u64],
    right_weights: &'g [u64],
    best: WeightedBiclique,
    stats: SearchStats,
    budget: SearchBudget,
}

impl WeightedSearcher<'_> {
    /// Best balanced selection from fixed sides `a`, `b`: the k heaviest
    /// of each where `k = min(|a|, |b|)` — optimal for weights ≥ 0.
    fn record(&mut self, a: &[u32], b: &[u32]) {
        let k = a.len().min(b.len());
        if k == 0 {
            return;
        }
        let mut left: Vec<u32> = a.to_vec();
        let mut right: Vec<u32> = b.to_vec();
        left.sort_by_key(|&u| std::cmp::Reverse(self.left_weights[u as usize]));
        right.sort_by_key(|&v| std::cmp::Reverse(self.right_weights[v as usize]));
        left.truncate(k);
        right.truncate(k);
        let weight = left
            .iter()
            .map(|&u| self.left_weights[u as usize])
            .chain(right.iter().map(|&v| self.right_weights[v as usize]))
            .fold(0u64, u64::saturating_add);
        if weight > self.best.weight {
            left.sort_unstable();
            right.sort_unstable();
            self.best = WeightedBiclique {
                left,
                right,
                weight,
            };
        }
    }

    /// Edge-blind bound: the heaviest balanced selection from
    /// `(a ∪ ca, b ∪ cb)` assuming full compatibility.
    fn upper_bound(&self, a: &[u32], b: &[u32], ca: &BitSet, cb: &BitSet) -> u64 {
        let mut lw: Vec<u64> = a
            .iter()
            .map(|&u| self.left_weights[u as usize])
            .chain(ca.iter().map(|u| self.left_weights[u]))
            .collect();
        let mut rw: Vec<u64> = b
            .iter()
            .map(|&v| self.right_weights[v as usize])
            .chain(cb.iter().map(|v| self.right_weights[v]))
            .collect();
        let k = lw.len().min(rw.len());
        lw.sort_unstable_by_key(|&w| std::cmp::Reverse(w));
        rw.sort_unstable_by_key(|&w| std::cmp::Reverse(w));
        lw[..k]
            .iter()
            .chain(rw[..k].iter())
            .fold(0u64, |acc, &w| acc.saturating_add(w))
    }

    fn recurse(
        &mut self,
        a: &mut Vec<u32>,
        b: &mut Vec<u32>,
        mut ca: BitSet,
        mut cb: BitSet,
        mut depth: u64,
    ) {
        loop {
            self.stats.nodes += 1;
            self.stats.max_depth = self.stats.max_depth.max(depth);
            if self.budget.is_exhausted() {
                return;
            }
            self.record(a, b);

            if self.upper_bound(a, b, &ca, &cb) <= self.best.weight {
                self.stats.bound_prunes += 1;
                return;
            }

            // Branch on the heaviest candidate (most likely to appear in a
            // heavy solution, tightening the bound early). Prefer the side
            // with fewer fixed vertices to keep the selection near-balanced.
            let pick_left = match (ca.is_empty(), cb.is_empty()) {
                (true, true) => return,
                (false, true) => true,
                (true, false) => false,
                (false, false) => a.len() <= b.len(),
            };

            if pick_left {
                let u = ca
                    .iter()
                    .max_by_key(|&u| (self.left_weights[u], std::cmp::Reverse(u)))
                    .expect("ca non-empty") as u32;
                let mut ca_inc = ca.clone();
                ca_inc.remove(u as usize);
                let mut cb_inc = cb.clone();
                cb_inc.and_assign_count(&self.graph.left_row(u));
                a.push(u);
                self.recurse(a, b, ca_inc, cb_inc, depth + 1);
                a.pop();
                ca.remove(u as usize);
            } else {
                let v = cb
                    .iter()
                    .max_by_key(|&v| (self.right_weights[v], std::cmp::Reverse(v)))
                    .expect("cb non-empty") as u32;
                let mut cb_inc = cb.clone();
                cb_inc.remove(v as usize);
                let mut ca_inc = ca.clone();
                ca_inc.and_assign_count(&self.graph.right_row(v));
                b.push(v);
                self.recurse(a, b, ca_inc, cb_inc, depth + 1);
                b.pop();
                cb.remove(v as usize);
            }
            depth += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute force: every left subset, closed to its common neighbourhood,
    /// scored by the top-k weights of each side.
    fn brute_force(graph: &LocalGraph, lw: &[u64], rw: &[u64]) -> u64 {
        let nl = graph.num_left();
        assert!(nl <= 12);
        let mut best = 0u64;
        for mask in 1u32..(1 << nl) {
            let a: Vec<u32> = (0..nl as u32).filter(|u| mask >> u & 1 == 1).collect();
            let mut common = BitSet::full(graph.num_right());
            for &u in &a {
                common.intersect_with(&graph.left_row(u));
            }
            let k = a.len().min(common.len());
            if k == 0 {
                continue;
            }
            let mut aw: Vec<u64> = a.iter().map(|&u| lw[u as usize]).collect();
            let mut bw: Vec<u64> = common.iter().map(|v| rw[v]).collect();
            aw.sort_unstable_by_key(|&w| std::cmp::Reverse(w));
            bw.sort_unstable_by_key(|&w| std::cmp::Reverse(w));
            let weight: u64 = aw[..k].iter().sum::<u64>() + bw[..k].iter().sum::<u64>();
            best = best.max(weight);
        }
        best
    }

    fn random_instance(seed: u64) -> (LocalGraph, Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = rng.gen_range(1..=8usize);
        let nr = rng.gen_range(1..=8usize);
        let mut g = LocalGraph::new(nl, nr);
        for u in 0..nl as u32 {
            for v in 0..nr as u32 {
                if rng.gen_bool(0.5) {
                    g.add_edge(u, v);
                }
            }
        }
        let lw: Vec<u64> = (0..nl).map(|_| rng.gen_range(0..20)).collect();
        let rw: Vec<u64> = (0..nr).map(|_| rng.gen_range(0..20)).collect();
        (g, lw, rw)
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..40u64 {
            let (g, lw, rw) = random_instance(seed);
            let (found, _) = weighted_mbb_local(&g, &lw, &rw);
            assert_eq!(found.weight, brute_force(&g, &lw, &rw), "seed {seed}");
            if found.weight > 0 {
                assert!(g.is_biclique(&found.left, &found.right), "seed {seed}");
                assert_eq!(found.left.len(), found.right.len());
                let check: u64 = found
                    .left
                    .iter()
                    .map(|&u| lw[u as usize])
                    .chain(found.right.iter().map(|&v| rw[v as usize]))
                    .sum();
                assert_eq!(check, found.weight, "declared weight is the real sum");
            }
        }
    }

    #[test]
    fn unit_weights_reduce_to_mbb() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(9, 9, 35, seed);
            let weights = vec![1u64; g.num_vertices()];
            let (found, _) = weighted_mbb_budgeted(&g, &weights, &SearchBudget::unlimited());
            let weight = found.weight;
            let biclique = Biclique::balanced(found.left, found.right);
            let unweighted = crate::solver::MbbSolver::new().solve(&g).biclique;
            assert_eq!(weight as usize, 2 * unweighted.half_size(), "seed {seed}");
            assert!(biclique.is_valid(&g));
        }
    }

    #[test]
    fn heavy_small_beats_light_large() {
        // A light 2×2 block vs a heavy single edge.
        let mut g = LocalGraph::new(3, 3);
        for u in 0..2 {
            for v in 0..2 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(2, 2);
        let lw = [1, 1, 100];
        let rw = [1, 1, 100];
        let (found, _) = weighted_mbb_local(&g, &lw, &rw);
        assert_eq!(found.weight, 200);
        assert_eq!(found.left, vec![2]);
    }

    #[test]
    fn zero_weights_allowed() {
        let g = LocalGraph::from_edges(2, 2, [(0, 0), (1, 1)]);
        let (found, _) = weighted_mbb_local(&g, &[0, 0], &[0, 0]);
        assert_eq!(found.weight, 0);
    }

    #[test]
    fn empty_graph() {
        let g = LocalGraph::new(3, 3);
        let (found, _) = weighted_mbb_local(&g, &[5, 5, 5], &[5, 5, 5]);
        assert_eq!(found.weight, 0);
        assert!(found.left.is_empty());
    }

    #[test]
    fn prefers_heavier_vertices_within_a_block() {
        // Complete 3×3; only 2×2 fits the weights' interest: all complete,
        // so the optimum is the full 3×3 with every weight.
        let g = LocalGraph::from_edges(3, 3, (0..3).flat_map(|u| (0..3).map(move |v| (u, v))));
        let (found, _) = weighted_mbb_local(&g, &[3, 1, 2], &[1, 5, 1]);
        assert_eq!(found.weight, 3 + 1 + 2 + 1 + 5 + 1);
        assert_eq!(found.left.len(), 3);
    }

    #[test]
    #[should_panic(expected = "left weight count")]
    fn wrong_weight_count_panics() {
        let g = LocalGraph::new(2, 2);
        let _ = weighted_mbb_local(&g, &[1], &[1, 1]);
    }

    #[test]
    fn graph_level_wrapper_splits_weights() {
        let g = generators::complete(2, 3);
        // Global layout: 2 left weights then 3 right weights.
        let (found, _) = weighted_mbb_budgeted(&g, &[10, 1, 1, 2, 30], &SearchBudget::unlimited());
        let (biclique, weight) = (Biclique::balanced(found.left, found.right), found.weight);
        assert_eq!(biclique.half_size(), 2);
        // Best: both left (10 + 1) + two heaviest right (30 + 2).
        assert_eq!(weight, 43);
    }
}
