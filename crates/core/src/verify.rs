//! `verifyMBB` — Algorithm 8: maximality verification.
//!
//! Each surviving vertex-centred subgraph is reduced to the
//! `(best_half + 1)`-core (Lemma 4 applied locally), converted to a bitset
//! [`LocalGraph`], and searched with `denseMBB` seeded with the centre
//! vertex fixed in the result. Improvements immediately tighten the prunes
//! of later subgraphs.
//!
//! An optional std::thread::scope-based parallel mode splits the subgraphs across
//! worker threads sharing the incumbent — an extension over the paper's
//! single-threaded implementation (off by default).

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::core_decomp::{core_decomposition, k_core_mask};
use mbb_bigraph::graph::{BipartiteGraph, Side};
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::subgraph::{induce_by_ids, induce_by_mask, InducedSubgraph};
use parking_lot::Mutex;

use crate::biclique::Biclique;
use crate::bridge::CenteredSubgraph;
use crate::budget::SearchBudget;
use crate::dense::{dense_mbb_budgeted, DenseConfig};
use crate::heuristic::map_to_parent;
use crate::stats::SearchStats;

/// Knobs for the verification stage.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Reduce each subgraph to the `(best_half+1)`-core before searching
    /// (off in the `bd2` ablation).
    pub use_core_reduction: bool,
    /// Exhaustive-search configuration (the `bd3` ablation turns the
    /// polynomial case and missing-most branching off).
    pub dense: DenseConfig,
    /// Number of worker threads; `1` = the paper's sequential algorithm.
    pub threads: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            use_core_reduction: true,
            dense: DenseConfig::default(),
            threads: 1,
        }
    }
}

/// Algorithm 8: returns the final optimum (in the ids of `graph`) and the
/// aggregated search statistics.
pub fn verify_mbb(
    graph: &BipartiteGraph,
    survivors: &[CenteredSubgraph],
    incumbent: Biclique,
    config: VerifyConfig,
) -> (Biclique, SearchStats) {
    verify_mbb_budgeted(
        graph,
        survivors,
        incumbent,
        config,
        &SearchBudget::unlimited(),
    )
}

/// [`verify_mbb`] under a [`SearchBudget`]: the budget is checked between
/// subgraphs and inside every `denseMBB` node, so an expiring deadline
/// surfaces the best verified incumbent within a bounded overshoot.
pub fn verify_mbb_budgeted(
    graph: &BipartiteGraph,
    survivors: &[CenteredSubgraph],
    incumbent: Biclique,
    config: VerifyConfig,
    budget: &SearchBudget,
) -> (Biclique, SearchStats) {
    let threads = crate::solver::resolve_threads(config.threads);
    if threads <= 1 || survivors.len() <= 1 {
        let mut budget = budget.clone();
        let mut best = incumbent;
        let mut stats = SearchStats::default();
        for subgraph in survivors {
            if budget.is_exhausted() {
                break;
            }
            if let Some((candidate, search_stats)) =
                verify_one(graph, subgraph, best.half_size(), config, &budget)
            {
                stats.merge(&search_stats);
                if candidate.half_size() > best.half_size() {
                    best = candidate;
                }
            }
        }
        return (best, stats);
    }

    // Parallel mode: workers pull subgraph indices from a shared cursor and
    // race on a shared incumbent. Each worker clones the budget; the
    // exhausted state is shared, so one worker observing the deadline stops
    // the whole pool at the next check.
    let shared_best = Mutex::new(incumbent);
    let shared_stats = Mutex::new(SearchStats::default());
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut budget = budget.clone();
                loop {
                    if budget.is_exhausted() {
                        break;
                    }
                    let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= survivors.len() {
                        break;
                    }
                    let bound = shared_best.lock().half_size();
                    if let Some((candidate, search_stats)) =
                        verify_one(graph, &survivors[index], bound, config, &budget)
                    {
                        shared_stats.lock().merge(&search_stats);
                        let mut guard = shared_best.lock();
                        if candidate.half_size() > guard.half_size() {
                            *guard = candidate;
                        }
                    }
                }
            });
        }
    });
    (shared_best.into_inner(), shared_stats.into_inner())
}

/// Verifies one centred subgraph against the bound; returns an improving
/// biclique (graph ids) if found.
fn verify_one(
    graph: &BipartiteGraph,
    centered: &CenteredSubgraph,
    best_half: usize,
    config: VerifyConfig,
    budget: &SearchBudget,
) -> Option<(Biclique, SearchStats)> {
    if centered.left_ids.len().min(centered.right_ids.len()) <= best_half {
        return None;
    }
    let sub = induce_by_ids(graph, centered.left_ids.clone(), centered.right_ids.clone());

    // Lemma 4 locally: (best_half + 1)-core.
    let reduced: InducedSubgraph = if config.use_core_reduction {
        let cores = core_decomposition(&sub.graph);
        let mask = k_core_mask(&cores, best_half as u32 + 1);
        let nl = sub.graph.num_left();
        let inner = induce_by_mask(&sub.graph, &mask[..nl], &mask[nl..]);
        // Compose maps back to `graph` ids.
        InducedSubgraph {
            left_ids: inner
                .left_ids
                .iter()
                .map(|&l| sub.left_ids[l as usize])
                .collect(),
            right_ids: inner
                .right_ids
                .iter()
                .map(|&r| sub.right_ids[r as usize])
                .collect(),
            graph: inner.graph,
        }
    } else {
        sub
    };

    if reduced.graph.num_left().min(reduced.graph.num_right()) <= best_half {
        return None;
    }

    // Locate the centre inside the reduced subgraph; if the reduction
    // removed it, no biclique containing it can beat the bound.
    let center_local = match centered.center.side {
        Side::Left => reduced
            .left_ids
            .binary_search(&centered.center.index)
            .ok()?,
        Side::Right => reduced
            .right_ids
            .binary_search(&centered.center.index)
            .ok()?,
    } as u32;

    let local = LocalGraph::induced(
        &reduced.graph,
        &(0..reduced.graph.num_left() as u32).collect::<Vec<_>>(),
        &(0..reduced.graph.num_right() as u32).collect::<Vec<_>>(),
    );

    // Seed the search with the centre fixed (Algorithm 8 line 4): the
    // centre's side candidates exclude it; the other side is already all
    // neighbours of the centre by vertex-centred construction, minus any
    // non-neighbours the core reduction could not remove.
    let (a, b, ca, cb) = match centered.center.side {
        Side::Left => {
            let mut ca = BitSet::full(local.num_left());
            ca.remove(center_local as usize);
            let cb = local.left_row(center_local).clone();
            (vec![center_local], Vec::new(), ca, cb)
        }
        Side::Right => {
            let ca = local.right_row(center_local).clone();
            let mut cb = BitSet::full(local.num_right());
            cb.remove(center_local as usize);
            (Vec::new(), vec![center_local], ca, cb)
        }
    };

    let (found, stats) = dense_mbb_budgeted(&local, a, b, ca, cb, best_half, config.dense, budget);
    if found.half() <= best_half {
        // No improvement; still surface the stats for aggregation.
        return Some((Biclique::empty(), stats));
    }
    let biclique = Biclique::balanced(found.left, found.right);
    Some((map_to_parent(&biclique, &reduced), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::{bridge_mbb, BridgeConfig};
    use mbb_bigraph::generators;
    use mbb_bigraph::order::{compute_order, SearchOrder};

    fn full_pipeline(graph: &BipartiteGraph, threads: usize) -> Biclique {
        let order = compute_order(graph, SearchOrder::Bidegeneracy);
        let bridged = bridge_mbb(graph, &order, Biclique::empty(), BridgeConfig::default());
        let (best, _) = verify_mbb(
            graph,
            &bridged.survivors,
            bridged.best,
            VerifyConfig {
                threads,
                ..Default::default()
            },
        );
        best
    }

    use crate::testutil::brute_force_half_graph as brute_half;

    #[test]
    fn pipeline_is_exact_on_small_random_graphs() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(10, 10, 45, seed);
            let found = full_pipeline(&g, 1);
            assert_eq!(found.half_size(), brute_half(&g), "seed {seed}");
            assert!(found.is_valid(&g), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..8u64 {
            let g = generators::uniform_edges(14, 14, 90, seed);
            let sequential = full_pipeline(&g, 1);
            let parallel = full_pipeline(&g, 4);
            assert_eq!(sequential.half_size(), parallel.half_size(), "seed {seed}");
        }
    }

    #[test]
    fn finds_planted_biclique_exactly() {
        for seed in 0..6u64 {
            let g = generators::uniform_edges(30, 30, 120, seed);
            let (planted, _, _) = generators::plant_balanced_biclique(&g, 5);
            let found = full_pipeline(&planted, 1);
            assert!(found.half_size() >= 5, "seed {seed}: {}", found.half_size());
            assert!(found.is_valid(&planted));
        }
    }

    #[test]
    fn empty_survivor_list_returns_incumbent() {
        let g = generators::uniform_edges(5, 5, 10, 0);
        let incumbent = Biclique::balanced(vec![0], vec![0]);
        let (best, stats) = verify_mbb(&g, &[], incumbent.clone(), VerifyConfig::default());
        assert_eq!(best, incumbent);
        assert_eq!(stats.nodes, 0);
    }
}
