//! `verifyMBB` — Algorithm 8: maximality verification.
//!
//! Each surviving vertex-centred subgraph is reduced to the
//! `(best_half + 1)`-core (Lemma 4 applied locally), converted to a bitset
//! [`LocalGraph`], and searched with `denseMBB` seeded with the centre
//! vertex fixed in the result. Improvements immediately tighten the prunes
//! of later subgraphs.
//!
//! Two `std::thread::scope`-based parallel modes extend the paper's
//! single-threaded implementation (both off by default, `threads = 1`):
//!
//! * [`ParallelMode::Subgraph`] splits the *subgraphs* across workers
//!   sharing the incumbent — effective when many comparable subgraphs
//!   survive, Amdahl-bound by the largest one on skewed graphs;
//! * [`ParallelMode::IntraSubgraph`] walks the subgraphs in
//!   order but splits the branch-and-bound *inside* each sufficiently
//!   large one ([`dense_mbb_parallel`]) — effective exactly where the
//!   subgraph-level mode stalls, on the one dominant subgraph of size
//!   ≈ δ̈ + 1 that carries most of the search nodes.
//!
//! [`ParallelMode::Auto`] (the default) picks between them per
//! verification stage from the surviving subgraphs' skew.

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::core_decomp::{core_decomposition, k_core_mask};
use mbb_bigraph::graph::{BipartiteGraph, Side};
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::subgraph::{induce_by_ids, induce_by_mask, InducedSubgraph};
use mbb_obs as obs;
use parking_lot::Mutex;

use crate::biclique::Biclique;
use crate::bridge::CenteredSubgraph;
use crate::budget::SearchBudget;
use crate::dense::{dense_mbb_budgeted, dense_mbb_parallel, DenseConfig};
use crate::heuristic::map_to_parent;
use crate::stats::SearchStats;

/// How a multi-threaded verification stage spends its workers.
///
/// Which fixed mode wins is a property of the workload's skew: `Subgraph`
/// scales with the *number* of comparable surviving subgraphs,
/// `IntraSubgraph` with the *size* of the dominant one. On skewed
/// real-world graphs the single subgraph centred near the densest region
/// usually carries most of the search nodes (see `docs/PERFORMANCE.md`).
/// `Auto` (the default) reads exactly that skew off the survivors of the
/// bridging stage and picks per solve, so mixed workloads — the batch
/// service case — get the right mode per query without tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// Split the surviving subgraphs across workers (each searched
    /// serially), racing on a shared incumbent.
    Subgraph,
    /// Walk the subgraphs in order; split the branch-and-bound inside
    /// each subgraph with at least [`INTRA_PARALLEL_MIN_VERTICES`]
    /// vertices across the workers ([`dense_mbb_parallel`]).
    IntraSubgraph,
    /// Decide per solve from the bridge skew statistics: broad, low-skew
    /// survivor sets (at least [`AUTO_MIN_SURVIVORS`] subgraphs whose
    /// largest member stays within [`AUTO_SKEW_RATIO`]× the average
    /// size) run [`Subgraph`](Self::Subgraph); everything else —
    /// including the common one-dominant-subgraph shape — runs
    /// [`IntraSubgraph`](Self::IntraSubgraph). See
    /// [`ParallelMode::resolve_auto`] for the exact rule.
    #[default]
    Auto,
}

/// `Auto` picks [`ParallelMode::Subgraph`] only when at least this many
/// subgraphs survive bridging: below this the per-subgraph pool has too
/// few units of work to beat splitting the dominant search itself.
pub const AUTO_MIN_SURVIVORS: usize = 16;

/// `Auto` picks [`ParallelMode::Subgraph`] only when the largest
/// surviving subgraph is within this factor of the average survivor size
/// — i.e. no single subgraph dominates the verification work.
pub const AUTO_SKEW_RATIO: f64 = 1.5;

impl ParallelMode {
    /// The decision rule behind [`ParallelMode::Auto`], exposed so
    /// services can log or replicate the choice: given the number of
    /// subgraphs that survived bridging (reported as
    /// `SolveStats::subgraphs_verified`), the largest survivor's vertex
    /// count and the mean survivor vertex count, returns the fixed mode
    /// `Auto` resolves to.
    ///
    /// Note the size inputs are measured on the **survivors** handed to
    /// verification; the `max_subgraph_size` / `avg_subgraph_size`
    /// aggregates in `SolveStats` cover all *generated* subgraphs
    /// (pruned ones included), so they approximate — but do not exactly
    /// reproduce — what a solve's `Auto` decided.
    ///
    /// ```
    /// use mbb_core::verify::ParallelMode;
    /// // Broad and flat: hundreds of comparable subgraphs.
    /// assert_eq!(
    ///     ParallelMode::resolve_auto(300, 24, 20.0),
    ///     ParallelMode::Subgraph
    /// );
    /// // Skewed: one subgraph is 4x the average — split inside it.
    /// assert_eq!(
    ///     ParallelMode::resolve_auto(300, 80, 20.0),
    ///     ParallelMode::IntraSubgraph
    /// );
    /// // Too few subgraphs to share out, whatever the skew.
    /// assert_eq!(
    ///     ParallelMode::resolve_auto(3, 20, 20.0),
    ///     ParallelMode::IntraSubgraph
    /// );
    /// ```
    pub fn resolve_auto(
        subgraphs_verified: usize,
        max_subgraph_size: usize,
        avg_subgraph_size: f64,
    ) -> ParallelMode {
        let flat = max_subgraph_size as f64 <= AUTO_SKEW_RATIO * avg_subgraph_size;
        if subgraphs_verified >= AUTO_MIN_SURVIVORS && flat {
            ParallelMode::Subgraph
        } else {
            ParallelMode::IntraSubgraph
        }
    }

    /// Resolves `self` against a concrete survivor set: fixed modes pass
    /// through, `Auto` measures the survivors and delegates to
    /// [`resolve_auto`](Self::resolve_auto).
    fn resolve_for(self, survivors: &[CenteredSubgraph]) -> ParallelMode {
        match self {
            ParallelMode::Auto => {
                let sizes = survivors
                    .iter()
                    .map(|s| s.left_ids.len() + s.right_ids.len());
                let max = sizes.clone().max().unwrap_or(0);
                let avg = if survivors.is_empty() {
                    0.0
                } else {
                    sizes.sum::<usize>() as f64 / survivors.len() as f64
                };
                ParallelMode::resolve_auto(survivors.len(), max, avg)
            }
            fixed => fixed,
        }
    }
}

/// Subgraphs smaller than this are searched serially even under
/// [`ParallelMode::IntraSubgraph`]: spawning a worker pool costs tens of
/// microseconds, longer than the whole search of a small vertex-centred
/// subgraph.
pub const INTRA_PARALLEL_MIN_VERTICES: usize = 32;

/// Knobs for the verification stage.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Reduce each subgraph to the `(best_half+1)`-core before searching
    /// (off in the `bd2` ablation).
    pub use_core_reduction: bool,
    /// Exhaustive-search configuration (the `bd3` ablation turns the
    /// polynomial case and missing-most branching off).
    pub dense: DenseConfig,
    /// Number of worker threads; `1` = the paper's sequential algorithm,
    /// `0` = one per available core.
    pub threads: usize,
    /// How the workers are spent when `threads > 1`.
    pub mode: ParallelMode,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            use_core_reduction: true,
            dense: DenseConfig::default(),
            threads: 1,
            mode: ParallelMode::default(),
        }
    }
}

/// Algorithm 8: returns the final optimum (in the ids of `graph`) and the
/// aggregated search statistics.
pub fn verify_mbb(
    graph: &BipartiteGraph,
    survivors: &[CenteredSubgraph],
    incumbent: Biclique,
    config: VerifyConfig,
) -> (Biclique, SearchStats) {
    verify_mbb_budgeted(
        graph,
        survivors,
        incumbent,
        config,
        &SearchBudget::unlimited(),
    )
}

/// [`verify_mbb`] under a [`SearchBudget`]: the budget is checked between
/// subgraphs and inside every `denseMBB` node, so an expiring deadline
/// surfaces the best verified incumbent within a bounded overshoot.
pub fn verify_mbb_budgeted(
    graph: &BipartiteGraph,
    survivors: &[CenteredSubgraph],
    incumbent: Biclique,
    config: VerifyConfig,
    budget: &SearchBudget,
) -> (Biclique, SearchStats) {
    let threads = crate::solver::resolve_threads(config.threads);
    // `Auto` is resolved here, once per verification stage, against the
    // actual survivor set (the bridge skew is fully known by now).
    let mode = config.mode.resolve_for(survivors);
    if threads <= 1 || survivors.len() <= 1 || mode == ParallelMode::IntraSubgraph {
        // Sequential walk over the subgraphs. Under `IntraSubgraph` with
        // threads > 1, each sufficiently large subgraph's own search is
        // split across the workers instead.
        let intra_workers = if mode == ParallelMode::IntraSubgraph {
            threads
        } else {
            1
        };
        let budget = budget.clone();
        let mut best = incumbent;
        let mut stats = SearchStats::default();
        for subgraph in survivors {
            // Per-subgraph boundary: pay the unsampled probe so an expired
            // deadline never survives into another subgraph's search.
            if budget.probe() {
                break;
            }
            // One span per surviving subgraph's reduce-and-search.
            let _span = obs::span(obs::Stage::DenseSearch);
            if let Some((candidate, search_stats)) = verify_one(
                graph,
                subgraph,
                best.half_size(),
                config,
                &budget,
                intra_workers,
            ) {
                stats.merge(&search_stats);
                if candidate.half_size() > best.half_size() {
                    best = candidate;
                }
            }
        }
        return (best, stats);
    }

    // Subgraph-level mode: workers pull subgraph indices from a shared
    // cursor and race on a shared incumbent. Each worker clones the budget;
    // the exhausted state is shared, so one worker observing the deadline
    // stops the whole pool at the next check.
    let shared_best = Mutex::new(incumbent);
    let shared_stats = Mutex::new(SearchStats::default());
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let shared_best = &shared_best;
            let shared_stats = &shared_stats;
            let cursor = &cursor;
            scope.spawn(move || {
                let budget = budget.clone();
                let mut local = SearchStats::default();
                loop {
                    // Unsampled per-subgraph probe (see the serial walk).
                    if budget.probe() {
                        break;
                    }
                    // relaxed: the fetch_add's atomicity alone hands each
                    // survivor index to exactly one worker; the survivors
                    // slice is immutable and published by scope creation.
                    let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= survivors.len() {
                        break;
                    }
                    let bound = shared_best.lock().half_size();
                    // Per-subgraph span, as in the serial walk.
                    let _span = obs::span(obs::Stage::DenseSearch);
                    if let Some((candidate, search_stats)) =
                        verify_one(graph, &survivors[index], bound, config, &budget, 1)
                    {
                        local.merge(&search_stats);
                        if candidate.half_size() > bound {
                            let mut guard = shared_best.lock();
                            if candidate.half_size() > guard.half_size() {
                                *guard = candidate;
                            }
                        }
                    }
                }
                // Surface per-worker load balance alongside the totals.
                let mut worker_nodes = vec![0; threads];
                worker_nodes[w] = local.nodes;
                local.worker_nodes = worker_nodes;
                shared_stats.lock().merge(&local);
            });
        }
    });
    (shared_best.into_inner(), shared_stats.into_inner())
}

/// Verifies one centred subgraph against the bound; returns an improving
/// biclique (graph ids) if found. `workers > 1` splits the subgraph's
/// branch-and-bound across that many threads when the subgraph is at
/// least [`INTRA_PARALLEL_MIN_VERTICES`] vertices.
fn verify_one(
    graph: &BipartiteGraph,
    centered: &CenteredSubgraph,
    best_half: usize,
    config: VerifyConfig,
    budget: &SearchBudget,
    workers: usize,
) -> Option<(Biclique, SearchStats)> {
    if centered.left_ids.len().min(centered.right_ids.len()) <= best_half {
        return None;
    }
    let sub = induce_by_ids(graph, centered.left_ids.clone(), centered.right_ids.clone());

    // Lemma 4 locally: (best_half + 1)-core.
    let reduced: InducedSubgraph = if config.use_core_reduction {
        let cores = core_decomposition(&sub.graph);
        let mask = k_core_mask(&cores, best_half as u32 + 1);
        let nl = sub.graph.num_left();
        let inner = induce_by_mask(&sub.graph, &mask[..nl], &mask[nl..]);
        // Compose maps back to `graph` ids.
        InducedSubgraph {
            left_ids: inner
                .left_ids
                .iter()
                .map(|&l| sub.left_ids[l as usize])
                .collect(),
            right_ids: inner
                .right_ids
                .iter()
                .map(|&r| sub.right_ids[r as usize])
                .collect(),
            graph: inner.graph,
        }
    } else {
        sub
    };

    if reduced.graph.num_left().min(reduced.graph.num_right()) <= best_half {
        return None;
    }

    // Locate the centre inside the reduced subgraph; if the reduction
    // removed it, no biclique containing it can beat the bound.
    let center_local = match centered.center.side {
        Side::Left => reduced
            .left_ids
            .binary_search(&centered.center.index)
            .ok()?,
        Side::Right => reduced
            .right_ids
            .binary_search(&centered.center.index)
            .ok()?,
    } as u32;

    let local = LocalGraph::induced(
        &reduced.graph,
        &(0..reduced.graph.num_left() as u32).collect::<Vec<_>>(),
        &(0..reduced.graph.num_right() as u32).collect::<Vec<_>>(),
    );

    // Seed the search with the centre fixed (Algorithm 8 line 4): the
    // centre's side candidates exclude it; the other side is already all
    // neighbours of the centre by vertex-centred construction, minus any
    // non-neighbours the core reduction could not remove.
    let (a, b, ca, cb) = match centered.center.side {
        Side::Left => {
            let mut ca = BitSet::full(local.num_left());
            ca.remove(center_local as usize);
            let cb = local.left_row(center_local).to_bitset();
            (vec![center_local], Vec::new(), ca, cb)
        }
        Side::Right => {
            let ca = local.right_row(center_local).to_bitset();
            let mut cb = BitSet::full(local.num_right());
            cb.remove(center_local as usize);
            (Vec::new(), vec![center_local], ca, cb)
        }
    };

    let workers = if local.num_left() + local.num_right() >= INTRA_PARALLEL_MIN_VERTICES {
        workers
    } else {
        1
    };
    let (found, stats) = if workers > 1 {
        dense_mbb_parallel(
            &local,
            a,
            b,
            ca,
            cb,
            best_half,
            config.dense,
            budget,
            workers,
        )
    } else {
        dense_mbb_budgeted(&local, a, b, ca, cb, best_half, config.dense, budget)
    };
    if found.half() <= best_half {
        // No improvement; still surface the stats for aggregation.
        return Some((Biclique::empty(), stats));
    }
    let biclique = Biclique::balanced(found.left, found.right);
    Some((map_to_parent(&biclique, &reduced), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::{bridge_mbb, BridgeConfig};
    use mbb_bigraph::generators;
    use mbb_bigraph::order::{compute_order, SearchOrder};

    fn full_pipeline(graph: &BipartiteGraph, threads: usize) -> Biclique {
        full_pipeline_mode(graph, threads, ParallelMode::Subgraph).0
    }

    fn full_pipeline_mode(
        graph: &BipartiteGraph,
        threads: usize,
        mode: ParallelMode,
    ) -> (Biclique, SearchStats) {
        let order = compute_order(graph, SearchOrder::Bidegeneracy);
        let bridged = bridge_mbb(graph, &order, Biclique::empty(), BridgeConfig::default());
        verify_mbb(
            graph,
            &bridged.survivors,
            bridged.best,
            VerifyConfig {
                threads,
                mode,
                ..Default::default()
            },
        )
    }

    use crate::testutil::brute_force_half_graph as brute_half;

    #[test]
    fn pipeline_is_exact_on_small_random_graphs() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(10, 10, 45, seed);
            let found = full_pipeline(&g, 1);
            assert_eq!(found.half_size(), brute_half(&g), "seed {seed}");
            assert!(found.is_valid(&g), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..8u64 {
            let g = generators::uniform_edges(14, 14, 90, seed);
            let sequential = full_pipeline(&g, 1);
            let parallel = full_pipeline(&g, 4);
            assert_eq!(sequential.half_size(), parallel.half_size(), "seed {seed}");
        }
    }

    #[test]
    fn intra_subgraph_mode_matches_sequential() {
        // Skewed hub-heavy instances: the dominant subgraph clears
        // INTRA_PARALLEL_MIN_VERTICES *and* its search outlives the
        // frontier expansion, so the parallel branch really runs
        // (asserted below via the per-worker counters it populates).
        let mut parallel_branch_ran = false;
        for seed in 0..4u64 {
            let g = generators::chung_lu_bipartite(
                &generators::ChungLuParams {
                    num_left: 80,
                    num_right: 80,
                    num_edges: 4_200,
                    left_exponent: 0.55,
                    right_exponent: 0.55,
                },
                seed ^ 0x17,
            );
            let sequential = full_pipeline(&g, 1);
            let (intra, stats) = full_pipeline_mode(&g, 4, ParallelMode::IntraSubgraph);
            assert_eq!(sequential.half_size(), intra.half_size(), "seed {seed}");
            assert!(intra.is_valid(&g), "seed {seed}");
            parallel_branch_ran |= !stats.worker_nodes.is_empty();
        }
        assert!(
            parallel_branch_ran,
            "no subgraph reached the intra-parallel threshold; grow the test graphs"
        );
    }

    #[test]
    fn auto_mode_matches_sequential_and_fixed_modes() {
        for seed in 0..6u64 {
            let g = generators::uniform_edges(16, 16, 110, seed ^ 0x5a);
            let sequential = full_pipeline(&g, 1);
            let (auto, _) = full_pipeline_mode(&g, 4, ParallelMode::Auto);
            assert_eq!(sequential.half_size(), auto.half_size(), "seed {seed}");
            assert!(auto.is_valid(&g), "seed {seed}");
        }
    }

    #[test]
    fn auto_resolution_rule() {
        // Flat and broad → subgraph-level; skewed or narrow → intra.
        assert_eq!(
            ParallelMode::resolve_auto(AUTO_MIN_SURVIVORS, 10, 10.0),
            ParallelMode::Subgraph
        );
        assert_eq!(
            ParallelMode::resolve_auto(AUTO_MIN_SURVIVORS - 1, 10, 10.0),
            ParallelMode::IntraSubgraph
        );
        assert_eq!(
            ParallelMode::resolve_auto(1000, 31, 20.0),
            ParallelMode::IntraSubgraph
        );
        assert_eq!(
            ParallelMode::resolve_auto(1000, 30, 20.0),
            ParallelMode::Subgraph
        );
        // Degenerate empty survivor set resolves (to intra) without
        // dividing by zero.
        assert_eq!(
            ParallelMode::Auto.resolve_for(&[]),
            ParallelMode::IntraSubgraph
        );
    }

    #[test]
    fn subgraph_mode_reports_per_worker_nodes() {
        let g = generators::uniform_edges(30, 30, 220, 11);
        let order = compute_order(&g, SearchOrder::Bidegeneracy);
        let bridged = bridge_mbb(&g, &order, Biclique::empty(), BridgeConfig::default());
        if bridged.survivors.len() > 1 {
            let (_, stats) = verify_mbb(
                &g,
                &bridged.survivors,
                bridged.best,
                VerifyConfig {
                    threads: 2,
                    mode: ParallelMode::Subgraph,
                    ..Default::default()
                },
            );
            assert_eq!(stats.worker_nodes.len(), 2);
            assert_eq!(stats.worker_nodes.iter().sum::<u64>(), stats.nodes);
        }
    }

    #[test]
    fn finds_planted_biclique_exactly() {
        for seed in 0..6u64 {
            let g = generators::uniform_edges(30, 30, 120, seed);
            let (planted, _, _) = generators::plant_balanced_biclique(&g, 5);
            let found = full_pipeline(&planted, 1);
            assert!(found.half_size() >= 5, "seed {seed}: {}", found.half_size());
            assert!(found.is_valid(&planted));
        }
    }

    #[test]
    fn empty_survivor_list_returns_incumbent() {
        let g = generators::uniform_edges(5, 5, 10, 0);
        let incumbent = Biclique::balanced(vec![0], vec![0]);
        let (best, stats) = verify_mbb(&g, &[], incumbent.clone(), VerifyConfig::default());
        assert_eq!(best, incumbent);
        assert_eq!(stats.nodes, 0);
    }
}
