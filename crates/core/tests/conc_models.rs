//! Model-check suite for the incumbent publication path used by
//! `dense_mbb_parallel` — the real `SharedIncumbent` type and the
//! claim-flag protocol its task pool relies on.
//!
//! Compiled (and run) only under the model facade:
//!
//! ```text
//! RUSTFLAGS="--cfg mbb_conc" cargo test -p mbb-core --test conc_models
//! ```
//!
//! In a normal build this file compiles to an empty test binary, so
//! tier-1 `cargo test` is unaffected.
#![cfg(mbb_conc)]

use std::sync::Arc;

use mbb_conc::model::{explore, ExploreConfig};
use mbb_conc::sync::atomic::{AtomicBool, Ordering};
use mbb_conc::thread;
use mbb_core::dense::SharedIncumbent;

/// Two workers race `publish`; every interleaving must leave the cell at
/// the maximum, and each worker's own reads of `bound()` must be
/// monotonically non-decreasing (the property pruning correctness rests
/// on: a stale bound may under-prune but never over-prune).
#[test]
fn incumbent_converges_to_max_and_bounds_are_monotone() {
    let report = explore(ExploreConfig::auto(2), || {
        let incumbent = Arc::new(SharedIncumbent::new(1));
        let workers: Vec<_> = [[3usize, 5], [4, 2]]
            .into_iter()
            .map(|finds| {
                let incumbent = Arc::clone(&incumbent);
                thread::spawn(move || {
                    // Each model op is an interleaving choice point, so
                    // the loop body is kept to the minimal publish+read
                    // pair — enough to observe a regression if fetch_max
                    // were broken, small enough to enumerate fully.
                    let mut last = 0;
                    for half in finds {
                        incumbent.publish(half);
                        let now = incumbent.bound();
                        assert!(now >= last, "bound regressed: {last} -> {now}");
                        assert!(now >= half, "own publish not visible");
                        last = now;
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(incumbent.bound(), 5, "final bound is the global max");
    });
    assert!(
        report.exhausted,
        "2-thread incumbent model must enumerate fully ({} schedules)",
        report.schedules
    );
}

/// `publish` never lowers the bound, even against a concurrent larger
/// publication — the `fetch_max` protocol the `// relaxed:` audit
/// justifications in `dense.rs` appeal to.
#[test]
fn late_small_publish_cannot_regress_the_bound() {
    let report = explore(ExploreConfig::auto(2), || {
        let incumbent = Arc::new(SharedIncumbent::new(0));
        let big = {
            let incumbent = Arc::clone(&incumbent);
            thread::spawn(move || incumbent.publish(9))
        };
        let small = {
            let incumbent = Arc::clone(&incumbent);
            thread::spawn(move || {
                incumbent.publish(2);
                incumbent.publish(3);
            })
        };
        big.join().unwrap();
        small.join().unwrap();
        assert_eq!(incumbent.bound(), 9);
    });
    assert!(report.exhausted, "({} schedules)", report.schedules);
}

/// The work-stealing claim protocol of `dense_mbb_parallel`: one
/// `AtomicBool` per task, `swap(true)` decides ownership. In every
/// interleaving each task is executed by exactly one worker and no task
/// is dropped.
#[test]
fn claim_flags_hand_each_task_to_exactly_one_worker() {
    const TASKS: usize = 3;
    let report = explore(ExploreConfig::auto(2), || {
        let claimed: Arc<Vec<AtomicBool>> =
            Arc::new((0..TASKS).map(|_| AtomicBool::new(false)).collect());
        // Execution tallies live in *std* atomics: invisible to the model
        // scheduler (no choice points), which keeps the enumeration to
        // the three swaps per worker that actually decide ownership.
        let executions: Arc<Vec<std::sync::atomic::AtomicUsize>> = Arc::new(
            (0..TASKS)
                .map(|_| std::sync::atomic::AtomicUsize::new(0))
                .collect(),
        );
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let claimed = Arc::clone(&claimed);
                let executions = Arc::clone(&executions);
                thread::spawn(move || {
                    for task in 0..TASKS {
                        // relaxed: mirrors dense.rs — the RMW alone
                        // decides the claim; task data is immutable.
                        if !claimed[task].swap(true, Ordering::Relaxed) {
                            executions[task].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        for (task, count) in executions.iter().enumerate() {
            assert_eq!(
                count.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "task {task} must run exactly once"
            );
        }
    });
    assert!(report.exhausted, "({} schedules)", report.schedules);
}
