//! [`GraphStore`] — the catalog that resolves a name or path to a loaded
//! graph, keeping a binary cache warm next to each source file.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::io::read_edge_list_file;

use crate::binfmt::{self, SourceStamp, StoreError};

/// File extension of the binary cache format.
pub const CACHE_EXTENSION: &str = "mbbg";

/// What the store is allowed to do with caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Use fresh caches and write/refresh them after a parse (default).
    #[default]
    ReadWrite,
    /// Use fresh caches but never write to disk.
    ReadOnly,
    /// Ignore caches entirely; always parse the source text.
    Off,
}

/// Where a loaded graph actually came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// Parsed from the source text; no cache was written (mode
    /// [`CacheMode::ReadOnly`]/[`CacheMode::Off`], or the write failed).
    Parsed,
    /// Parsed from the source text and a fresh cache written beside it.
    ParsedAndCached,
    /// Loaded from a warm binary cache — no text parsing happened.
    CacheHit,
}

impl Provenance {
    /// Short human label: `parsed`, `parsed+cached` or `cache`.
    pub fn label(&self) -> &'static str {
        match self {
            Provenance::Parsed => "parsed",
            Provenance::ParsedAndCached => "parsed+cached",
            Provenance::CacheHit => "cache",
        }
    }

    /// True when the graph came from the binary cache.
    pub fn is_cache_hit(&self) -> bool {
        matches!(self, Provenance::CacheHit)
    }
}

/// A graph resolved through the store, with full load provenance.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The graph, ready to share with engine sessions.
    pub graph: Arc<BipartiteGraph>,
    /// The file the bytes actually came from (source text or `.mbbg`).
    pub source: PathBuf,
    /// The cache file consulted/written, when caching was in play.
    pub cache: Option<PathBuf>,
    /// Parsed, parsed-and-cached, or cache hit.
    pub provenance: Provenance,
    /// Wall-clock time of the load (parse or cache read), excluding any
    /// cache write.
    pub load_time: Duration,
    /// Wall-clock time spent writing the cache, when one was written.
    pub cache_write_time: Option<Duration>,
    /// Why the cache was not used, when it existed but was skipped
    /// (stale, corrupt, unreadable) or could not be written.
    pub note: Option<String>,
}

impl LoadedGraph {
    /// One-line description: provenance, file, timing — what `mbb stats`
    /// and `mbb ingest` print.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{} {} in {:.3}ms",
            self.provenance.label(),
            self.source.display(),
            self.load_time.as_secs_f64() * 1e3
        );
        if let Some(w) = self.cache_write_time {
            out.push_str(&format!(
                " (cache written in {:.3}ms)",
                w.as_secs_f64() * 1e3
            ));
        }
        if let Some(note) = &self.note {
            out.push_str(&format!(" [{note}]"));
        }
        out
    }

    /// True when the loaded graph is byte-identical (same CSR arrays) to
    /// `other`. This is the hot-reload probe: a serving fleet that is
    /// asked to swap a shard compares the freshly loaded graph against
    /// the one it is already serving, and on a match keeps the warm
    /// session (via `MbbEngine::fork`) instead of recomputing indices.
    pub fn matches(&self, other: &BipartiteGraph) -> bool {
        self.graph.left_offsets() == other.left_offsets()
            && self.graph.left_neighbors() == other.left_neighbors()
            && self.graph.right_offsets() == other.right_offsets()
            && self.graph.right_neighbors() == other.right_neighbors()
    }
}

/// The graph catalog: resolves names or paths to graphs, transparently
/// maintaining a `.mbbg` binary cache next to each source file.
///
/// Resolution rules for [`load`](Self::load):
///
/// * an existing path is used as-is;
/// * a path ending in `.mbbg` (or whose bytes start with the `MBBG`
///   magic) is loaded as a binary cache directly;
/// * otherwise the name is searched in the store's roots, trying the name
///   itself and then `<name>.txt`, `<name>.edges`, `<name>.mbbg`.
///
/// Freshness: a cache embeds the length and mtime of the source it was
/// built from ([`SourceStamp`]); it is used only when both still match.
/// Stale, corrupt, truncated or version-mismatched caches fall back to a
/// parse and — in [`CacheMode::ReadWrite`] — are rewritten in place.
///
/// The environment variable `MBB_CACHE` (`off`, `ro`/`readonly`, or
/// `rw`/`readwrite`) overrides the mode in
/// [`from_env`](Self::from_env)-constructed stores, which is what the CLI
/// uses.
#[derive(Debug, Clone, Default)]
pub struct GraphStore {
    roots: Vec<PathBuf>,
    mode: CacheMode,
}

impl GraphStore {
    /// A store with the default [`CacheMode::ReadWrite`] policy and no
    /// extra search roots (paths resolve relative to the working
    /// directory).
    pub fn new() -> GraphStore {
        GraphStore::default()
    }

    /// A store with an explicit cache policy.
    pub fn with_mode(mode: CacheMode) -> GraphStore {
        GraphStore {
            roots: Vec::new(),
            mode,
        }
    }

    /// A store whose mode honours the `MBB_CACHE` environment variable
    /// (`off` | `ro`/`readonly` | `rw`/`readwrite`; default read-write).
    pub fn from_env() -> GraphStore {
        let mode = match std::env::var("MBB_CACHE").as_deref() {
            Ok("off") | Ok("0") | Ok("none") => CacheMode::Off,
            Ok("ro") | Ok("readonly") => CacheMode::ReadOnly,
            _ => CacheMode::ReadWrite,
        };
        GraphStore::with_mode(mode)
    }

    /// Adds a directory searched when a bare name does not resolve as a
    /// path. Roots are searched in insertion order.
    pub fn add_root(&mut self, root: impl Into<PathBuf>) -> &mut Self {
        self.roots.push(root.into());
        self
    }

    /// The active cache policy.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The cache path for a source file: `graph.txt` → `graph.txt.mbbg`
    /// (appended, so distinct sources never share a cache).
    pub fn cache_path_for(source: &Path) -> PathBuf {
        let mut name = source.file_name().unwrap_or_default().to_os_string();
        name.push(".");
        name.push(CACHE_EXTENSION);
        source.with_file_name(name)
    }

    /// Resolves a name or path to the file [`load`](Self::load) would
    /// read, without loading it.
    pub fn resolve(&self, spec: &str) -> Result<PathBuf, StoreError> {
        let direct = Path::new(spec);
        if direct.exists() {
            return Ok(direct.to_path_buf());
        }
        for root in &self.roots {
            for candidate in [
                root.join(spec),
                root.join(format!("{spec}.txt")),
                root.join(format!("{spec}.edges")),
                root.join(format!("{spec}.{CACHE_EXTENSION}")),
            ] {
                if candidate.exists() {
                    return Ok(candidate);
                }
            }
        }
        Err(StoreError::NotFound { spec: spec.into() })
    }

    /// Resolves and loads a graph, consulting/refreshing the binary cache
    /// per the store's [`CacheMode`]. Returns the graph together with its
    /// provenance and timings.
    pub fn load(&self, spec: &str) -> Result<LoadedGraph, StoreError> {
        let source = self.resolve(spec)?;
        if is_cache_file(&source) {
            let start = Instant::now();
            let (graph, _) = binfmt::load_graph(&source)?;
            return Ok(LoadedGraph {
                graph: Arc::new(graph),
                cache: Some(source.clone()),
                source,
                provenance: Provenance::CacheHit,
                load_time: start.elapsed(),
                cache_write_time: None,
                note: None,
            });
        }
        self.load_source(&source, false)
    }

    /// Pre-builds (or refreshes) the cache for a source file — the
    /// `mbb ingest` entry point. With `force`, the cache is rebuilt even
    /// when fresh. Note ingest always writes, regardless of
    /// [`CacheMode::ReadOnly`]; only [`CacheMode::Off`] suppresses it.
    pub fn ingest(&self, spec: &str, force: bool) -> Result<LoadedGraph, StoreError> {
        let source = self.resolve(spec)?;
        if is_cache_file(&source) {
            // Ingesting a cache file is just validating it.
            return self.load(spec);
        }
        if force {
            return self.parse_and_cache(&source, self.mode != CacheMode::Off, None);
        }
        self.load_source(&source, true)
    }

    /// Loads from a text source: warm cache if fresh, else parse (and
    /// rewrite the cache when allowed). `write_even_readonly` is the
    /// ingest path, where writing is the point.
    fn load_source(
        &self,
        source: &Path,
        write_even_readonly: bool,
    ) -> Result<LoadedGraph, StoreError> {
        let cache = GraphStore::cache_path_for(source);
        let mut note = None;
        if self.mode != CacheMode::Off && cache.exists() {
            let start = Instant::now();
            // Freshness first, from the 48-byte header alone — a stale
            // cache of a big graph must not cost a full read + checksum +
            // validation before being thrown away.
            match (binfmt::load_stamp(&cache), SourceStamp::of_path(source)) {
                (Ok(stamp), Ok(current)) if stamp == current => match binfmt::load_graph(&cache) {
                    Ok((graph, _)) => {
                        return Ok(LoadedGraph {
                            graph: Arc::new(graph),
                            source: source.to_path_buf(),
                            cache: Some(cache),
                            provenance: Provenance::CacheHit,
                            load_time: start.elapsed(),
                            cache_write_time: None,
                            note: None,
                        });
                    }
                    Err(e) => note = Some(format!("cache unusable: {e}")),
                },
                (Ok(_), Ok(_)) => note = Some("cache stale: source modified".to_string()),
                (Err(e), _) => note = Some(format!("cache unusable: {e}")),
                (_, Err(e)) => note = Some(format!("source unreadable: {e}")),
            }
        }
        let write = match self.mode {
            CacheMode::ReadWrite => true,
            CacheMode::ReadOnly => write_even_readonly,
            CacheMode::Off => false,
        };
        self.parse_and_cache(source, write, note)
    }

    /// Parses the source text (streaming two-pass builder) and optionally
    /// writes the cache beside it. A failed cache write degrades to
    /// [`Provenance::Parsed`] with a note — never a load error.
    fn parse_and_cache(
        &self,
        source: &Path,
        write: bool,
        mut note: Option<String>,
    ) -> Result<LoadedGraph, StoreError> {
        // Stamp BEFORE parsing: if the source is replaced while (or right
        // after) we parse it, the cache carries the pre-parse identity and
        // the next load sees a mismatch and re-parses — the race fails
        // safe instead of pinning a wrong graph as "fresh".
        let stamp = SourceStamp::of_path(source).unwrap_or_default();
        let start = Instant::now();
        let graph = read_edge_list_file(source)?;
        let load_time = start.elapsed();
        let cache = GraphStore::cache_path_for(source);
        let mut provenance = Provenance::Parsed;
        let mut cache_write_time = None;
        if write {
            let write_start = Instant::now();
            match binfmt::save_graph(&graph, stamp, &cache) {
                Ok(()) => {
                    provenance = Provenance::ParsedAndCached;
                    cache_write_time = Some(write_start.elapsed());
                }
                Err(e) => note = Some(format!("cache write failed: {e}")),
            }
        }
        Ok(LoadedGraph {
            graph: Arc::new(graph),
            source: source.to_path_buf(),
            cache: (self.mode != CacheMode::Off).then_some(cache),
            provenance,
            load_time,
            cache_write_time,
            note,
        })
    }
}

/// True when `path` should be treated as a binary cache: `.mbbg`
/// extension, or an existing file starting with the format magic.
fn is_cache_file(path: &Path) -> bool {
    if path.extension().is_some_and(|e| e == CACHE_EXTENSION) {
        return true;
    }
    let mut magic = [0u8; 4];
    std::fs::File::open(path)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut magic))
        .map(|()| magic == crate::binfmt::MAGIC)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators::uniform_edges;
    use mbb_bigraph::io::write_edge_list_file;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("mbb-store-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn write_sample(path: &Path) -> BipartiteGraph {
        let g = uniform_edges(12, 10, 40, 3);
        write_edge_list_file(&g, path).unwrap();
        g
    }

    fn assert_same_csr(a: &BipartiteGraph, b: &BipartiteGraph) {
        assert_eq!(a.left_offsets(), b.left_offsets());
        assert_eq!(a.left_neighbors(), b.left_neighbors());
        assert_eq!(a.right_offsets(), b.right_offsets());
        assert_eq!(a.right_neighbors(), b.right_neighbors());
    }

    #[test]
    fn cold_then_warm_load_provenance() {
        let dir = TempDir::new("warm");
        let path = dir.path("g.txt");
        write_sample(&path);
        let store = GraphStore::new();
        let spec = path.to_str().unwrap();

        let cold = store.load(spec).unwrap();
        assert_eq!(cold.provenance, Provenance::ParsedAndCached);
        assert!(cold.cache_write_time.is_some());
        assert!(cold.cache.as_ref().unwrap().exists());

        let warm = store.load(spec).unwrap();
        assert_eq!(warm.provenance, Provenance::CacheHit);
        assert!(warm.note.is_none());
        assert_same_csr(&cold.graph, &warm.graph);
        assert!(warm.describe().contains("cache"));
    }

    #[test]
    fn warm_cache_is_byte_identical_to_text_parse() {
        let dir = TempDir::new("identical");
        let path = dir.path("g.txt");
        write_sample(&path);
        let store = GraphStore::new();
        let spec = path.to_str().unwrap();
        store.load(spec).unwrap(); // builds the cache
        let warm = store.load(spec).unwrap();
        assert!(warm.provenance.is_cache_hit());
        let parsed = read_edge_list_file(&path).unwrap();
        assert_same_csr(&warm.graph, &parsed);
    }

    #[test]
    fn modified_source_invalidates_the_cache() {
        let dir = TempDir::new("stale");
        let path = dir.path("g.txt");
        write_sample(&path);
        let store = GraphStore::new();
        let spec = path.to_str().unwrap();
        store.load(spec).unwrap();

        // Append an edge: length changes, so the stamp mismatches even on
        // coarse-mtime filesystems.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("12 10\n");
        std::fs::write(&path, text).unwrap();

        let reloaded = store.load(spec).unwrap();
        assert_eq!(reloaded.provenance, Provenance::ParsedAndCached);
        assert!(reloaded.note.as_deref().unwrap().contains("stale"));
        assert!(reloaded.graph.has_edge(11, 9));
        // And the refreshed cache serves the new graph.
        let warm = store.load(spec).unwrap();
        assert!(warm.provenance.is_cache_hit());
        assert!(warm.graph.has_edge(11, 9));
    }

    #[test]
    fn corrupt_cache_falls_back_to_parse_and_heals() {
        let dir = TempDir::new("corrupt");
        let path = dir.path("g.txt");
        let g = write_sample(&path);
        let store = GraphStore::new();
        let spec = path.to_str().unwrap();
        let cache = store.load(spec).unwrap().cache.unwrap();

        let mut bytes = std::fs::read(&cache).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&cache, bytes).unwrap();

        let healed = store.load(spec).unwrap();
        assert_eq!(healed.provenance, Provenance::ParsedAndCached);
        assert!(healed.note.as_deref().unwrap().contains("cache unusable"));
        assert_same_csr(&healed.graph, &g);
        assert!(store.load(spec).unwrap().provenance.is_cache_hit());
    }

    #[test]
    fn cache_modes_are_respected() {
        let dir = TempDir::new("modes");
        let path = dir.path("g.txt");
        write_sample(&path);
        let spec = path.to_str().unwrap();
        let cache = GraphStore::cache_path_for(&path);

        let off = GraphStore::with_mode(CacheMode::Off);
        assert_eq!(off.load(spec).unwrap().provenance, Provenance::Parsed);
        assert!(!cache.exists());

        let ro = GraphStore::with_mode(CacheMode::ReadOnly);
        assert_eq!(ro.load(spec).unwrap().provenance, Provenance::Parsed);
        assert!(!cache.exists());

        // ReadWrite writes; ReadOnly then reads the now-warm cache.
        GraphStore::new().load(spec).unwrap();
        assert!(cache.exists());
        assert!(ro.load(spec).unwrap().provenance.is_cache_hit());
        // Off ignores the warm cache.
        assert_eq!(off.load(spec).unwrap().provenance, Provenance::Parsed);
    }

    #[test]
    fn direct_mbbg_path_loads_without_source() {
        let dir = TempDir::new("direct");
        let path = dir.path("g.txt");
        let g = write_sample(&path);
        let store = GraphStore::new();
        let cache = store.load(path.to_str().unwrap()).unwrap().cache.unwrap();
        std::fs::remove_file(&path).unwrap(); // source gone, cache stands alone
        let loaded = store.load(cache.to_str().unwrap()).unwrap();
        assert!(loaded.provenance.is_cache_hit());
        assert_same_csr(&loaded.graph, &g);
    }

    #[test]
    fn named_resolution_searches_roots() {
        let dir = TempDir::new("roots");
        let path = dir.path("konect-sample.txt");
        write_sample(&path);
        let mut store = GraphStore::new();
        store.add_root(&dir.0);
        let loaded = store.load("konect-sample").unwrap();
        assert_eq!(loaded.source, path);
        assert!(matches!(
            store.load("no-such-graph"),
            Err(StoreError::NotFound { .. })
        ));
    }

    #[test]
    fn ingest_builds_refreshes_and_forces() {
        let dir = TempDir::new("ingest");
        let path = dir.path("g.txt");
        write_sample(&path);
        let store = GraphStore::new();
        let spec = path.to_str().unwrap();

        let first = store.ingest(spec, false).unwrap();
        assert_eq!(first.provenance, Provenance::ParsedAndCached);
        // Fresh cache: a second ingest is a no-op cache hit…
        let second = store.ingest(spec, false).unwrap();
        assert!(second.provenance.is_cache_hit());
        // …unless forced.
        let forced = store.ingest(spec, true).unwrap();
        assert_eq!(forced.provenance, Provenance::ParsedAndCached);
        // Read-only stores still write on explicit ingest.
        let ro = GraphStore::with_mode(CacheMode::ReadOnly);
        let ro_forced = ro.ingest(spec, true).unwrap();
        assert_eq!(ro_forced.provenance, Provenance::ParsedAndCached);
    }

    #[test]
    fn cache_path_is_appended_not_substituted() {
        assert_eq!(
            GraphStore::cache_path_for(Path::new("/data/g.txt")),
            PathBuf::from("/data/g.txt.mbbg")
        );
        assert_eq!(
            GraphStore::cache_path_for(Path::new("bare")),
            PathBuf::from("bare.mbbg")
        );
    }
}
