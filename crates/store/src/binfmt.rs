//! The `.mbbg` binary graph cache format.
//!
//! Layout (all integers little-endian):
//!
//! | offset | size          | field                                    |
//! |--------|---------------|------------------------------------------|
//! | 0      | 4             | magic `MBBG`                             |
//! | 4      | 2             | format version (currently 1)             |
//! | 6      | 2             | reserved flags (must be 0)               |
//! | 8      | 8             | source file length (bytes)               |
//! | 16     | 8             | source mtime, seconds since epoch        |
//! | 24     | 4             | source mtime, subsecond nanos            |
//! | 28     | 4             | reserved (must be 0)                     |
//! | 32     | 4             | `num_left` (u32)                         |
//! | 36     | 4             | `num_right` (u32)                        |
//! | 40     | 8             | `num_edges` (u64)                        |
//! | 48     | 8·(nl+1)      | left CSR offsets (u64 each)              |
//! | …      | 8·(nr+1)      | right CSR offsets (u64 each)             |
//! | …      | 4·m           | left→right adjacency (u32 ids)           |
//! | …      | 4·m           | right→left adjacency (u32 ids)           |
//! | end−8  | 8             | FNV-1a 64 checksum of all prior bytes    |
//!
//! The source stamp (length + mtime) is how [`crate::GraphStore`] decides
//! whether a cache is still fresh without reading the source text. The
//! checksum guards against torn writes and bit rot; version and magic guard
//! against format drift — each failure mode maps to its own
//! [`StoreError`] variant so callers can distinguish "rebuild the cache"
//! from "this is not a cache file at all".

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::time::UNIX_EPOCH;

use mbb_bigraph::graph::{BipartiteGraph, GraphError};
use mbb_bigraph::io::IoError;

/// File magic: the first four bytes of every `.mbbg` file.
pub const MAGIC: [u8; 4] = *b"MBBG";

/// Current format version. Bump on any layout change; older readers
/// reject newer files with [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION: u16 = 1;

/// Fixed-size header length in bytes (everything before the offset
/// arrays).
const HEADER_LEN: usize = 48;

/// Trailing checksum length in bytes.
const CHECKSUM_LEN: usize = 8;

/// Identity stamp of the source text file a cache was built from.
///
/// Two stamps compare equal iff length and mtime match — the cheap
/// freshness test `GraphStore` uses before trusting a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceStamp {
    /// Source file length in bytes.
    pub len: u64,
    /// Source mtime: whole seconds since the Unix epoch (0 if unknown).
    pub mtime_secs: u64,
    /// Source mtime: subsecond nanoseconds.
    pub mtime_nanos: u32,
}

impl SourceStamp {
    /// Stamp of a filesystem entry. Mtime falls back to 0 on filesystems
    /// that do not report one.
    pub fn of(meta: &fs::Metadata) -> SourceStamp {
        let (mtime_secs, mtime_nanos) = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map(|d| (d.as_secs(), d.subsec_nanos()))
            .unwrap_or((0, 0));
        SourceStamp {
            len: meta.len(),
            mtime_secs,
            mtime_nanos,
        }
    }

    /// Stamp of the file at `path`, if it exists.
    pub fn of_path(path: &Path) -> io::Result<SourceStamp> {
        Ok(SourceStamp::of(&fs::metadata(path)?))
    }

    /// Stamp for a **generated** graph that has no source file at all.
    ///
    /// Caches of synthetic graphs (the bench stand-ins) are keyed by the
    /// generation parameters, not by a file on disk, so the three
    /// identity fields are reinterpreted — same layout, same equality
    /// semantics, no sidecar file needed:
    ///
    /// * `len` ← `key`, a caller-chosen hash of the generation
    ///   parameters (dataset name, caps, seed);
    /// * `mtime_secs` ← the IEEE-754 bits of the generator's `scale`;
    /// * `mtime_nanos` ← the planted balanced-biclique half-size.
    ///
    /// A real file stamp and a generated stamp can collide only if a
    /// source file's length equals the 64-bit parameter hash — and the
    /// two kinds of stamp are never compared against each other anyway
    /// (generated caches live in their own directory and are matched by
    /// [`generated_key`](Self::generated_key)).
    pub fn generated(key: u64, scale: f64, planted_half: u32) -> SourceStamp {
        SourceStamp {
            len: key,
            mtime_secs: scale.to_bits(),
            mtime_nanos: planted_half,
        }
    }

    /// The generation-parameter key of a [`generated`](Self::generated)
    /// stamp.
    pub fn generated_key(&self) -> u64 {
        self.len
    }

    /// The generator scale factor of a [`generated`](Self::generated)
    /// stamp.
    pub fn generated_scale(&self) -> f64 {
        f64::from_bits(self.mtime_secs)
    }

    /// The planted half-size of a [`generated`](Self::generated) stamp.
    pub fn generated_planted_half(&self) -> u32 {
        self.mtime_nanos
    }
}

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `MBBG` magic — not a cache file.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file claims a format version this build cannot read.
    UnsupportedVersion {
        /// Version in the file.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// A reserved field is non-zero — written by a future build
    /// signalling a layout variant this build does not understand.
    UnsupportedFlags {
        /// Flag bits found in the file.
        found: u32,
    },
    /// The file is shorter than its own header promises.
    Truncated {
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
    /// The CSR arrays decoded from the file violate a graph invariant.
    InvalidGraph(GraphError),
    /// Parsing the source text (during a cache build/refresh) failed.
    Parse(IoError),
    /// A name could not be resolved to any existing file.
    NotFound {
        /// The name or path as given.
        spec: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a .mbbg graph cache (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "graph cache version {found} is newer than supported version {supported}"
            ),
            StoreError::UnsupportedFlags { found } => {
                write!(f, "graph cache carries unsupported flag bits {found:#06x}")
            }
            StoreError::Truncated { expected, actual } => write!(
                f,
                "graph cache truncated: {actual} bytes present, {expected} expected"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "graph cache corrupt: checksum {computed:016x} != stored {stored:016x}"
            ),
            StoreError::InvalidGraph(e) => write!(f, "graph cache decoded invalid CSR: {e}"),
            StoreError::Parse(e) => write!(f, "{e}"),
            StoreError::NotFound { spec } => write!(f, "graph {spec:?} not found"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::InvalidGraph(e) => Some(e),
            StoreError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::InvalidGraph(e)
    }
}

impl From<IoError> for StoreError {
    fn from(e: IoError) -> Self {
        StoreError::Parse(e)
    }
}

/// 64-bit FNV-1a over a byte slice — tiny, dependency-free, stable. This
/// is an integrity check against torn writes, not a cryptographic seal.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a graph (plus its source stamp) into the `.mbbg` byte
/// layout, checksum included.
pub fn encode_graph(graph: &BipartiteGraph, stamp: SourceStamp) -> Vec<u8> {
    let nl = graph.num_left();
    let nr = graph.num_right();
    let m = graph.num_edges();
    let total = HEADER_LEN + 8 * (nl + 1 + nr + 1) + 4 * (m + m) + CHECKSUM_LEN;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    push_u64(&mut buf, stamp.len);
    push_u64(&mut buf, stamp.mtime_secs);
    push_u32(&mut buf, stamp.mtime_nanos);
    push_u32(&mut buf, 0);
    push_u32(&mut buf, nl as u32);
    push_u32(&mut buf, nr as u32);
    push_u64(&mut buf, m as u64);
    for &o in graph.left_offsets() {
        push_u64(&mut buf, o as u64);
    }
    for &o in graph.right_offsets() {
        push_u64(&mut buf, o as u64);
    }
    for &v in graph.left_neighbors() {
        push_u32(&mut buf, v);
    }
    for &u in graph.right_neighbors() {
        push_u32(&mut buf, u);
    }
    let checksum = fnv1a64(&buf);
    push_u64(&mut buf, checksum);
    debug_assert_eq!(buf.len(), total);
    buf
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        out
    }

    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Decodes a `.mbbg` byte buffer back into a graph and the stamp of the
/// source it was built from.
///
/// Validation happens outside-in: magic, version, self-declared length
/// (truncation), checksum, then the full CSR invariants via
/// [`BipartiteGraph::from_csr`] — so a corrupt file can never produce a
/// structurally broken graph.
pub fn decode_graph(bytes: &[u8]) -> Result<(BipartiteGraph, SourceStamp), StoreError> {
    if bytes.len() < MAGIC.len() {
        return Err(StoreError::Truncated {
            expected: (HEADER_LEN + CHECKSUM_LEN) as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: bytes[..4].try_into().expect("4 bytes"),
        });
    }
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(StoreError::Truncated {
            expected: (HEADER_LEN + CHECKSUM_LEN) as u64,
            actual: bytes.len() as u64,
        });
    }
    let mut r = Reader { bytes, pos: 4 };
    let version = r.u16();
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    // Reserved fields must be zero: a future writer that sets them is
    // signalling a layout this build cannot interpret.
    let flags = r.u16();
    if flags != 0 {
        return Err(StoreError::UnsupportedFlags {
            found: u32::from(flags),
        });
    }
    let stamp = SourceStamp {
        len: r.u64(),
        mtime_secs: r.u64(),
        mtime_nanos: r.u32(),
    };
    let reserved = r.u32();
    if reserved != 0 {
        return Err(StoreError::UnsupportedFlags { found: reserved });
    }
    let nl = r.u32() as usize;
    let nr = r.u32() as usize;
    let m = r.u64() as usize;
    // Saturating: a corrupt header must produce a mismatch, not overflow.
    let expected = (HEADER_LEN + CHECKSUM_LEN)
        .saturating_add(8usize.saturating_mul(nl + 1 + nr + 1))
        .saturating_add(4usize.saturating_mul(m.saturating_mul(2)));
    if bytes.len() != expected {
        return Err(StoreError::Truncated {
            expected: expected as u64,
            actual: bytes.len() as u64,
        });
    }
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - CHECKSUM_LEN..]
            .try_into()
            .expect("8 bytes"),
    );
    let computed = fnv1a64(&bytes[..bytes.len() - CHECKSUM_LEN]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let read_offsets =
        |r: &mut Reader<'_>, n: usize| -> Vec<usize> { (0..n).map(|_| r.u64() as usize).collect() };
    let read_ids = |r: &mut Reader<'_>, n: usize| -> Vec<u32> { (0..n).map(|_| r.u32()).collect() };
    let left_offsets = read_offsets(&mut r, nl + 1);
    let right_offsets = read_offsets(&mut r, nr + 1);
    let left_neighbors = read_ids(&mut r, m);
    let right_neighbors = read_ids(&mut r, m);
    let graph =
        BipartiteGraph::from_csr(left_offsets, left_neighbors, right_offsets, right_neighbors)?;
    Ok((graph, stamp))
}

/// Writes a graph to `path` in `.mbbg` format, atomically: the bytes go to
/// a `.tmp` sibling first and are renamed into place, so a crashed writer
/// never leaves a half-written cache where a reader will trust it.
pub fn save_graph(graph: &BipartiteGraph, stamp: SourceStamp, path: &Path) -> io::Result<()> {
    let bytes = encode_graph(graph, stamp);
    let tmp = path.with_extension("mbbg.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Loads a `.mbbg` file from disk.
pub fn load_graph(path: &Path) -> Result<(BipartiteGraph, SourceStamp), StoreError> {
    let bytes = fs::read(path)?;
    decode_graph(&bytes)
}

/// Reads only the source stamp from a `.mbbg` file — the 48-byte header,
/// with magic/version/flags validated but no checksum pass.
///
/// This is the cheap freshness probe: deciding that a multi-hundred-MB
/// cache is stale must not cost reading and checksumming the whole file.
/// A stamp match is always followed by a full (checksummed, validated)
/// [`load_graph`] before any graph is served.
pub fn load_stamp(path: &Path) -> Result<SourceStamp, StoreError> {
    use std::io::Read;
    let mut header = [0u8; HEADER_LEN];
    let mut file = fs::File::open(path)?;
    file.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                expected: (HEADER_LEN + CHECKSUM_LEN) as u64,
                actual: fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            }
        } else {
            StoreError::Io(e)
        }
    })?;
    if header[..4] != MAGIC {
        return Err(StoreError::BadMagic {
            found: header[..4].try_into().expect("4 bytes"),
        });
    }
    let mut r = Reader {
        bytes: &header,
        pos: 4,
    };
    let version = r.u16();
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let flags = r.u16();
    if flags != 0 {
        return Err(StoreError::UnsupportedFlags {
            found: u32::from(flags),
        });
    }
    Ok(SourceStamp {
        len: r.u64(),
        mtime_secs: r.u64(),
        mtime_nanos: r.u32(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators::uniform_edges;

    fn sample() -> BipartiteGraph {
        uniform_edges(20, 15, 80, 7)
    }

    fn stamp() -> SourceStamp {
        SourceStamp {
            len: 1234,
            mtime_secs: 1_700_000_000,
            mtime_nanos: 42,
        }
    }

    #[test]
    fn encode_decode_roundtrip_is_byte_identical() {
        let g = sample();
        let bytes = encode_graph(&g, stamp());
        let (back, s) = decode_graph(&bytes).unwrap();
        assert_eq!(s, stamp());
        assert_eq!(back.left_offsets(), g.left_offsets());
        assert_eq!(back.left_neighbors(), g.left_neighbors());
        assert_eq!(back.right_offsets(), g.right_offsets());
        assert_eq!(back.right_neighbors(), g.right_neighbors());
    }

    #[test]
    fn generated_stamps_roundtrip_through_the_header() {
        let g = sample();
        let stamp = SourceStamp::generated(0xDEAD_BEEF_CAFE_F00D, 0.375, 17);
        // Through the full encode/decode path…
        let bytes = encode_graph(&g, stamp);
        let (_, back) = decode_graph(&bytes).unwrap();
        assert_eq!(back, stamp);
        assert_eq!(back.generated_key(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(back.generated_scale(), 0.375);
        assert_eq!(back.generated_planted_half(), 17);
        // …and through the header-only probe of a saved file.
        let dir = std::env::temp_dir().join(format!("mbb-binfmt-gen-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mbbg");
        save_graph(&g, stamp, &path).unwrap();
        let probed = load_stamp(&path).unwrap();
        assert_eq!(probed.generated_scale(), 0.375);
        assert_eq!(probed.generated_planted_half(), 17);
        // Non-finite and negative scales survive the bit-cast too.
        let odd = SourceStamp::generated(1, -2.5, 0);
        assert_eq!(odd.generated_scale(), -2.5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let bytes = encode_graph(&g, SourceStamp::default());
        let (back, _) = decode_graph(&bytes).unwrap();
        assert_eq!(back.num_vertices(), 0);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_graph(&sample(), stamp());
        bytes[0] = b'X';
        assert!(matches!(
            decode_graph(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_bump_is_rejected() {
        let mut bytes = encode_graph(&sample(), stamp());
        bytes[4] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            decode_graph(&bytes),
            Err(StoreError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn nonzero_reserved_fields_are_rejected() {
        // Rebuild the checksum so the flags check itself is what fires.
        let reject = |patch: fn(&mut [u8])| {
            let mut bytes = encode_graph(&sample(), stamp());
            patch(&mut bytes);
            let body = bytes.len() - CHECKSUM_LEN;
            let checksum = fnv1a64(&bytes[..body]);
            bytes[body..].copy_from_slice(&checksum.to_le_bytes());
            decode_graph(&bytes).unwrap_err()
        };
        assert!(matches!(
            reject(|b| b[6] = 1),
            StoreError::UnsupportedFlags { found: 1 }
        ));
        assert!(matches!(
            reject(|b| b[29] = 2),
            StoreError::UnsupportedFlags { .. }
        ));
    }

    #[test]
    fn load_stamp_reads_only_the_header() {
        let dir = std::env::temp_dir().join(format!("mbb-binfmt-stamp-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mbbg");
        save_graph(&sample(), stamp(), &path).unwrap();
        assert_eq!(load_stamp(&path).unwrap(), stamp());
        // A file that is all header and no payload still yields its stamp
        // (the full load is what validates) — but a shorter one errors.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..HEADER_LEN]).unwrap();
        assert_eq!(load_stamp(&path).unwrap(), stamp());
        fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            load_stamp(&path),
            Err(StoreError::Truncated { .. })
        ));
        fs::write(&path, b"JUNKJUNKJUNK".repeat(10)).unwrap();
        assert!(matches!(
            load_stamp(&path),
            Err(StoreError::BadMagic { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_rejected_at_any_cut() {
        let bytes = encode_graph(&sample(), stamp());
        for cut in [3, 20, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_graph(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn corruption_anywhere_in_the_payload_is_caught() {
        let clean = encode_graph(&sample(), stamp());
        // Flip one bit in each region: offsets, adjacency, checksum.
        for pos in [HEADER_LEN + 3, clean.len() / 2, clean.len() - 2] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            let err = decode_graph(&bytes).unwrap_err();
            assert!(
                matches!(err, StoreError::ChecksumMismatch { .. }),
                "pos {pos}: {err}"
            );
        }
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join("mbb-binfmt-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mbbg");
        let g = sample();
        save_graph(&g, stamp(), &path).unwrap();
        let (back, s) = load_graph(&path).unwrap();
        assert_eq!(s, stamp());
        assert_eq!(back.num_edges(), g.num_edges());
        assert!(!path.with_extension("mbbg.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = StoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("corrupt"));
        let e = StoreError::NotFound { spec: "g".into() };
        assert!(e.to_string().contains("\"g\""));
    }
}
