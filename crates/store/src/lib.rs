//! Graph storage layer: a versioned binary cache format and a catalog
//! that resolves names or paths to ready-to-serve graphs.
//!
//! The paper's sparse experiments (§6.2) run on KONECT edge lists of up to
//! millions of edges. Text parsing — even through the streaming two-pass
//! builder in `mbb_bigraph::io` — is the dominant startup cost for a
//! serving fleet that reloads the same graphs on every boot. This crate
//! removes it:
//!
//! * [`binfmt`] — the `.mbbg` on-disk format: magic + version + source
//!   stamp + the four raw CSR arrays + checksum. Loading is a bounds-checked
//!   memcpy plus an integrity pass; saving is atomic (temp file + rename).
//! * [`store`] — [`GraphStore`], the catalog front-end. It resolves a name
//!   or path, transparently writes/refreshes the cache next to the source
//!   file, and reports provenance ([`Provenance`]) and load timings so
//!   callers can tell a cold parse from a warm cache hit.
//!
//! A graph loaded from a warm cache is **byte-identical** (CSR offsets and
//! adjacency) to one parsed from the source text: the format serialises the
//! exact arrays `mbb_bigraph::graph::Builder::build` produces, and
//! `BipartiteGraph::from_csr` re-validates every structural invariant on
//! the way back in.
//!
//! # Example
//!
//! ```no_run
//! use mbb_store::GraphStore;
//!
//! let store = GraphStore::new();
//! let loaded = store.load("data/github.txt")?;
//! println!(
//!     "{}: {:?} in {:.1?}",
//!     loaded.source.display(),
//!     loaded.provenance,
//!     loaded.load_time
//! );
//! println!("|E| = {}", loaded.graph.num_edges());
//! # Ok::<(), mbb_store::StoreError>(())
//! ```

#![warn(missing_docs)]

pub mod binfmt;
pub mod store;

pub use binfmt::{SourceStamp, StoreError, FORMAT_VERSION, MAGIC};
pub use store::{CacheMode, GraphStore, LoadedGraph, Provenance};
