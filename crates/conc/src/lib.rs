//! `mbb-conc` — deterministic concurrency testing for the mbb stack.
//!
//! Two things live here:
//!
//! 1. **A `sync` facade** ([`sync`], [`thread`]): `Mutex`, `Condvar`,
//!    `RwLock`, and atomics with the `std` API shape. In normal builds
//!    they compile to thin non-poisoning wrappers over `std::sync`
//!    (zero behavioural change, same guard types). Compiled with
//!    `RUSTFLAGS="--cfg mbb_conc"`, the same names route through a
//!    controlled scheduler instead.
//!
//! 2. **A model checker** ([`model`], always compiled): runs a closure
//!    under many thread interleavings — bounded-exhaustive DFS for ≤3
//!    spawned threads, seeded-random schedule sampling beyond — and
//!    reports the first schedule that deadlocks, panics an invariant,
//!    or livelocks. Lost wakeups surface as deadlocks: the model
//!    condvar has no spurious wakeups, so a task parked by a
//!    check-then-wait race stays parked and the scheduler names it in
//!    the diagnostic.
//!
//! # Using the facade
//!
//! ```
//! use mbb_conc::sync::{Mutex, Condvar};
//! use mbb_conc::sync::atomic::{AtomicUsize, Ordering};
//!
//! let n = AtomicUsize::new(0);
//! n.fetch_add(1, Ordering::Relaxed); // relaxed: doctest-local counter
//! let m = Mutex::new(5);
//! assert_eq!(*m.lock(), 5);
//! let _cv = Condvar::new();
//! ```
//!
//! # Writing a model test
//!
//! ```
//! use std::sync::Arc;
//! use mbb_conc::model::{explore, ExploreConfig};
//! use mbb_conc::model_sync::atomic::{AtomicUsize, Ordering};
//! use mbb_conc::model_thread as thread;
//!
//! let report = explore(ExploreConfig::auto(2), || {
//!     let best = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (1..=2)
//!         .map(|half| {
//!             let best = Arc::clone(&best);
//!             thread::spawn(move || {
//!                 best.fetch_max(half, Ordering::Relaxed); // relaxed: model ignores orderings
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(best.load(Ordering::Relaxed), 2); // relaxed: after join
//! });
//! assert!(report.exhausted);
//! ```
//!
//! The doctest above drives the **model** types directly (via the
//! `model_sync` / `model_thread` aliases, which exist in every build).
//! Production code instead imports `mbb_conc::sync` / `mbb_conc::thread`
//! and gets the real primitives unless the whole workspace is compiled
//! with `--cfg mbb_conc` — which is how the `conc_models` integration
//! tests check the *actual* `Admission` queue and incumbent publication
//! path, not copies of them:
//!
//! ```text
//! RUSTFLAGS="--cfg mbb_conc" cargo test -p mbb-serve -p mbb-core --test conc_models
//! ```
//!
//! # What the model does and does not check
//!
//! * Explores **interleavings** of sync operations; detects deadlock,
//!   lost wakeup, panic (failed invariant), livelock (step budget).
//! * `notify_one` delivery is itself a scheduling choice — every
//!   possible waiter is explored.
//! * Atomics are **sequentially consistent** in the model regardless of
//!   the ordering argument: weak-memory reorderings are *not* modelled.
//!   The `// relaxed:` justifications enforced by `mbb-lint` carry the
//!   argument for why `Relaxed` is sound at each site; the model
//!   verifies the protocol logic above those accesses.
//! * Models must be schedule-deterministic: no wall-clock branching or
//!   OS randomness inside the closure (fixed `Instant`s captured
//!   outside are fine — they are plain data).

pub mod model;

#[cfg(not(mbb_conc))]
mod real;

/// Synchronisation primitives: `std`-backed normally, model-backed
/// under `--cfg mbb_conc`.
pub mod sync {
    #[cfg(not(mbb_conc))]
    pub use crate::real::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    #[cfg(mbb_conc)]
    pub use crate::model::sync::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    /// Atomic types with explicit orderings. Under the model, orderings
    /// are accepted but execution is sequentially consistent.
    pub mod atomic {
        #[cfg(not(mbb_conc))]
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

        #[cfg(mbb_conc)]
        pub use crate::model::sync::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
    }
}

/// Thread spawning: `std::thread` normally, model tasks under
/// `--cfg mbb_conc`.
pub mod thread {
    #[cfg(not(mbb_conc))]
    pub use std::thread::{spawn, JoinHandle};

    #[cfg(mbb_conc)]
    pub use crate::model::thread::{spawn, spawn_named, JoinHandle};
}

/// The model-mode primitives under their own stable path, shaped like
/// [`sync`] (with an `atomic` submodule) and available in **every**
/// build. Tests that model a *copy* of a structure (like the
/// planted-bug regression) use these so they run under plain
/// `cargo test`; code ported onto the facade uses [`sync`] instead and
/// is only model-checked under `--cfg mbb_conc`.
pub mod model_sync {
    pub use crate::model::sync::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    pub mod atomic {
        pub use crate::model::sync::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
    }
}

/// Alias of the model thread module for tests that drive the model
/// directly (always compiled, like [`model_sync`]).
pub use model::thread as model_thread;
