//! Release-mode facade: thin non-poisoning wrappers over `std::sync`.
//!
//! Same shape as the vendored `parking_lot` shim — lock methods return
//! guards directly (recovering from poison: a panicking holder already
//! aborts the operation it was part of, and every structure guarded
//! here keeps its invariants at each unlock point). Guard types are the
//! std ones, so code written against the facade interoperates with
//! anything expecting `std::sync` guards.

use std::sync as s;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T>(s::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(s::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning condvar over `std::sync::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(s::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(s::Condvar::new())
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.0.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Non-poisoning rwlock over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T>(s::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(s::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
