//! Model-mode synchronisation primitives.
//!
//! Same API surface as the real-mode primitives (`real.rs`), but every
//! operation routes through the controlled scheduler. Data lives in an
//! `UnsafeCell`; the scheduler's mutual-exclusion bookkeeping is what
//! makes the accesses sound (only the task holding the model lock is
//! ever scheduled while a guard exists).
//!
//! Primitives are created *outside* any particular schedule (a model
//! closure usually captures them from the enclosing test), so each one
//! lazily registers itself with the scheduler of the **current run**:
//! the registration slot stores the run id it was registered under and
//! re-registers — with fresh object state — whenever a new schedule
//! starts. State that the closure itself creates per run registers the
//! same way on first touch.

use std::cell::UnsafeCell;
use std::sync::Arc;
use std::sync::Mutex as OsMutex;

use super::sched::{current, Object, Sched};

/// Re-export: orderings are accepted (so call sites document intent)
/// but the model executes every atomic access sequentially consistent.
pub use std::sync::atomic::Ordering;

/// Lazy per-run object id.
struct Registration {
    slot: OsMutex<(u64, usize)>,
}

impl Registration {
    const fn new() -> Registration {
        Registration {
            slot: OsMutex::new((0, 0)),
        }
    }

    /// The object id under the current run, registering (fresh state
    /// from `make`) if this primitive has not been touched this run.
    fn oid(&self, sched: &Sched, make: impl FnOnce() -> Object) -> usize {
        let mut slot = match self.slot.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if slot.0 != sched.run_id() {
            *slot = (sched.run_id(), sched.register_object(make()));
        }
        slot.1
    }
}

fn ctx(what: &str) -> (Arc<Sched>, usize) {
    current().unwrap_or_else(|| {
        panic!(
            "mbb_conc model {what} used outside `explore`: with --cfg mbb_conc, \
             facade primitives only work inside a model closure"
        )
    })
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Model mutex. Non-poisoning, like the release-mode facade.
pub struct Mutex<T> {
    reg: Registration,
    data: UnsafeCell<T>,
}

// Safety: the scheduler runs at most one task at a time and grants the
// model lock to at most one task, so `&mut T` access through a guard is
// exclusive.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            reg: Registration::new(),
            data: UnsafeCell::new(value),
        }
    }

    fn oid(&self, sched: &Sched) -> usize {
        self.reg.oid(sched, || Object::Lock { held: false })
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (sched, me) = ctx("Mutex");
        let oid = self.oid(&sched);
        sched.mutex_lock(me, oid);
        MutexGuard {
            lock: self,
            sched,
            me,
            oid,
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    sched: Arc<Sched>,
    me: usize,
    oid: usize,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: this task holds the model lock (see `Mutex` safety note).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above; the guard is unique.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.sched.mutex_unlock(self.me, self.oid);
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Model condvar. No spurious wakeups — a parked task resumes only when
/// notified, which is exactly what makes a lost wakeup observable as a
/// deadlock instead of being papered over by a spurious return.
pub struct Condvar {
    reg: Registration,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            reg: Registration::new(),
        }
    }

    fn oid(&self, sched: &Sched) -> usize {
        self.reg.oid(sched, || Object::Condvar)
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let cvid = self.oid(&guard.sched);
        let (lock, sched, me, oid) = (guard.lock, guard.sched.clone(), guard.me, guard.oid);
        // The scheduler releases and re-acquires the lock atomically;
        // the guard must not run its unlocking destructor.
        std::mem::forget(guard);
        sched.condvar_wait(me, cvid, oid);
        MutexGuard {
            lock,
            sched,
            me,
            oid,
        }
    }

    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    pub fn notify_one(&self) {
        let (sched, me) = ctx("Condvar");
        let cvid = self.oid(&sched);
        sched.condvar_notify(me, cvid, false);
    }

    pub fn notify_all(&self) {
        let (sched, me) = ctx("Condvar");
        let cvid = self.oid(&sched);
        sched.condvar_notify(me, cvid, true);
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// Model rwlock: any number of readers or one writer.
pub struct RwLock<T> {
    reg: Registration,
    data: UnsafeCell<T>,
}

// Safety: reader guards hand out `&T` (requires `T: Sync` for the lock
// to be `Sync`); the writer guard is exclusive under the scheduler.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            reg: Registration::new(),
            data: UnsafeCell::new(value),
        }
    }

    fn oid(&self, sched: &Sched) -> usize {
        self.reg.oid(sched, || Object::RwLock {
            readers: 0,
            writer: false,
        })
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let (sched, me) = ctx("RwLock");
        let oid = self.oid(&sched);
        sched.rw_read_lock(me, oid);
        RwLockReadGuard {
            lock: self,
            sched,
            me,
            oid,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let (sched, me) = ctx("RwLock");
        let oid = self.oid(&sched);
        sched.rw_write_lock(me, oid);
        RwLockWriteGuard {
            lock: self,
            sched,
            me,
            oid,
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    sched: Arc<Sched>,
    me: usize,
    oid: usize,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: readers exclude the writer under the scheduler.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.sched.rw_read_unlock(self.me, self.oid);
    }
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    sched: Arc<Sched>,
    me: usize,
    oid: usize,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the writer is exclusive under the scheduler.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.sched.rw_write_unlock(self.me, self.oid);
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! model_atomic {
    ($name:ident, $ty:ty) => {
        /// Model atomic. Every access is a scheduling choice point and
        /// executes sequentially consistent regardless of the ordering
        /// argument (interleavings are explored; weak-memory
        /// reorderings are not modelled).
        pub struct $name {
            reg: Registration,
            init: $ty,
        }

        impl $name {
            pub const fn new(value: $ty) -> $name {
                $name {
                    reg: Registration::new(),
                    init: value,
                }
            }

            fn op<R>(&self, what: &str, f: impl FnOnce(&mut $ty) -> R) -> R {
                let (sched, me) = ctx(what);
                let init = self.init;
                let oid = self
                    .reg
                    .oid(&sched, || Object::Atomic { value: init as u64 });
                sched.atomic_op(me, oid, |cell| {
                    let mut typed = *cell as $ty;
                    let out = f(&mut typed);
                    *cell = typed as u64;
                    out
                })
            }

            pub fn load(&self, _order: Ordering) -> $ty {
                self.op(stringify!($name), |v| *v)
            }

            pub fn store(&self, value: $ty, _order: Ordering) {
                self.op(stringify!($name), |v| *v = value)
            }

            pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                self.op(stringify!($name), |v| std::mem::replace(v, value))
            }

            pub fn fetch_add(&self, delta: $ty, _order: Ordering) -> $ty {
                self.op(stringify!($name), |v| {
                    let old = *v;
                    *v = v.wrapping_add(delta);
                    old
                })
            }

            pub fn fetch_sub(&self, delta: $ty, _order: Ordering) -> $ty {
                self.op(stringify!($name), |v| {
                    let old = *v;
                    *v = v.wrapping_sub(delta);
                    old
                })
            }

            pub fn fetch_max(&self, value: $ty, _order: Ordering) -> $ty {
                self.op(stringify!($name), |v| {
                    let old = *v;
                    *v = old.max(value);
                    old
                })
            }

            pub fn compare_exchange(
                &self,
                expected: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.op(stringify!($name), |v| {
                    if *v == expected {
                        *v = new;
                        Ok(expected)
                    } else {
                        Err(*v)
                    }
                })
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

model_atomic!(AtomicUsize, usize);
model_atomic!(AtomicU64, u64);
model_atomic!(AtomicU8, u8);

/// Model `AtomicBool`, backed by the same serialized u64 cell.
pub struct AtomicBool {
    reg: Registration,
    init: bool,
}

impl AtomicBool {
    pub const fn new(value: bool) -> AtomicBool {
        AtomicBool {
            reg: Registration::new(),
            init: value,
        }
    }

    fn op<R>(&self, f: impl FnOnce(&mut bool) -> R) -> R {
        let (sched, me) = ctx("AtomicBool");
        let init = self.init;
        let oid = self
            .reg
            .oid(&sched, || Object::Atomic { value: init as u64 });
        sched.atomic_op(me, oid, |cell| {
            let mut typed = *cell != 0;
            let out = f(&mut typed);
            *cell = typed as u64;
            out
        })
    }

    pub fn load(&self, _order: Ordering) -> bool {
        self.op(|v| *v)
    }

    pub fn store(&self, value: bool, _order: Ordering) {
        self.op(|v| *v = value)
    }

    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        self.op(|v| std::mem::replace(v, value))
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBool").finish_non_exhaustive()
    }
}
