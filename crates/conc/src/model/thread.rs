//! Model-mode thread spawning.
//!
//! Spawned closures run on real OS threads, but the scheduler parks
//! each one until it is picked, so from the model's point of view they
//! are cooperatively scheduled tasks. `join` is itself a model
//! operation (it blocks the joiner until the target finishes and is a
//! choice point like any other).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use super::sched::{current, set_current, AbortPayload, Sched};

pub struct JoinHandle<T> {
    sched: Arc<Sched>,
    task: usize,
    os: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. If the
    /// run is aborting (failure already recorded), unwinds like every
    /// other model operation.
    pub fn join(self) -> std::thread::Result<T> {
        let (_, me) = current().expect("join outside a model run");
        self.sched.join_task(me, self.task);
        match self.os.join() {
            Ok(Some(value)) => Ok(value),
            // The child unwound (abort teardown) or never ran; the run
            // is aborting, so unwind this thread too.
            _ => std::panic::panic_any(AbortPayload),
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named("worker".to_string(), f)
}

pub fn spawn_named<F, T>(name: String, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = current().expect("spawn outside a model run");
    let task = sched.register_task(me, &name);
    let child_sched = Arc::clone(&sched);
    let os = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            set_current(Some((Arc::clone(&child_sched), task)));
            let value = if child_sched.wait_first_schedule(task) {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(value) => {
                        child_sched.task_finished(task, None);
                        Some(value)
                    }
                    Err(payload) => {
                        child_sched.task_finished(task, Some(payload.as_ref()));
                        None
                    }
                }
            } else {
                // Run aborted before this task ever ran.
                child_sched.task_finished(task, None);
                None
            };
            set_current(None);
            value
        })
        .expect("failed to spawn model OS thread");
    // Only now — with the OS thread alive — may the scheduler pick the
    // child: the preemption point for "child runs before the parent's
    // next operation".
    sched.op_step(me);
    JoinHandle { sched, task, os }
}
