//! The model checker: schedule exploration over a model closure.
//!
//! [`explore`] runs a closure many times, each time under a different
//! thread interleaving, and fails loudly (deadlock, panic, step limit)
//! the first time any schedule breaks. For ≤3-thread models the
//! default strategy enumerates interleavings **exhaustively** by
//! depth-first search over the recorded choice trace; larger models
//! fall back to seeded-random schedule sampling, which is reproducible
//! and counts *distinct* traces so tests can assert real coverage.
//!
//! The closure must be **schedule-deterministic**: given the same
//! sequence of scheduling decisions it must perform the same sequence
//! of model operations. Don't branch on wall-clock time or OS
//! randomness inside a model (fixed `Instant`s captured outside the
//! closure are fine — they are plain data).

mod sched;
pub mod sync;
pub mod thread;

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sched::{current, set_current, Choice, Rng64, Sched, Schedule};

pub use sched::FailureKind;

/// How schedules are generated.
#[derive(Clone, Copy, Debug)]
pub enum Strategy {
    /// Depth-first enumeration of every interleaving (complete for
    /// models small enough to finish within `max_schedules`).
    Exhaustive,
    /// Seeded-random sampling; reproducible, coverage counted by
    /// distinct choice traces.
    Random { seed: u64 },
}

/// Exploration bounds and strategy.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Stop after this many schedules even if the space is larger.
    pub max_schedules: u64,
    /// Per-schedule operation budget — the livelock guard.
    pub max_steps: u64,
    /// Schedule generation strategy.
    pub strategy: Strategy,
    /// Upper bound on live model threads (a runaway-spawn guard).
    pub max_threads: usize,
}

impl ExploreConfig {
    /// Exhaustive DFS with generous defaults: up to 100k schedules of
    /// up to 20k operations each.
    pub fn exhaustive() -> ExploreConfig {
        ExploreConfig {
            max_schedules: 100_000,
            max_steps: 20_000,
            strategy: Strategy::Exhaustive,
            max_threads: 16,
        }
    }

    /// Seeded-random sampling of `schedules` schedules.
    pub fn random(seed: u64, schedules: u64) -> ExploreConfig {
        ExploreConfig {
            max_schedules: schedules,
            max_steps: 20_000,
            strategy: Strategy::Random { seed },
            max_threads: 16,
        }
    }

    /// The ISSUE-mandated policy: bounded-exhaustive for models of at
    /// most 3 spawned threads, seeded-random sampling beyond.
    pub fn auto(spawned_threads: usize) -> ExploreConfig {
        if spawned_threads <= 3 {
            ExploreConfig::exhaustive()
        } else {
            ExploreConfig::random(0x6d62_6263, 4_096)
        }
    }
}

/// What `try_explore` reports when every explored schedule passed.
#[derive(Clone, Copy, Debug)]
pub struct ExploreReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct choice traces observed (== `schedules` for exhaustive).
    pub distinct_schedules: u64,
    /// True when the whole interleaving space was enumerated (always
    /// false for random sampling).
    pub exhausted: bool,
}

/// A schedule that broke the model.
#[derive(Debug)]
pub struct Failure {
    pub kind: FailureKind,
    /// Human-readable diagnosis, including per-thread state for
    /// deadlocks.
    pub message: String,
    /// How many schedules ran before (and including) the failing one.
    pub schedules: u64,
    /// The failing schedule's choice trace `(chosen, options)` — replay
    /// material for debugging.
    pub trace: Vec<(u32, u32)>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} on schedule #{} (trace of {} choices): {}",
            self.kind,
            self.schedules,
            self.trace.len(),
            self.message
        )
    }
}

fn run_once(
    config: &ExploreConfig,
    schedule: Schedule,
    f: &mut dyn FnMut(),
) -> Result<Vec<Choice>, (FailureKind, String, Vec<Choice>)> {
    let sched = Arc::new(Sched::new(schedule, config.max_steps, config.max_threads));
    set_current(Some((Arc::clone(&sched), 0)));
    let outcome = catch_unwind(AssertUnwindSafe(&mut *f));
    let payload = match &outcome {
        Ok(()) => None,
        Err(p) => Some(&**p as &(dyn std::any::Any + Send)),
    };
    sched.task_finished(0, payload);
    set_current(None);
    sched.drive_to_completion()
}

/// DFS successor: the longest prefix whose last choice can be bumped to
/// its next sibling. `None` when the space is exhausted.
fn next_prefix(trace: &[Choice]) -> Option<Vec<Choice>> {
    let mut prefix: Vec<Choice> = trace.to_vec();
    while let Some(&(chosen, options)) = prefix.last() {
        if chosen + 1 < options {
            let last = prefix.len() - 1;
            prefix[last] = (chosen + 1, options);
            return Some(prefix);
        }
        prefix.pop();
    }
    None
}

/// Runs `model` under many interleavings; returns the coverage report,
/// or the first [`Failure`] encountered.
pub fn try_explore(
    config: ExploreConfig,
    mut model: impl FnMut(),
) -> Result<ExploreReport, Failure> {
    assert!(
        current().is_none(),
        "nested explore: cannot start a model run inside another model run"
    );
    let mut schedules = 0u64;
    match config.strategy {
        Strategy::Exhaustive => {
            let mut prefix: Vec<Choice> = Vec::new();
            loop {
                if schedules >= config.max_schedules {
                    return Ok(ExploreReport {
                        schedules,
                        distinct_schedules: schedules,
                        exhausted: false,
                    });
                }
                schedules += 1;
                match run_once(&config, Schedule::new(prefix.clone(), None), &mut model) {
                    Ok(trace) => match next_prefix(&trace) {
                        Some(next) => prefix = next,
                        None => {
                            return Ok(ExploreReport {
                                schedules,
                                distinct_schedules: schedules,
                                exhausted: true,
                            })
                        }
                    },
                    Err((kind, message, trace)) => {
                        return Err(Failure {
                            kind,
                            message,
                            schedules,
                            trace,
                        })
                    }
                }
            }
        }
        Strategy::Random { seed } => {
            let mut distinct: HashSet<Vec<Choice>> = HashSet::new();
            for i in 0..config.max_schedules {
                schedules += 1;
                let rng =
                    Rng64::new(seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(1));
                match run_once(&config, Schedule::new(Vec::new(), Some(rng)), &mut model) {
                    Ok(trace) => {
                        distinct.insert(trace);
                    }
                    Err((kind, message, trace)) => {
                        return Err(Failure {
                            kind,
                            message,
                            schedules,
                            trace,
                        })
                    }
                }
            }
            Ok(ExploreReport {
                schedules,
                distinct_schedules: distinct.len() as u64,
                exhausted: false,
            })
        }
    }
}

/// [`try_explore`], panicking with the failure report — the form model
/// tests normally use.
pub fn explore(config: ExploreConfig, model: impl FnMut()) -> ExploreReport {
    match try_explore(config, model) {
        Ok(report) => report,
        Err(failure) => panic!("model check failed: {failure}"),
    }
}
